//! Property-based cross-crate tests: BEER's solver against randomly drawn
//! ECC functions from the §3.3 design space.

use beer::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The §6.1 claim in miniature: for random SEC codes, the analytic
    /// {1,2}-CHARGED profile admits exactly one ECC function — the
    /// original (up to parity relabeling).
    #[test]
    fn beer_uniquely_recovers_random_codes(k in 4usize..14, seed in any::<u64>()) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(k));
        let report = solve_profile(
            k,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions { max_solutions: 3, ..BeerSolverOptions::default() },
        ).expect("well-formed profile");
        prop_assert_eq!(report.solutions.len(), 1);
        prop_assert!(equivalent(&report.solutions[0], &code));
    }

    /// Every solution the solver enumerates reproduces the profile it was
    /// given (1-CHARGED may be ambiguous; all candidates must be valid).
    #[test]
    fn every_enumerated_solution_matches_the_profile(k in 4usize..10, seed in any::<u64>()) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let profile = analytic_profile(&code, &PatternSet::One.patterns(k));
        let report = solve_profile(
            k,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions { max_solutions: 16, verify_solutions: false, ..BeerSolverOptions::default() },
        ).expect("well-formed profile");
        prop_assert!(!report.solutions.is_empty());
        let mut found_original = false;
        for s in &report.solutions {
            prop_assert!(code_matches_constraints(s, &profile));
            if equivalent(s, &code) {
                found_original = true;
            }
        }
        prop_assert!(found_original, "original code missing from enumeration");
    }

    /// Dropping negative facts (unknown instead of "no miscorrection")
    /// never excludes the true code, though it may add candidates.
    #[test]
    fn weakened_profiles_still_contain_the_truth(k in 4usize..10, seed in any::<u64>()) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(k)).weaken_negatives();
        let report = solve_profile(
            k,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions { max_solutions: 32, ..BeerSolverOptions::default() },
        ).expect("well-formed profile");
        prop_assert!(
            report.truncated || report.solutions.iter().any(|s| equivalent(s, &code)),
            "true code excluded by a weaker profile"
        );
    }

    /// BEEP decodes exact pre-correction patterns for random codes and
    /// random double errors whenever a definite miscorrection shows up.
    #[test]
    fn beep_decoding_is_exact_on_random_codes(
        k in 6usize..16,
        seed in any::<u64>(),
        data_bits in prop::collection::vec(any::<bool>(), 16),
        e1_frac in 0.0f64..1.0,
        e2_frac in 0.0f64..1.0,
    ) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let data = BitVec::from_bits(&data_bits[..k]);
        let codeword = code.encode(&data);
        let charged: Vec<usize> = codeword.iter_ones().collect();
        prop_assume!(charged.len() >= 2);
        let e1 = charged[((charged.len() - 1) as f64 * e1_frac) as usize];
        let mut e2 = charged[((charged.len() - 1) as f64 * e2_frac) as usize];
        prop_assume!(e1 != e2 || charged.len() > 1);
        if e1 == e2 {
            e2 = *charged.iter().find(|&&c| c != e1).unwrap();
        }
        let mut erroneous = codeword.clone();
        erroneous.set(e1, false);
        erroneous.set(e2, false);
        let read = code.decode(&erroneous).data;
        let trial = beer::beep::decode_read(&code, &data, &read);
        if let Some(errors) = trial.errors {
            let mut expected = vec![e1, e2];
            expected.sort_unstable();
            prop_assert_eq!(errors, expected);
        }
    }
}
