//! End-to-end BEER: simulated chip in, ECC function out.
//!
//! Exercises the full §5 pipeline — pattern programming, retention-error
//! induction, miscorrection profiling, threshold filtering, SAT solving,
//! and uniqueness checking — through the unified `RecoverySession` entry
//! point, against simulated chips from all three manufacturer design
//! styles, and validates the recovered function against the simulator's
//! ground truth (§6.1).

use beer::prelude::*;

fn run_pipeline(chip: SimChip, set: PatternSet) -> SolveReport {
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let k = chip.k();
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    RecoveryConfig::new()
        .with_parity_bits(hamming::parity_bits_for(k))
        .with_pattern_family(set)
        .session(&mut backend)
        .run_to_completion()
        .expect("simulated chips cannot fail collection")
        .last_check
        .expect("one round always runs")
}

#[test]
fn recovers_manufacturer_a_function() {
    let chip = SimChip::new(
        ChipConfig::lpddr4_like(Manufacturer::A, 0, 11)
            .with_geometry(Geometry::new(1, 64, 128))
            .with_word_bytes(2),
    );
    let secret = chip.reveal_code().clone();
    let report = run_pipeline(chip, PatternSet::One);
    assert!(
        report.solutions.iter().any(|s| equivalent(s, &secret)),
        "true function not among {} solutions",
        report.solutions.len()
    );
}

#[test]
fn recovers_manufacturer_b_function_uniquely() {
    let chip = SimChip::new(ChipConfig::small_test_chip(22));
    let secret = chip.reveal_code().clone();
    let report = run_pipeline(chip, PatternSet::One);
    assert!(report.is_unique(), "{} solutions", report.solutions.len());
    assert!(equivalent(&report.solutions[0], &secret));
}

#[test]
fn progressive_engine_recovers_manufacturer_b_uniquely() {
    // The same recovery as above, through the unified engine: parallel
    // batched collection interleaved with incremental solving, stopping as
    // soon as the profile pins the function down.
    let chip = SimChip::new(ChipConfig::small_test_chip(22));
    let secret = chip.reveal_code().clone();
    let k = chip.k();
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    let outcome = progressive_recover(
        &mut backend,
        hamming::parity_bits_for(k),
        &progressive_batches(k, 32),
        &CollectionPlan::quick(),
        &ThresholdFilter::default(),
        &BeerSolverOptions::default(),
        &EngineOptions::default(),
    )
    .expect("well-formed batches");
    assert!(
        outcome.report.is_unique(),
        "{} solutions",
        outcome.report.solutions.len()
    );
    assert!(equivalent(&outcome.report.solutions[0], &secret));
    assert!(
        outcome.patterns_used <= outcome.patterns_available,
        "bookkeeping: {} of {}",
        outcome.patterns_used,
        outcome.patterns_available
    );
}

#[test]
fn recovers_manufacturer_c_function_with_anti_cells() {
    let config = ChipConfig {
        cell_layout: CellLayout::AlternatingBlocks {
            block_rows: vec![16],
        },
        ..ChipConfig::lpddr4_like(Manufacturer::C, 0, 33)
            .with_geometry(Geometry::new(1, 64, 128))
            .with_word_bytes(2)
    };
    let mut chip = SimChip::new(config);
    // Knowledge must reflect the mixed cell layout.
    let knowledge = ChipKnowledge {
        word_layout: chip.config().word_layout,
        row_cell_types: (0..chip.geometry().total_rows())
            .map(|r| chip.config().cell_layout.cell_type_of_row(r))
            .collect(),
    };
    let patterns = PatternSet::One.patterns(chip.k());
    let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
    let constraints = profile.to_constraints(&ThresholdFilter::default());
    let report = solve_profile(
        chip.k(),
        hamming::parity_bits_for(chip.k()),
        &constraints,
        &BeerSolverOptions::default(),
    )
    .expect("well-formed constraints");
    assert!(
        report
            .solutions
            .iter()
            .any(|s| equivalent(s, chip.reveal_code())),
        "true function not among solutions"
    );
}

#[test]
fn different_chips_same_model_yield_identical_profiles() {
    // §5.1.3: chips of the same model number produce identical
    // miscorrection profiles (the basis for attributing the profile to the
    // design rather than the chip instance).
    let profile_of = |chip_seed: u64| {
        let mut chip = SimChip::new(ChipConfig::small_test_chip(chip_seed));
        let knowledge = ChipKnowledge::uniform(
            chip.config().word_layout,
            CellType::True,
            chip.geometry().total_rows(),
        );
        let patterns = PatternSet::One.patterns(chip.k());
        collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick())
            .to_constraints(&ThresholdFilter::default())
    };
    let a = profile_of(100);
    let b = profile_of(200);
    assert!(
        a.disagreements(&b).is_empty(),
        "same-model chips disagree: {:?}",
        a.disagreements(&b)
    );
}

#[test]
fn recovered_function_predicts_held_out_observations() {
    // Train on the 1-CHARGED patterns, then check the recovered function
    // predicts measurements of *held-out* 2-CHARGED patterns it never saw.
    let mut chip = SimChip::new(ChipConfig::small_test_chip(44));
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let train = PatternSet::One.patterns(chip.k());
    let test: Vec<ChargedSet> = PatternSet::Two
        .patterns(chip.k())
        .into_iter()
        .step_by(17)
        .collect();

    let profile = collect_profile(&mut chip, &knowledge, &train, &CollectionPlan::quick());
    let constraints = profile.to_constraints(&ThresholdFilter::default());
    let report = solve_profile(
        chip.k(),
        hamming::parity_bits_for(chip.k()),
        &constraints,
        &BeerSolverOptions {
            max_solutions: 4,
            ..BeerSolverOptions::default()
        },
    )
    .expect("well-formed constraints");
    assert!(!report.solutions.is_empty());

    // Held-out validation: measured test-pattern profile must match the
    // recovered function's analytic prediction.
    let held_out = collect_profile(&mut chip, &knowledge, &test, &CollectionPlan::quick())
        .to_constraints(&ThresholdFilter::default());
    let truth_like = report
        .solutions
        .iter()
        .find(|s| equivalent(s, chip.reveal_code()))
        .expect("true function recovered");
    let predicted = analytic_profile(truth_like, &test);
    for (pattern, bit) in held_out.disagreements(&predicted) {
        // Only tolerable direction: a rare possible miscorrection that the
        // held-out experiment did not happen to sample. The reverse
        // (observing something predicted impossible) is a failure.
        let idx = test.iter().position(|p| *p == pattern).unwrap();
        assert_ne!(
            held_out.entries[idx].1[bit],
            Observation::Miscorrection,
            "observed a miscorrection the recovered function forbids: {pattern} bit {bit}"
        );
    }
}
