//! §5.2: BEER's threshold filter versus transient noise.
//!
//! Transient errors (particle strikes, VRT, voltage noise) can pollute the
//! miscorrection profile with spurious observations. The paper's defense
//! is a simple threshold filter: real miscorrections recur across the
//! refresh-window sweep, transient flips do not.

use beer::prelude::*;

fn pipeline_with_noise(flip_probability: f64, chip_seed: u64) -> (SolveReport, SimChip) {
    let config =
        ChipConfig::small_test_chip(chip_seed).with_noise(TransientNoise { flip_probability });
    let mut chip = SimChip::new(config);
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let patterns = PatternSet::One.patterns(chip.k());
    let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
    let constraints = profile.to_constraints(&ThresholdFilter::default());
    let report = solve_profile(
        chip.k(),
        hamming::parity_bits_for(chip.k()),
        &constraints,
        &BeerSolverOptions::default(),
    )
    .expect("well-formed constraints");
    (report, chip)
}

#[test]
fn recovery_survives_realistic_transient_noise() {
    // ~1e-6 per cell per retention test is far above real transient rates;
    // the filter must still isolate the true profile.
    let (report, chip) = pipeline_with_noise(1e-6, 71);
    assert!(
        report
            .solutions
            .iter()
            .any(|s| equivalent(s, chip.reveal_code())),
        "noise broke recovery: {} solutions",
        report.solutions.len()
    );
}

#[test]
fn recovery_survives_heavy_transient_noise() {
    // 1e-5 per cell per test: a strongly pessimistic rate.
    let (report, chip) = pipeline_with_noise(1e-5, 72);
    assert!(
        report
            .solutions
            .iter()
            .any(|s| equivalent(s, chip.reveal_code())),
        "heavy noise broke recovery: {} solutions",
        report.solutions.len()
    );
}

#[test]
fn unfiltered_noisy_profile_contains_spurious_observations() {
    // Demonstrates the filter is actually doing work: with noise enabled,
    // raw counts contain observations the true function forbids, and the
    // threshold filter removes them.
    let config = ChipConfig::small_test_chip(73).with_noise(TransientNoise {
        flip_probability: 1e-5,
    });
    let mut chip = SimChip::new(config);
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let patterns = PatternSet::One.patterns(chip.k());
    let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());

    let truth = analytic_profile(chip.reveal_code(), &patterns);
    let mut spurious_raw = 0u64;
    for (pi, (_, obs)) in truth.entries.iter().enumerate() {
        for (bit, &o) in obs.iter().enumerate() {
            if o == Observation::NoMiscorrection && profile.count(pi, bit) > 0 {
                spurious_raw += profile.count(pi, bit);
            }
        }
    }
    assert!(
        spurious_raw > 0,
        "noise produced no spurious raw observations — test is vacuous"
    );

    // After filtering, no spurious facts survive.
    let filtered = profile.to_constraints(&ThresholdFilter::default());
    for (pi, (_, obs)) in truth.entries.iter().enumerate() {
        for (bit, &o) in obs.iter().enumerate() {
            if o == Observation::NoMiscorrection {
                assert_ne!(
                    filtered.entries[pi].1[bit],
                    Observation::Miscorrection,
                    "spurious observation survived the filter (pattern {pi}, bit {bit})"
                );
            }
        }
    }
}

#[test]
fn under_tested_profiles_do_not_poison_the_sat_instance() {
    // Regression: ThresholdFilter used to assert hard NoMiscorrection
    // facts for every discharged bit of any pattern with at least one
    // trial. An under-tested pattern (too few trials to have observed the
    // code's real miscorrections) then excluded the true code from the
    // SAT instance. With the min_trials guard, such patterns yield
    // Unknown and the true code always survives.
    let code = hamming::shortened(8);
    let patterns = PatternSet::One.patterns(8);
    let mut profile = MiscorrectionProfile::new(8, patterns.clone());
    // Pattern 0 gets one trial and — by bad luck — no observations,
    // even though the code may allow miscorrections under it. The other
    // patterns are untouched (zero trials).
    profile.record_trials(0, 1);

    let filter = ThresholdFilter::default();
    assert!(filter.min_trials >= 2, "default must guard under-testing");
    let constraints = profile.to_constraints(&filter);
    assert_eq!(
        constraints.definite_facts(),
        0,
        "a single-trial pattern's silence must not become evidence"
    );
    assert!(
        code_matches_constraints(&code, &constraints),
        "under-tested profile excluded the true code"
    );

    // The same profile through the pre-guard behavior shows the poison:
    // every discharged bit of pattern 0 becomes a hard NoMiscorrection.
    let trusting = profile.to_constraints(&ThresholdFilter::trusting());
    assert_eq!(trusting.definite_facts(), 7);

    // End to end: solving with the guarded constraints keeps the true
    // code among the candidates.
    let report = solve_profile(
        8,
        code.parity_bits(),
        &constraints,
        &BeerSolverOptions {
            max_solutions: 64,
            verify_solutions: false,
            ..BeerSolverOptions::default()
        },
    )
    .expect("well-formed constraints");
    assert!(
        report.truncated || report.solutions.iter().any(|s| equivalent(s, &code)),
        "true code missing from the guarded solve"
    );
}

#[test]
fn filter_separation_mirrors_figure_4() {
    // Figure 4: per-bit miscorrection probability mass is bimodal — zero
    // vs. clearly nonzero — so a simple threshold separates the classes.
    let mut chip = SimChip::new(ChipConfig::small_test_chip(74).with_noise(TransientNoise {
        flip_probability: 1e-6,
    }));
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let patterns = PatternSet::One.patterns(chip.k());
    let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
    let truth = analytic_profile(chip.reveal_code(), &patterns);

    // Pool the per-(pattern, bit) observation counts by ground truth class.
    let mut possible_counts: Vec<u64> = Vec::new();
    let mut impossible_counts: Vec<u64> = Vec::new();
    for (pi, (_, obs)) in truth.entries.iter().enumerate() {
        for (bit, &o) in obs.iter().enumerate() {
            match o {
                Observation::Miscorrection => possible_counts.push(profile.count(pi, bit)),
                Observation::NoMiscorrection => impossible_counts.push(profile.count(pi, bit)),
                Observation::Unknown => {}
            }
        }
    }
    let min_possible = possible_counts.iter().min().copied().unwrap_or(0);
    let max_impossible = impossible_counts.iter().max().copied().unwrap_or(0);
    assert!(
        min_possible > max_impossible,
        "classes overlap: min(real) = {min_possible}, max(spurious) = {max_impossible}"
    );
}
