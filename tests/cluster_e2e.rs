//! End-to-end cluster semantics over real loopback sockets: a submit to
//! a non-owner is proxied to the owning node and solved there exactly
//! once, an already-forwarded submit arriving at a non-owner is a typed
//! `WrongNode` (never forwarded again — the loop guard), a client with
//! a stale ring follows the typed redirect and lands exactly one job,
//! and duplicate submissions from clients on *different* nodes coalesce
//! onto one solve with both receiving the terminal result.

use beer::cluster::{Cluster, ClusterClient};
use beer::net::{Client, ClientError, ErrorKind, Ring, RingMember};
use beer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn start_service() -> Arc<RecoveryService> {
    Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(2)).expect("start service"))
}

fn two_node_cluster() -> Cluster {
    Cluster::launch(vec![start_service(), start_service()]).expect("launch cluster")
}

/// A trace whose fingerprint the named ring member owns (distinct seeds
/// give distinct profiles, so both owners appear within a few tries).
fn trace_owned_by(ring: &Ring, name: &str) -> ProfileTrace {
    for seed in 0..64 {
        let code = hamming::random_sec(8, &mut StdRng::seed_from_u64(seed));
        let trace = record_trace(&code);
        if ring.owner(trace.fingerprint()).name == name {
            return trace;
        }
    }
    panic!("no trace owned by {name} in 64 tries — ring balance is broken");
}

fn unique_code(result: beer::net::WireResult) -> LinearCode {
    let output = result.expect("job solves");
    match output.outcome {
        WireOutcome::Unique(code) => code,
        other => panic!("expected a unique recovery, got {other:?}"),
    }
}

/// The tentpole forwarding path: a client that only speaks to a
/// non-owner still gets its profile solved — by the owner, via the
/// node-to-node proxy — and the gauges on both nodes say so.
#[test]
fn forwarded_submit_solves_on_owner() {
    let cluster = two_node_cluster();
    let trace = trace_owned_by(cluster.ring(), "node-1");

    // Speak only to node-0, the non-owner; stage the trace there so the
    // submit takes the forward path instead of a redirect.
    let mut client = Client::connect(cluster.addrs()[0].clone(), "alice", "").expect("connect");
    client.upload_trace(&trace).expect("upload to non-owner");
    let job = client.submit(&trace).expect("forwarded submit acks");
    let code = unique_code(client.wait(job).expect("forwarded watch completes"));

    let secret_profile = trace.fingerprint();
    let owner = cluster.nodes()[1].service().stats();
    let proxy = cluster.nodes()[0].service().stats();
    assert_eq!(owner.submitted, 1, "the owner solves the job");
    assert_eq!(proxy.submitted, 0, "the non-owner must not solve locally");
    assert_eq!(proxy.forwarded_jobs, 1, "the proxy counts its forward");
    assert_eq!(proxy.forward_errors, 0);
    // The owner's registry answers for the fingerprint — the solve
    // landed where the ring says it lives.
    let record = cluster.nodes()[1]
        .service()
        .lookup_fingerprint(secret_profile)
        .expect("owner registry holds the fingerprint");
    match record.outcome {
        CodeOutcome::Unique(owned) => {
            assert_eq!(owned.parity_submatrix(), code.parity_submatrix());
        }
        other => panic!("expected a unique registry record, got {other:?}"),
    }
    cluster.shutdown(Duration::from_secs(2));
}

/// Cross-node trace correlation (wire v4): the trace id minted at
/// submission rides the forward hop, so querying metrics on the origin
/// *and* the owner finds the same 32-hex id — the origin's "forward"
/// flight event and the owner's admission/dispatch events stitch into
/// one trace. The owner additionally reports non-empty per-stage
/// pipeline histograms for the solve it ran.
#[test]
fn forwarded_job_reports_one_trace_id_on_both_nodes() {
    let cluster = two_node_cluster();
    let trace = trace_owned_by(cluster.ring(), "node-1");

    let mut client = Client::connect(cluster.addrs()[0].clone(), "alice", "").expect("connect");
    client.upload_trace(&trace).expect("upload to non-owner");
    let job = client.submit(&trace).expect("forwarded submit acks");
    let trace_id = job
        .trace_id
        .expect("a v4 client mints a trace id at submission");
    unique_code(client.wait(job).expect("forwarded watch completes"));

    let hex = format!("{trace_id:032x}");
    let origin_metrics = client.query_metrics(64).expect("origin metrics");
    let mut owner =
        Client::connect(cluster.addrs()[1].clone(), "alice", "").expect("connect owner");
    let owner_metrics = owner.query_metrics(64).expect("owner metrics");
    assert!(
        origin_metrics.contains(&hex),
        "the origin's flight recorder must name the trace id {hex}:\n{origin_metrics}"
    );
    assert!(
        owner_metrics.contains(&hex),
        "the owner's flight recorder must name the same trace id {hex}:\n{owner_metrics}"
    );
    assert!(
        origin_metrics.contains("flight") && origin_metrics.contains("forward"),
        "the origin records the forward hop:\n{origin_metrics}"
    );

    // The per-stage pipeline breakdown (paper Fig. 6 style) lands where
    // the solve ran: every stage histogram on the owner has samples.
    for series in [
        "pipeline_collect_ns",
        "pipeline_preprocess_ns",
        "pipeline_encode_ns",
        "pipeline_solve_ns",
        "service_queue_wait_ns",
        "service_solve_ns",
    ] {
        assert!(
            owner_metrics.contains(&format!("histogram {series} count=")),
            "owner exposition is missing {series}:\n{owner_metrics}"
        );
        assert!(
            !owner_metrics.contains(&format!("histogram {series} count=0 ")),
            "owner ran the solve, so {series} must have samples:\n{owner_metrics}"
        );
    }
    cluster.shutdown(Duration::from_secs(2));
}

/// The loop guard: a node receiving an *already-forwarded* submit for a
/// fingerprint it does not own answers a typed `WrongNode` carrying the
/// true owner, counts a forward error, and never forwards again.
#[test]
fn already_forwarded_misroute_is_typed() {
    let cluster = two_node_cluster();
    let trace = trace_owned_by(cluster.ring(), "node-1");
    let owner_addr = cluster.addrs()[1].clone();

    let mut client = Client::connect(cluster.addrs()[0].clone(), "mallory", "").expect("connect");
    let misrouted = client.submit_forwarded(&trace, Priority::Normal, None, 1, None);
    match misrouted {
        Err(ClientError::Refused {
            kind: ErrorKind::WrongNode { owner },
            ..
        }) => assert_eq!(owner, owner_addr, "the redirect names the true owner"),
        other => panic!("expected a WrongNode refusal, got {other:?}"),
    }

    let node0 = cluster.nodes()[0].service().stats();
    let node1 = cluster.nodes()[1].service().stats();
    assert_eq!(node0.forward_errors, 1, "the misroute is counted");
    assert_eq!(node0.forwarded_jobs, 0, "and is never forwarded again");
    assert_eq!(node0.submitted, 0);
    assert_eq!(node1.submitted, 0, "the owner never hears about it");
    cluster.shutdown(Duration::from_secs(2));
}

/// A client holding a stale ring follows the typed `WrongNode` redirect
/// to the new owner, adopts the pushed epoch-2 ring, and exactly one
/// job lands in the cluster.
#[test]
fn stale_epoch_redirect_lands_one_job() {
    let mut cluster = two_node_cluster();
    let trace = record_trace(&hamming::shortened(8));
    let fingerprint = trace.fingerprint();

    // Connect while epoch 1 is installed: the client adopts it.
    let mut client = ClusterClient::connect(cluster.addrs(), "alice", "").expect("connect");
    assert_eq!(client.ring().expect("ring from HelloAck").epoch(), 1);
    let stale_owner = cluster.ring().owner(fingerprint).name.clone();

    // Move ownership of *everything* to the other node at epoch 2. The
    // client still routes with its stale epoch-1 ring, so its submit
    // hits a non-owner and must come back as a redirect.
    let new_owner = usize::from(stale_owner == "node-0");
    let epoch2 = Ring::new(
        2,
        64,
        vec![RingMember {
            name: cluster.nodes()[new_owner].name.clone(),
            addr: cluster.nodes()[new_owner].addr(),
        }],
    )
    .expect("single-member ring");
    cluster.install_ring(epoch2);

    let job = client.submit(&trace).expect("redirected submit lands");
    assert_eq!(
        job.addr,
        cluster.nodes()[new_owner].addr(),
        "the job landed on the epoch-2 owner"
    );
    unique_code(client.wait(&job).expect("watch completes"));
    assert_eq!(
        client.ring().expect("ring").epoch(),
        2,
        "the redirect carried the fresher ring"
    );

    let landed = cluster.nodes()[new_owner].service().stats();
    let stale = cluster.nodes()[1 - new_owner].service().stats();
    assert_eq!(landed.submitted, 1, "exactly one job in the cluster");
    assert_eq!(stale.submitted, 0);
    assert_eq!(stale.forwarded_jobs, 0, "a redirect is not a forward");
    cluster.shutdown(Duration::from_secs(2));
}

/// The cluster keeps the single-service dedup guarantee across nodes:
/// the same profile submitted through *different* nodes is solved once,
/// and both clients receive the identical terminal result.
#[test]
fn cross_node_duplicate_coalesces_to_one_solve() {
    let cluster = two_node_cluster();
    let trace = trace_owned_by(cluster.ring(), "node-0");

    // Client A speaks to the owner directly (ring-aware routing).
    let mut alice = ClusterClient::connect(cluster.addrs(), "alice", "").expect("connect alice");
    // Client B speaks only to the non-owner and stages the trace there,
    // so its duplicate travels the cross-node forward path.
    let mut bob = Client::connect(cluster.addrs()[1].clone(), "bob", "").expect("connect bob");
    bob.upload_trace(&trace).expect("upload to non-owner");

    let job_a = alice.submit(&trace).expect("owner submit");
    assert_eq!(job_a.addr, cluster.addrs()[0], "alice routed to the owner");
    let job_b = bob.submit(&trace).expect("forwarded duplicate");

    let code_a = unique_code(alice.wait(&job_a).expect("alice terminal result"));
    let code_b = unique_code(bob.wait(job_b).expect("bob terminal result"));
    assert_eq!(
        code_a.parity_submatrix(),
        code_b.parity_submatrix(),
        "both clients recover the identical code"
    );

    let owner = cluster.nodes()[0].service().stats();
    let proxy = cluster.nodes()[1].service().stats();
    assert_eq!(owner.submitted, 2, "both submissions reach the owner");
    assert_eq!(
        owner.cache_hits + owner.coalesced,
        1,
        "exactly one of the two is actually solved"
    );
    assert_eq!(proxy.submitted, 0);
    assert_eq!(proxy.forwarded_jobs, 1);
    cluster.shutdown(Duration::from_secs(2));
}
