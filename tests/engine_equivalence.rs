//! Cross-backend equivalence: the profiling engine must extract the same
//! miscorrection facts from every backend — live simulated chip, exact
//! analytic model, EINSim Monte-Carlo, and recorded-trace replay — and the
//! progressive solver must agree with the one-shot solver while encoding
//! strictly less.

use beer::prelude::*;

fn chip_and_secret(seed: u64) -> (ChipBackend, beer::ecc::LinearCode) {
    let chip =
        SimChip::new(ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 128, 128)));
    let secret = chip.reveal_code().clone();
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    (ChipBackend::new(Box::new(chip), knowledge), secret)
}

#[test]
fn all_backends_produce_identical_constraints() {
    let (mut chip_backend, secret) = chip_and_secret(0xE0_01);
    let k = secret.k();
    let patterns = PatternSet::One.patterns(k);
    let plan = CollectionPlan::quick();
    let filter = ThresholdFilter::default();
    let engine = EngineOptions::default();

    let from_chip =
        collect_with(&mut chip_backend, &patterns, &plan, &engine).to_constraints(&filter);

    let mut analytic = AnalyticBackend::new(secret.clone());
    let from_analytic =
        collect_with(&mut analytic, &patterns, &plan, &engine).to_constraints(&filter);

    let mut einsim = EinsimBackend::new(secret.clone(), 3000, 0xE1);
    let from_einsim = collect_with(&mut einsim, &patterns, &plan, &engine).to_constraints(&filter);

    // Record the chip run and replay it through the trace backend.
    let trace = ProfileTrace::record(&mut chip_backend, &patterns, &plan);
    let text = trace.to_text();
    let mut replay = ReplayBackend::new(ProfileTrace::from_text(&text).expect("trace roundtrip"));
    let from_replay = collect_with(&mut replay, &patterns, &plan, &engine).to_constraints(&filter);

    // The analytic profile is the exact ground truth; every backend must
    // reproduce it fact for fact.
    let truth = analytic_profile(&secret, &patterns);
    assert_eq!(from_analytic, truth, "analytic backend diverged");
    assert_eq!(from_chip, truth, "chip backend diverged");
    assert_eq!(from_einsim, truth, "einsim backend diverged");
    assert_eq!(from_replay, truth, "replay backend diverged");
}

#[test]
fn every_backend_recovers_the_same_code() {
    let (mut chip_backend, secret) = chip_and_secret(0xE0_02);
    let k = secret.k();
    let patterns = PatternSet::One.patterns(k);
    let plan = CollectionPlan::quick();

    let mut backends: Vec<Box<dyn ProfileSource>> = vec![
        Box::new(AnalyticBackend::new(secret.clone())),
        Box::new(EinsimBackend::new(secret.clone(), 3000, 0xE2)),
        Box::new(ReplayBackend::new(ProfileTrace::record(
            &mut chip_backend,
            &patterns,
            &plan,
        ))),
    ];

    for backend in &mut backends {
        let profile = collect_with(
            backend.as_mut(),
            &patterns,
            &plan,
            &EngineOptions::default(),
        );
        let report = solve_profile(
            k,
            secret.parity_bits(),
            &profile.to_constraints(&ThresholdFilter::default()),
            &BeerSolverOptions::default(),
        )
        .expect("well-formed profile");
        assert!(
            report.is_unique(),
            "backend {} did not yield a unique solution",
            backend.label()
        );
        assert!(
            equivalent(&report.solutions[0], &secret),
            "backend {} recovered the wrong code",
            backend.label()
        );
    }
}

fn timed_chip_and_secret(seed: u64) -> (TimedChipBackend, beer::ecc::LinearCode) {
    let chip =
        SimChip::new(ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 128, 128)));
    let secret = chip.reveal_code().clone();
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    (TimedChipBackend::new(Box::new(chip), knowledge), secret)
}

#[test]
fn timed_backend_is_bit_identical_to_chip_backend() {
    // The timed backend executes every trial through a cycle-accurate
    // controller and derives its refresh window from the command stream —
    // timing must change the campaign's *cost*, never its *facts*.
    let (mut plain, secret) = chip_and_secret(0xE0_05);
    let (mut timed, _) = timed_chip_and_secret(0xE0_05);
    let k = secret.k();
    let patterns = PatternSet::One.patterns(k);
    let plan = CollectionPlan::quick();
    let filter = ThresholdFilter::default();
    let engine = EngineOptions::default();

    let from_plain = collect_with(&mut plain, &patterns, &plan, &engine).to_constraints(&filter);
    let from_timed = collect_with(&mut timed, &patterns, &plan, &engine).to_constraints(&filter);
    assert_eq!(
        from_plain, from_timed,
        "timed and untimed backends extracted different facts"
    );

    // The untimed backend models no time; the timed one metered the
    // campaign — tens of simulated seconds for the quick plan's sweep.
    assert_eq!(plain.sim_elapsed_ns(), None);
    let sim_ns = timed.sim_elapsed_ns().expect("timed backends meter time");
    assert!(sim_ns > 1_000_000_000, "campaign cost only {sim_ns} ns");
}

#[test]
fn timed_backend_recovers_the_same_code_with_cost_accounted() {
    let (mut plain, secret) = chip_and_secret(0xE0_06);
    let (mut timed, _) = timed_chip_and_secret(0xE0_06);

    let config = RecoveryConfig::new().with_parity_bits(secret.parity_bits());
    let plain_report = config
        .session(&mut plain)
        .run_to_completion()
        .expect("untimed session");
    let timed_report = config
        .session(&mut timed)
        .run_to_completion()
        .expect("timed session");

    let a = plain_report.outcome.unique_code().expect("unique (plain)");
    let b = timed_report.outcome.unique_code().expect("unique (timed)");
    assert!(equivalent(a, b), "backends recovered different codes");
    assert!(equivalent(a, &secret), "recovered the wrong code");

    // Identical facts ⇒ identical round counts; only the timed session
    // carries simulated DRAM cost, in both its stats and its last check.
    assert_eq!(plain_report.stats.rounds, timed_report.stats.rounds);
    assert_eq!(plain_report.stats.dram_sim_ns, 0);
    assert!(timed_report.stats.dram_sim_ns > 0);
    let last = timed_report.last_check.expect("at least one check ran");
    assert_eq!(last.sim_ns, timed_report.stats.dram_sim_ns);
}

#[test]
fn progressive_matches_one_shot_with_fewer_constraints() {
    let (_, secret) = chip_and_secret(0xE0_03);
    let k = secret.k();
    let parity = secret.parity_bits();

    // One-shot: the full {1,2}-CHARGED schedule, encoded in one go.
    let full = PatternSet::OneTwo.patterns(k);
    let full_constraints = analytic_profile(&secret, &full);
    let one_shot = solve_profile(k, parity, &full_constraints, &BeerSolverOptions::default())
        .expect("well-formed profile");
    assert!(one_shot.is_unique());

    // Progressive: batches stream in until the solution is unique.
    let mut backend = AnalyticBackend::new(secret.clone());
    let outcome = progressive_recover(
        &mut backend,
        parity,
        &progressive_batches(k, k),
        &CollectionPlan::quick(),
        &ThresholdFilter::default(),
        &BeerSolverOptions::default(),
        &EngineOptions::default(),
    )
    .expect("well-formed batches");
    assert!(outcome.report.is_unique());
    assert!(
        equivalent(&outcome.report.solutions[0], &one_shot.solutions[0]),
        "progressive and one-shot recovered different codes"
    );
    assert!(
        equivalent(&outcome.report.solutions[0], &secret),
        "progressive recovered the wrong code"
    );
    assert!(
        outcome.facts_encoded < full_constraints.definite_facts(),
        "progressive encoded {} facts, one-shot {} — no savings",
        outcome.facts_encoded,
        full_constraints.definite_facts()
    );
    assert!(
        outcome.patterns_used < outcome.patterns_available,
        "progressive consumed the whole pattern schedule"
    );
}

#[test]
fn beep_runs_against_the_chip_interface() {
    // BEEP through the same DramInterface the engine drives: plant no
    // noise, let the chip's own retention model supply weak cells, and
    // check the adapter faithfully programs and reads words.
    let mut chip = SimChip::new(ChipConfig::small_test_chip(0xE0_04));
    let secret = chip.reveal_code().clone();
    let layout = chip.config().word_layout;
    let trefw = chip.config().retention.window_for_ber(0.05, 80.0);
    let k = chip.k();
    let n = chip.n();

    // Find a word with exactly two weak data cells whose combined syndrome
    // lands on a *data* column — the condition under which their joint
    // failure produces an observable miscorrection BEEP can decode.
    let model = chip.config().retention;
    let word = (0..chip.num_words())
        .find(|&w| {
            let weak: Vec<usize> = (0..n)
                .filter(|&b| model.fails((w * n + b) as u64, trefw, 80.0))
                .collect();
            weak.len() == 2
                && weak.iter().all(|&c| c < k)
                && secret
                    .position_of_syndrome(secret.column(weak[0]) ^ secret.column(weak[1]))
                    .is_some_and(|p| p < k)
        })
        .expect("no suitable word");
    let expected: Vec<usize> = (0..n)
        .filter(|&b| model.fails((word * n + b) as u64, trefw, 80.0))
        .collect();

    let mut target = DramWordTarget::new(&mut chip, layout, word, trefw);
    let result = profile_word(&secret, &mut target, &BeepConfig::default());
    assert_eq!(result.discovered_sorted(), expected);
}
