//! Parallel collection determinism: for every backend, a seeded
//! multi-threaded run must produce a **bit-identical** merged profile to
//! the single-threaded run — the contract that makes the sharded engine a
//! drop-in replacement for the serial loop.

use beer::prelude::*;

fn raw_counts(profile: &MiscorrectionProfile) -> (Vec<Vec<u64>>, Vec<u64>) {
    let n = profile.patterns().len();
    let k = profile.k();
    let counts = (0..n)
        .map(|pi| (0..k).map(|j| profile.count(pi, j)).collect())
        .collect();
    let trials = (0..n).map(|pi| profile.trials(pi)).collect();
    (counts, trials)
}

fn assert_identical(a: &MiscorrectionProfile, b: &MiscorrectionProfile, what: &str) {
    assert_eq!(raw_counts(a), raw_counts(b), "{what}: profiles differ");
}

fn chip_backend(seed: u64, noise: Option<f64>) -> ChipBackend {
    let mut config = ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 128, 128));
    if let Some(p) = noise {
        config = config.with_noise(TransientNoise {
            flip_probability: p,
        });
    }
    let chip = SimChip::new(config);
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    ChipBackend::new(Box::new(chip), knowledge)
}

#[test]
fn chip_collection_is_thread_count_invariant() {
    let patterns = PatternSet::One.patterns(32);
    let plan = CollectionPlan::quick();
    let serial = collect_with(
        &mut chip_backend(0xD0_01, None),
        &patterns,
        &plan,
        &EngineOptions::serial(),
    );
    for threads in [2usize, 3, 8] {
        let parallel = collect_with(
            &mut chip_backend(0xD0_01, None),
            &patterns,
            &plan,
            &EngineOptions::with_threads(threads),
        );
        assert_identical(&serial, &parallel, &format!("{threads} threads"));
    }
}

#[test]
fn noisy_chip_collection_is_still_deterministic() {
    // Transient noise depends on the chip's trial counter; the sharded
    // engine seeks the counter per unit, so even the noise stream must be
    // reproduced exactly across thread counts.
    let patterns = PatternSet::One.patterns(32);
    let plan = CollectionPlan::quick();
    let serial = collect_with(
        &mut chip_backend(0xD0_02, Some(1e-5)),
        &patterns,
        &plan,
        &EngineOptions::serial(),
    );
    let noise_total: u64 = serial.per_bit_totals().iter().sum();
    assert!(noise_total > 0, "sweep observed nothing — vacuous test");
    let parallel = collect_with(
        &mut chip_backend(0xD0_02, Some(1e-5)),
        &patterns,
        &plan,
        &EngineOptions::with_threads(4),
    );
    assert_identical(&serial, &parallel, "noisy chip, 4 threads");
}

#[test]
fn parallel_collection_matches_the_legacy_serial_loop() {
    // The engine's serial and parallel paths must both reproduce the
    // original `collect_profile` word-rotation semantics exactly.
    let patterns = PatternSet::One.patterns(32);
    let plan = CollectionPlan::quick();

    let mut chip = SimChip::new(
        ChipConfig::small_test_chip(0xD0_03).with_geometry(Geometry::new(1, 128, 128)),
    );
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let legacy = collect_profile(&mut chip, &knowledge, &patterns, &plan);

    let parallel = collect_with(
        &mut chip_backend(0xD0_03, None),
        &patterns,
        &plan,
        &EngineOptions::default(),
    );
    assert_identical(&legacy, &parallel, "legacy vs engine");
}

#[test]
fn einsim_and_replay_backends_are_thread_count_invariant() {
    let chip = SimChip::new(ChipConfig::small_test_chip(0xD0_04));
    let secret = chip.reveal_code().clone();
    let patterns = PatternSet::One.patterns(secret.k());
    let plan = CollectionPlan::quick();

    let mut einsim = EinsimBackend::new(secret.clone(), 1500, 0xD0_04);
    let serial = collect_with(&mut einsim, &patterns, &plan, &EngineOptions::serial());
    let parallel = collect_with(
        &mut einsim,
        &patterns,
        &plan,
        &EngineOptions::with_threads(6),
    );
    assert_identical(&serial, &parallel, "einsim");

    let trace = ProfileTrace::record(&mut AnalyticBackend::new(secret), &patterns, &plan);
    let mut replay = ReplayBackend::new(trace);
    let serial = collect_with(&mut replay, &patterns, &plan, &EngineOptions::serial());
    let parallel = collect_with(
        &mut replay,
        &patterns,
        &plan,
        &EngineOptions::with_threads(5),
    );
    assert_identical(&serial, &parallel, "replay");
}
