//! End-to-end semantics of the recovery service: dedup coalescing
//! (verified via the event stream), mid-run cancellation, typed admission
//! backpressure, and cache-from-registry answers across a service restart.

use beer::prelude::*;
use beer::service::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn temp_registry(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("beer_service_{name}_{}.log", std::process::id()))
}

/// A backend that parks its single unit until released — used to hold the
/// one worker busy so later submissions queue deterministically.
#[derive(Clone)]
struct GateSource {
    released: Arc<AtomicBool>,
    running: Arc<AtomicBool>,
}

impl ProfileSource for GateSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "gate".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.running.store(true, Ordering::SeqCst);
        while !self.released.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

/// A backend whose units are individually fast but numerous, so a cancel
/// request always lands *mid-batch* (the engine checks the token between
/// units).
#[derive(Clone)]
struct SlowSource {
    started: Arc<AtomicBool>,
    units_run: Arc<AtomicUsize>,
}

impl ProfileSource for SlowSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "slow".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        512
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.started.store(true, Ordering::SeqCst);
        self.units_run.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(2));
        Ok(())
    }
}

fn wait_flag(flag: &AtomicBool, what: &str) {
    for _ in 0..5000 {
        if flag.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

/// The acceptance scenario: two tenants, four jobs (two byte-identical
/// profiles, one cancelled mid-run), then a service restart answering the
/// duplicate from the replayed registry.
#[test]
fn coalescing_cancellation_and_cache_across_restart() {
    let registry_path = temp_registry("e2e");
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);
    let code_a = hamming::shortened(8);
    let code_b = {
        let mut rng = StdRng::seed_from_u64(0xE2E);
        let mut candidate = hamming::random_sec(8, &mut rng);
        while equivalent(&candidate, &code_a) {
            candidate = hamming::random_sec(8, &mut rng);
        }
        candidate
    };
    let trace_a = record_trace(&code_a);
    let trace_b = record_trace(&code_b);
    let fingerprint_a = trace_a.fingerprint();

    let (job1, job2, job3, job4);
    {
        let service = RecoveryService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_registry_path(&registry_path),
        )
        .expect("start service");
        let events = service.subscribe_all();

        // Hold the single worker busy so submissions 1–4 queue up and the
        // coalescing decision is deterministic.
        let gate = GateSource {
            released: Arc::new(AtomicBool::new(false)),
            running: Arc::new(AtomicBool::new(false)),
        };
        let gate_job = service
            .submit(JobRequest::source("ops", "gate", Box::new(gate.clone())))
            .expect("gate admitted");
        wait_flag(&gate.running, "gate to occupy the worker");

        // Two tenants, four jobs; jobs 1 and 2 are byte-identical profiles.
        let slow = SlowSource {
            started: Arc::new(AtomicBool::new(false)),
            units_run: Arc::new(AtomicUsize::new(0)),
        };
        job1 = service
            .submit(JobRequest::trace("alice", trace_a.clone()))
            .expect("job1 admitted");
        job2 = service
            .submit(JobRequest::trace("bob", trace_a.clone()))
            .expect("job2 admitted");
        job3 = service
            .submit(JobRequest::source(
                "alice",
                "slow-chip",
                Box::new(slow.clone()),
            ))
            .expect("job3 admitted");
        job4 = service
            .submit(JobRequest::trace("bob", trace_b.clone()))
            .expect("job4 admitted");

        gate.released.store(true, Ordering::SeqCst);
        let _ = service.wait(gate_job);

        // Cancel job3 once it is actually running: the token lands between
        // collection units, so the cancel is observed mid-run.
        wait_flag(&slow.started, "job3 to start running");
        assert_eq!(service.status(job3), Some(JobState::Running));
        assert!(service.cancel(job3), "cancel lands on a running job");
        assert_eq!(service.wait(job3), Err(JobError::Cancelled));
        assert_eq!(service.status(job3), Some(JobState::Cancelled));
        assert!(
            slow.units_run.load(Ordering::SeqCst) < 512,
            "cancellation must stop the batch early"
        );

        // The duplicate coalesced: one recovery, one shared result.
        let out1 = service.wait(job1).expect("job1 solves");
        let out2 = service.wait(job2).expect("job2 shares the result");
        assert!(equivalent(
            out1.outcome.unique_code().expect("unique"),
            &code_a
        ));
        assert_eq!(out1.coalesced_into, None);
        assert_eq!(out2.coalesced_into, Some(job1), "job2 rode on job1");
        assert_eq!(out1.outcome, out2.outcome);
        let out4 = service.wait(job4).expect("job4 solves");
        assert!(equivalent(
            out4.outcome.unique_code().expect("unique"),
            &code_b
        ));

        // Verify the coalescing through the event stream: job2 announced
        // Coalesced onto job1, ran no session of its own (no Progress
        // events), while job1 did the solving.
        let seen: Vec<JobEvent> = events.try_iter().collect();
        assert!(
            seen.iter().any(|e| matches!(
                e,
                JobEvent::Coalesced { job, primary } if *job == job2 && *primary == job1
            )),
            "missing Coalesced event for job2"
        );
        assert!(
            seen.iter()
                .any(|e| matches!(e, JobEvent::Progress { job, .. } if *job == job1)),
            "job1 must emit session progress"
        );
        assert!(
            !seen
                .iter()
                .any(|e| matches!(e, JobEvent::Progress { job, .. } if *job == job2)),
            "job2 must not run a session"
        );

        let stats = service.stats();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.cancelled, 1);
        service.shutdown();
    }

    // Restart: the registry replays from disk and the duplicate query is
    // answered from cache, without re-solving.
    let service = RecoveryService::start(
        ServiceConfig::new()
            .with_workers(1)
            .with_registry_path(&registry_path),
    )
    .expect("restart service");
    let events = service.subscribe_all();
    assert_eq!(service.registry_size(), (2, 2), "two profiles, two codes");

    let job5 = service
        .submit(JobRequest::trace("carol", trace_a.clone()))
        .expect("resubmission admitted");
    let out5 = service.wait(job5).expect("served from cache");
    assert!(
        out5.from_cache,
        "must be answered from the replayed registry"
    );
    assert!(equivalent(
        out5.outcome.unique_code().expect("unique"),
        &code_a
    ));
    let seen: Vec<JobEvent> = events.try_iter().collect();
    assert!(
        seen.iter()
            .any(|e| matches!(e, JobEvent::CacheHit { job } if *job == job5)),
        "missing CacheHit event"
    );
    assert!(
        !seen.iter().any(|e| matches!(e, JobEvent::Progress { .. })),
        "a cache hit must not solve anything"
    );
    assert_eq!(service.stats().cache_hits, 1);

    // Registry queries: by fingerprint, by canonical-code equality, by
    // dimensions.
    let record = service
        .lookup_fingerprint(fingerprint_a)
        .expect("record for trace A");
    assert_eq!(record.tenant, "alice", "the original solver is recorded");
    let entry = service.lookup_code(&code_a).expect("code entry for A");
    assert!(entry.fingerprints.contains(&fingerprint_a));
    assert_eq!(service.lookup_dims(code_a.n(), code_a.k()).len(), 2);
    service.shutdown();

    // The registry file itself replays standalone.
    let registry = Registry::open(&registry_path).expect("replay log");
    assert_eq!(registry.record_count(), 2);
    assert_eq!(registry.code_count(), 2);
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);
}

/// Admission control: typed QueueFull and TooLarge rejections.
#[test]
fn admission_backpressure_is_typed() {
    let gate = GateSource {
        released: Arc::new(AtomicBool::new(false)),
        running: Arc::new(AtomicBool::new(false)),
    };
    let service = RecoveryService::start(
        ServiceConfig::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_max_patterns(64),
    )
    .expect("start");

    // Occupy the worker, then fill the single queue slot.
    let gate_job = service
        .submit(JobRequest::source("t", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    wait_flag(&gate.running, "gate to occupy the worker");
    let trace = record_trace(&hamming::shortened(8));
    let queued = service
        .submit(JobRequest::trace("t", trace.clone()))
        .expect("first queued job fits");

    // Queue full: typed backpressure, not unbounded growth.
    let other = record_trace(&hamming::shortened(10));
    assert_eq!(
        service.submit(JobRequest::trace("t", other)),
        Err(Rejected::QueueFull { capacity: 1 })
    );

    // A duplicate of an in-flight profile still coalesces — dedup costs no
    // queue slot.
    let dup = service
        .submit(JobRequest::trace("u", trace.clone()))
        .expect("duplicates coalesce past a full queue");

    // Oversized jobs are rejected up front.
    let big = record_trace(&hamming::shortened(16));
    let patterns = big.patterns.len();
    assert!(patterns > 64);
    assert_eq!(
        service.submit(JobRequest::trace("t", big)),
        Err(Rejected::TooLarge {
            patterns,
            limit: 64
        })
    );

    // Invalid tenants never reach the queue.
    assert!(matches!(
        service.submit(JobRequest::trace("", trace.clone())),
        Err(Rejected::InvalidTenant { .. })
    ));
    assert!(matches!(
        service.submit(JobRequest::trace("a b", trace.clone())),
        Err(Rejected::InvalidTenant { .. })
    ));

    // A backend the configured schedule cannot cover is rejected typed,
    // not a panic out of submit().
    struct TinySource;
    impl ProfileSource for TinySource {
        fn k(&self) -> usize {
            1
        }
        fn label(&self) -> String {
            "tiny".to_string()
        }
        fn num_units(&self, _p: &[ChargedSet], _plan: &CollectionPlan) -> usize {
            1
        }
        fn run_unit(
            &mut self,
            _u: usize,
            _p: &[ChargedSet],
            _plan: &CollectionPlan,
            _profile: &mut MiscorrectionProfile,
        ) -> Result<(), EngineError> {
            Ok(())
        }
    }
    assert_eq!(
        service.submit(JobRequest::source("t", "tiny", Box::new(TinySource))),
        Err(Rejected::Unschedulable { k: 1 })
    );

    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    assert!(service.wait(queued).is_ok());
    assert!(service.wait(dup).is_ok());
    service.shutdown();
}

/// A deadline covers queue wait: a job that expires before a worker picks
/// it up fails typed, and an unknown id is a typed error, not a hang.
#[test]
fn queue_deadline_and_unknown_ids() {
    let gate = GateSource {
        released: Arc::new(AtomicBool::new(false)),
        running: Arc::new(AtomicBool::new(false)),
    };
    let service = RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start");
    let gate_job = service
        .submit(JobRequest::source("t", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    wait_flag(&gate.running, "gate to occupy the worker");

    let trace = record_trace(&hamming::shortened(8));
    let doomed = service
        .submit(JobRequest::trace("t", trace.clone()).with_deadline(Duration::ZERO))
        .expect("admitted");
    // A coalesced waiter's deadline is honored too: a primary without a
    // deadline absorbs a zero-deadline duplicate, and the waiter still
    // expires instead of inheriting a late success.
    let primary = service
        .submit(JobRequest::trace(
            "u",
            record_trace(&hamming::shortened(10)),
        ))
        .expect("admitted");
    let doomed_waiter = service
        .submit(
            JobRequest::trace("v", record_trace(&hamming::shortened(10)))
                .with_deadline(Duration::ZERO),
        )
        .expect("admitted");
    gate.released.store(true, Ordering::SeqCst);
    assert_eq!(service.wait(doomed), Err(JobError::DeadlineExpired));
    assert_eq!(service.status(doomed), Some(JobState::Failed));
    assert!(service.wait(primary).is_ok(), "the primary itself succeeds");
    assert_eq!(service.wait(doomed_waiter), Err(JobError::DeadlineExpired));

    let _ = service.wait(gate_job);
    assert_eq!(service.wait(JobId(9999)), Err(JobError::Unknown));
    service.shutdown();
}
