//! Semantics of the unified recovery session: budgets and cancellation,
//! checkpoint → replay reproducibility, fleet determinism, and typed
//! error propagation from the engine.

use beer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn random_code(k: usize, seed: u64) -> beer::ecc::LinearCode {
    hamming::random_sec(k, &mut StdRng::seed_from_u64(seed))
}

/// A config whose schedule takes several rounds for a k-bit code: one
/// 1-CHARGED batch, then tiny 2-CHARGED chunks.
fn slow_schedule() -> RecoveryConfig {
    RecoveryConfig::new().with_chunked_schedule(2)
}

#[test]
fn session_advances_step_wise_and_matches_progressive_recover() {
    let code = random_code(11, 0x5E55_0001);
    let config = slow_schedule().with_parity_bits(code.parity_bits());

    // Step-wise: drive the state machine by hand.
    let mut stepped = AnalyticBackend::new(code.clone());
    let mut session = config.session(&mut stepped);
    let mut rounds = 0;
    while session.advance().expect("analytic") == SessionStatus::Running {
        rounds += 1;
        assert!(session.outcome().is_none());
        assert!(session.last_check().is_some());
    }
    assert_eq!(session.stats().rounds, rounds + 1);
    let stepped_report = session.into_report();
    let stepped_code = stepped_report.outcome.unique_code().expect("unique");

    // The low-level wrapper must reach the identical outcome.
    let mut backend = AnalyticBackend::new(code.clone());
    let outcome = beer::core::solve::progressive_recover(
        &mut backend,
        code.parity_bits(),
        &beer::core::solve::progressive_batches(11, 2),
        &CollectionPlan::quick(),
        &ThresholdFilter::default(),
        &BeerSolverOptions::default(),
        &EngineOptions::default(),
    )
    .expect("well-formed batches");
    assert!(outcome.report.is_unique());
    assert_eq!(
        outcome.report.solutions[0].parity_submatrix(),
        stepped_code.parity_submatrix(),
        "wrapper and step-wise session disagree"
    );
    assert_eq!(outcome.rounds, stepped_report.stats.rounds);
    assert_eq!(outcome.patterns_used, stepped_report.stats.patterns_used);
}

#[test]
fn zero_deadline_exhausts_before_any_round() {
    let code = random_code(10, 0x5E55_0002);
    let mut backend = AnalyticBackend::new(code.clone());
    let report = slow_schedule()
        .with_parity_bits(code.parity_bits())
        .with_deadline(Duration::ZERO)
        .session(&mut backend)
        .run_to_completion()
        .expect("budget exhaustion is an outcome, not an error");
    match report.outcome {
        RecoveryOutcome::BudgetExhausted { reason, partial } => {
            assert_eq!(reason, BudgetReason::Deadline);
            assert!(partial.is_empty(), "no check ran, so no candidates");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(report.stats.rounds, 0);
    assert!(report.last_check.is_none());
}

#[test]
fn cancellation_mid_session_reports_partial_candidates() {
    // k=6 shortened codes are typically ambiguous after 1-CHARGED alone
    // (Fig. 5), so the first round leaves candidates for `partial`.
    let code = random_code(6, 0x5E55_0003);
    let mut backend = AnalyticBackend::new(code.clone());
    let mut session = slow_schedule()
        .with_parity_bits(code.parity_bits())
        .with_max_solutions(50)
        .session(&mut backend);
    let token = session.cancel_token();
    let status = session.advance().expect("analytic");
    if status == SessionStatus::Finished {
        // Rare: already unique after round 1 — nothing to cancel.
        return;
    }
    let after_round_one = session.last_check().expect("one check ran").solutions.len();
    assert!(after_round_one > 1, "expected ambiguity after 1-CHARGED");
    token.cancel();
    assert_eq!(
        session.advance().expect("analytic"),
        SessionStatus::Finished
    );
    match session.into_report().outcome {
        RecoveryOutcome::BudgetExhausted { reason, partial } => {
            assert_eq!(reason, BudgetReason::Cancelled);
            assert_eq!(partial.len(), after_round_one);
            assert!(
                partial.iter().any(|c| equivalent(c, &code)),
                "true code must be among the partial candidates"
            );
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    // Cancelling again is idempotent.
    assert!(token.is_cancelled());
}

#[test]
fn pattern_and_fact_budgets_stop_the_schedule() {
    let code = random_code(8, 0x5E55_0004);
    let mut backend = AnalyticBackend::new(code.clone());
    let report = slow_schedule()
        .with_parity_bits(code.parity_bits())
        .with_max_patterns(8)
        .session(&mut backend)
        .run_to_completion()
        .expect("analytic");
    match &report.outcome {
        RecoveryOutcome::BudgetExhausted { reason, .. } => {
            assert_eq!(*reason, BudgetReason::MaxPatterns);
            assert!(report.stats.patterns_used >= 8);
            assert!(report.stats.patterns_used < report.stats.patterns_available);
        }
        RecoveryOutcome::Unique(_) => {
            // The code happened to pin down before the budget fired —
            // acceptable, but the budget must then never have exceeded.
            assert!(report.stats.patterns_used <= 10);
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    let mut backend = AnalyticBackend::new(code.clone());
    let report = slow_schedule()
        .with_parity_bits(code.parity_bits())
        .with_max_facts(6)
        .session(&mut backend)
        .run_to_completion()
        .expect("analytic");
    if let RecoveryOutcome::BudgetExhausted { reason, .. } = &report.outcome {
        assert_eq!(*reason, BudgetReason::MaxFacts);
        assert!(report.stats.facts_encoded >= 6);
    }
}

#[test]
fn checkpoint_replay_reproduces_the_outcome_bit_identically() {
    // Chip-backed session with trace recording; the checkpoint replayed
    // through a ReplayBackend must reproduce outcome and bookkeeping
    // exactly.
    let chip = SimChip::new(ChipConfig::small_test_chip(0x5E55_0005));
    let secret = chip.reveal_code().clone();
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    let config = RecoveryConfig::new()
        .with_parity_bits(secret.parity_bits())
        .with_chunked_schedule(16);
    let live = config
        .clone()
        .with_trace_recording(true)
        .session(&mut backend)
        .run_to_completion()
        .expect("simulated chip");
    let live_code = live.outcome.unique_code().expect("unique live recovery");
    assert!(equivalent(live_code, &secret));

    let trace = live.trace.expect("recording was on");
    // The checkpoint itself round-trips through the text format.
    let parsed = ProfileTrace::from_text(&trace.to_text()).expect("roundtrip");
    let mut replay = ReplayBackend::new(parsed);
    let replayed = config
        .session(&mut replay)
        .run_to_completion()
        .expect("checkpoint covers every batch the session re-requests");
    let replayed_code = replayed.outcome.unique_code().expect("unique replay");
    assert_eq!(
        live_code.parity_submatrix(),
        replayed_code.parity_submatrix(),
        "replayed recovery differs from the live run"
    );
    assert_eq!(live.stats.rounds, replayed.stats.rounds);
    assert_eq!(live.stats.patterns_used, replayed.stats.patterns_used);
    assert_eq!(live.stats.facts_encoded, replayed.stats.facts_encoded);
}

#[test]
fn fleet_of_four_chips_equals_four_serial_sessions() {
    let codes: Vec<_> = (0..4).map(|i| random_code(9, 0xF1EE_7000 + i)).collect();
    let config = RecoveryConfig::new().with_chunked_schedule(4);

    // Four serial sessions, one after another.
    let serial: Vec<RecoveryReport> = codes
        .iter()
        .map(|code| {
            let mut backend = AnalyticBackend::new(code.clone());
            config
                .session(&mut backend)
                .run_to_completion()
                .expect("analytic")
        })
        .collect();

    // The same four chips as a concurrent fleet.
    let members: Vec<FleetMember> = codes
        .iter()
        .enumerate()
        .map(|(i, code)| {
            FleetMember::new(
                format!("chip-{i}"),
                Box::new(AnalyticBackend::new(code.clone())),
            )
        })
        .collect();
    let outcomes = config.fleet().with_threads(4).run(members);

    assert_eq!(outcomes.len(), 4);
    for (i, (serial_report, fleet_outcome)) in serial.iter().zip(&outcomes).enumerate() {
        assert_eq!(fleet_outcome.label, format!("chip-{i}"), "order lost");
        let fleet_report = fleet_outcome.result.as_ref().expect("analytic");
        let a = serial_report.outcome.unique_code().expect("serial unique");
        let b = fleet_report.outcome.unique_code().expect("fleet unique");
        assert_eq!(
            a.parity_submatrix(),
            b.parity_submatrix(),
            "chip-{i}: fleet and serial recovered different codes"
        );
        assert!(equivalent(a, &codes[i]));
        assert_eq!(serial_report.stats.rounds, fleet_report.stats.rounds);
        assert_eq!(
            serial_report.stats.facts_encoded,
            fleet_report.stats.facts_encoded
        );
    }
}

/// A backend that panics on its first unit — a misbehaving fleet member.
struct PanickyChip;

impl ProfileSource for PanickyChip {
    fn k(&self) -> usize {
        9
    }

    fn label(&self) -> String {
        "panicky".to_string()
    }

    fn num_units(&self, patterns: &[beer::core::ChargedSet], _plan: &CollectionPlan) -> usize {
        patterns.len()
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[beer::core::ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        panic!("fleet member blew up");
    }
}

#[test]
fn fleet_isolates_a_panicking_member() {
    let code = random_code(9, 0xF1EE_8000);
    let members = vec![
        FleetMember::new("good", Box::new(AnalyticBackend::new(code.clone()))),
        FleetMember::new("bad", Box::new(PanickyChip)),
        FleetMember::new("good-too", Box::new(AnalyticBackend::new(code.clone()))),
    ];
    let outcomes = RecoveryConfig::new()
        .with_chunked_schedule(4)
        .fleet()
        .with_threads(2)
        .run(members);
    assert_eq!(outcomes.len(), 3);
    for idx in [0, 2] {
        let report = outcomes[idx].result.as_ref().expect("healthy member");
        assert!(
            equivalent(report.outcome.unique_code().expect("unique"), &code),
            "member {idx} must still recover despite the panicking sibling"
        );
    }
    assert_eq!(outcomes[1].label, "bad");
    match &outcomes[1].result {
        Err(RecoveryError::Engine(EngineError::Backend { backend, message })) => {
            assert!(backend.contains("bad"), "got {backend}");
            assert_eq!(message, "fleet member blew up");
        }
        other => panic!("expected the member's panic as a typed error, got {other:?}"),
    }
}

#[test]
fn replay_exhaustion_surfaces_as_a_typed_engine_error() {
    // Record only the 1-CHARGED family of an ambiguous (k = 6, shortened)
    // code; a progressive session over the replay needs 2-CHARGED evidence
    // the trace lacks — a typed error, not a panic or an empty profile.
    let code = random_code(6, 0x5E55_0007);
    let mut backend = AnalyticBackend::new(code.clone());
    let recording = RecoveryConfig::new()
        .with_parity_bits(code.parity_bits())
        .with_max_solutions(50)
        .with_pattern_family(PatternSet::One)
        .with_trace_recording(true)
        .session(&mut backend)
        .run_to_completion()
        .expect("analytic");
    match &recording.outcome {
        RecoveryOutcome::Ambiguous { count, .. } => assert!(*count > 1),
        RecoveryOutcome::Unique(_) => return, // rare seed: nothing to exhaust
        other => panic!("unexpected outcome {other:?}"),
    }

    let mut replay = ReplayBackend::new(recording.trace.expect("recording was on"));
    let err = RecoveryConfig::new()
        .with_parity_bits(code.parity_bits())
        .with_max_solutions(50)
        .with_chunked_schedule(4)
        .session(&mut replay)
        .run_to_completion()
        .expect_err("the trace lacks 2-CHARGED patterns");
    match err {
        RecoveryError::Engine(EngineError::TraceMissingPattern { pattern, recorded }) => {
            assert_eq!(recorded, 6, "six 1-CHARGED patterns were recorded");
            assert!(pattern.contains("2-CHARGED"), "got {pattern}");
        }
        other => panic!("expected TraceMissingPattern, got {other:?}"),
    }
}

#[test]
fn inconsistent_profiles_finish_with_a_typed_outcome() {
    // A trace claiming a physically impossible miscorrection (order-0
    // pattern with an observation) drives the session to Inconsistent.
    let text = "beer-profile-trace v1\nk 4\npattern\nunit\nm 0 1 8\nt 0 8\n";
    let trace = ProfileTrace::from_text(text).expect("well-formed trace");
    let patterns = trace.patterns.clone();
    let mut replay = ReplayBackend::new(trace);
    let report = RecoveryConfig::new()
        .with_parity_bits(3)
        .with_batches(vec![patterns])
        .with_filter(ThresholdFilter::trusting())
        .with_solver_options(BeerSolverOptions {
            verify_solutions: false,
            ..BeerSolverOptions::default()
        })
        .session(&mut replay)
        .run_to_completion()
        .expect("replay serves the recorded pattern");
    assert!(matches!(report.outcome, RecoveryOutcome::Inconsistent));
}

#[test]
fn observer_sees_every_round_in_order() {
    let code = random_code(8, 0x5E55_0008);
    let mut backend = AnalyticBackend::new(code.clone());
    let mut log: Vec<String> = Vec::new();
    let report = RecoveryConfig::new()
        .with_parity_bits(code.parity_bits())
        .with_chunked_schedule(4)
        .session(&mut backend)
        .with_observer(|event| {
            log.push(match event {
                RecoveryEvent::BatchCollected { round, .. } => format!("collect:{round}"),
                RecoveryEvent::FactsPushed { round, .. } => format!("push:{round}"),
                RecoveryEvent::CounterexampleRepaired { round, .. } => format!("repair:{round}"),
                RecoveryEvent::CheckCompleted { round, .. } => format!("check:{round}"),
            });
        })
        .run_to_completion()
        .expect("analytic");
    let rounds = report.stats.rounds;
    assert!(rounds >= 1);
    // Each round emits collect → push → [repair] → check, in order.
    let mut expected_round = 0;
    for entry in &log {
        let (kind, round) = entry.split_once(':').unwrap();
        let round: usize = round.parse().unwrap();
        if kind == "collect" {
            expected_round += 1;
        }
        assert_eq!(round, expected_round, "event out of order: {log:?}");
    }
    assert_eq!(
        log.iter().filter(|e| e.starts_with("check:")).count(),
        rounds
    );
    assert_eq!(
        log.iter().filter(|e| e.starts_with("collect:")).count(),
        rounds
    );
}

/// A panic payload whose own `Drop` panics — the worst-case member
/// failure. Before the poison-recovery fix, the second panic unwound out
/// of the fleet worker after `catch_unwind`, poisoning the shared
/// queue/slots mutexes and aborting the entire `fleet.run` (unrelated
/// members included). Now it must surface as that one member's typed
/// error.
struct VenomousPayload;

impl Drop for VenomousPayload {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            panic!("venomous payload dropped");
        }
    }
}

struct VenomousBackend;

impl ProfileSource for VenomousBackend {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "venomous".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        std::panic::panic_any(VenomousPayload);
    }
}

#[test]
fn fleet_survives_a_member_whose_panic_payload_panics_on_drop() {
    let code = random_code(8, 0x5E55_0009);
    let members = vec![
        FleetMember::new("healthy-0", Box::new(AnalyticBackend::new(code.clone()))),
        FleetMember::new("venomous", Box::new(VenomousBackend)),
        FleetMember::new("healthy-1", Box::new(AnalyticBackend::new(code.clone()))),
    ];
    let outcomes = RecoveryConfig::new()
        .with_parity_bits(code.parity_bits())
        .fleet()
        .with_threads(2)
        .run(members);

    assert_eq!(outcomes.len(), 3, "every member reports, in member order");
    for (i, expected) in ["healthy-0", "venomous", "healthy-1"].iter().enumerate() {
        assert_eq!(&outcomes[i].label, expected);
    }
    // The poisoned member fails typed, attributed to itself.
    match &outcomes[1].result {
        Err(RecoveryError::Engine(EngineError::Backend { backend, message })) => {
            assert!(backend.contains("venomous"), "got {backend:?}");
            assert_eq!(message, "non-string panic payload");
        }
        other => panic!("expected the member's typed error, got {other:?}"),
    }
    // Unrelated members complete normally.
    for i in [0, 2] {
        let report = outcomes[i].result.as_ref().expect("healthy member");
        let recovered = report.outcome.unique_code().expect("unique");
        assert!(equivalent(recovered, &code), "member {i}");
    }
}
