//! Service soak: 240 mixed jobs from 4 concurrent submitters —
//! duplicates, cancellations, deadline expiries, and one poisoned
//! backend — asserting no deadlock (a watchdog aborts a hung run),
//! deterministic registry contents, and service-equals-serial results.

use beer::prelude::*;
use beer::service::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SUBMITTERS: usize = 4;
const JOBS_PER_SUBMITTER: usize = 60;
const MAIN_POOL: usize = 12;
const EXPIRED_POOL: usize = 3;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

/// Distinct (pairwise inequivalent) random SEC codes.
fn distinct_codes(count: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(8, &mut rng);
        if !codes.iter().any(|c| equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

/// A cancellable backend: many small units, so a cancel token always lands
/// mid-batch; records nothing.
#[derive(Clone)]
struct SlowSource;

impl ProfileSource for SlowSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "slow".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        2048
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        std::thread::sleep(Duration::from_millis(1));
        Ok(())
    }
}

/// The poisoned backend: panics on its first unit.
#[derive(Clone)]
struct PoisonedSource;

impl ProfileSource for PoisonedSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "poisoned".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        panic!("poisoned backend detonated");
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Main(usize),
    Expired(usize),
    Cancelled,
    Poisoned,
}

#[test]
fn soak_240_mixed_jobs() {
    // No-deadlock guarantee: a hung run is aborted loudly instead of
    // wedging the test harness.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(240));
        eprintln!("service_soak watchdog fired: deadlock suspected");
        std::process::abort();
    });

    let registry_path =
        std::env::temp_dir().join(format!("beer_service_soak_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);

    let main_codes = distinct_codes(MAIN_POOL, 0x50AC);
    let main_traces: Vec<ProfileTrace> = main_codes.iter().map(record_trace).collect();
    // Deadline-doomed profiles are distinct from the main pool so their
    // (never-recorded) fingerprints stay out of the registry.
    let expired_codes = distinct_codes(MAIN_POOL + EXPIRED_POOL, 0x50AC).split_off(MAIN_POOL);
    let expired_traces: Vec<ProfileTrace> = expired_codes.iter().map(record_trace).collect();

    let service = Arc::new(
        RecoveryService::start(
            ServiceConfig::new()
                .with_workers(4)
                .with_queue_capacity(512)
                .with_compact_after(24) // exercise auto-compaction mid-soak
                .with_registry_path(&registry_path),
        )
        .expect("start service"),
    );

    let poisoned_submitted = Arc::new(AtomicUsize::new(0));
    let mut submitters = Vec::new();
    for s in 0..SUBMITTERS {
        let service = Arc::clone(&service);
        let main_traces = main_traces.clone();
        let expired_traces = expired_traces.clone();
        let poisoned_submitted = Arc::clone(&poisoned_submitted);
        submitters.push(std::thread::spawn(move || {
            let tenant = format!("tenant-{s}");
            let mut jobs: Vec<(JobId, Kind)> = Vec::new();
            let mut main_count = 0usize;
            for i in 0..JOBS_PER_SUBMITTER {
                match i % 6 {
                    // Bulk of the load: every submitter sweeps the whole
                    // pool (offset per submitter), so every profile is
                    // duplicated across submitters.
                    0..=3 => {
                        let which = (s + main_count) % main_traces.len();
                        main_count += 1;
                        let id = service
                            .submit(JobRequest::trace(&tenant, main_traces[which].clone()))
                            .expect("main job admitted");
                        jobs.push((id, Kind::Main(which)));
                    }
                    // Deadline expiries: a zero deadline covers queue wait,
                    // so these always fail typed.
                    4 => {
                        let which = i % expired_traces.len();
                        let id = service
                            .submit(
                                JobRequest::trace(&tenant, expired_traces[which].clone())
                                    .with_deadline(Duration::ZERO),
                            )
                            .expect("expiring job admitted");
                        jobs.push((id, Kind::Expired(which)));
                    }
                    // Cancellations (plus exactly one poisoned backend).
                    _ => {
                        if poisoned_submitted.fetch_add(1, Ordering::SeqCst) == 0 {
                            let id = service
                                .submit(JobRequest::source(
                                    &tenant,
                                    "poisoned",
                                    Box::new(PoisonedSource),
                                ))
                                .expect("poisoned job admitted");
                            jobs.push((id, Kind::Poisoned));
                        } else {
                            let id = service
                                .submit(JobRequest::source(&tenant, "slow", Box::new(SlowSource)))
                                .expect("slow job admitted");
                            service.cancel(id);
                            jobs.push((id, Kind::Cancelled));
                        }
                    }
                }
            }
            jobs
        }));
    }
    let jobs: Vec<(JobId, Kind)> = submitters
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    assert_eq!(jobs.len(), SUBMITTERS * JOBS_PER_SUBMITTER);
    assert!(jobs.len() >= 200, "soak must drive at least 200 jobs");

    // Serial ground truth: what one session over each trace recovers.
    let serial: Vec<LinearCode> = main_traces
        .iter()
        .map(|trace| {
            let mut backend = ReplayBackend::new(trace.clone());
            let report = RecoveryConfig::new()
                .session(&mut backend)
                .run_to_completion()
                .expect("serial recovery");
            canonicalize(report.outcome.unique_code().expect("clean profile"))
        })
        .collect();

    // Every job terminates with its deterministic result class.
    for &(id, kind) in &jobs {
        let result = service.wait(id);
        match kind {
            Kind::Main(which) => {
                let output = result.unwrap_or_else(|e| panic!("main job {id}: {e}"));
                let code = output.outcome.unique_code().expect("unique recovery");
                // Fleet-equals-serial: the pooled, deduped, multi-worker
                // answer is the serial session's answer.
                assert!(
                    equivalent(code, &serial[which]),
                    "job {id} disagrees with the serial recovery of trace {which}"
                );
            }
            Kind::Expired(_) => {
                assert_eq!(result, Err(JobError::DeadlineExpired), "job {id}");
                assert_eq!(service.status(id), Some(JobState::Failed));
            }
            Kind::Cancelled => {
                assert_eq!(result, Err(JobError::Cancelled), "job {id}");
                assert_eq!(service.status(id), Some(JobState::Cancelled));
            }
            Kind::Poisoned => {
                match result {
                    Err(JobError::Recovery(RecoveryError::Engine(EngineError::Backend {
                        message,
                        ..
                    }))) => assert!(message.contains("detonated"), "got {message:?}"),
                    other => panic!("poisoned backend must fail typed, got {other:?}"),
                }
                assert_eq!(service.status(id), Some(JobState::Failed));
            }
        }
    }

    // The whole point of dedup: 160 main submissions over 12 profiles cost
    // at most 12 solves.
    let stats = service.stats();
    assert_eq!(stats.submitted, jobs.len() as u64);
    assert!(
        stats.coalesced + stats.cache_hits
            >= (stats.submitted - stats.failed - stats.cancelled)
                .saturating_sub(MAIN_POOL as u64 + 1),
        "dedup must absorb duplicate main jobs: {stats:?}"
    );
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0);

    // Deterministic registry contents: exactly the main pool's recoveries,
    // regardless of scheduling, coalescing, or compaction timing.
    let (records, codes) = service.registry_size();
    assert_eq!(records, MAIN_POOL, "one record per distinct profile");
    assert_eq!(codes, MAIN_POOL, "one code per distinct profile");
    for (trace, expected) in main_traces.iter().zip(&serial) {
        let record = service
            .lookup_fingerprint(trace.fingerprint())
            .expect("every main profile is recorded");
        let stored = record.outcome.unique_code().expect("unique");
        assert!(equivalent(stored, expected));
        assert!(service.lookup_code(expected).is_some());
    }
    drop(jobs);
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("all submitters joined; the Arc must be unique"),
    }

    // The log replays to the same deterministic state (and compaction ran,
    // so it replays from a snapshot + tail).
    let registry = Registry::open(&registry_path).expect("replay soak log");
    assert_eq!(registry.record_count(), MAIN_POOL);
    assert_eq!(registry.code_count(), MAIN_POOL);
    assert_eq!(registry.skipped_lines(), 0);
    for expected in &serial {
        assert!(registry.lookup_code(expected).is_some());
    }
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);
}
