//! Cursor-paginated registry queries across the full network stack: a
//! v2 client pages a dimension query past the server's per-answer cap
//! with no truncation, cursors survive tampering only as typed
//! BadRequest refusals (the connection stays usable), and a v1 peer
//! still gets the capped single-frame answer it always got.

use beer::net::wire::{self, ErrorKind, Message};
use beer::net::{Client, ClientError, NetServer, NetServerConfig};
use beer::prelude::*;
use beer::service::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_registry(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("beer_net_pagination_{name}_{}", std::process::id()))
}

/// Fills a registry with `count` unique-outcome records sharing one
/// (n, k), returning the dims and the number of distinct canonical codes
/// actually stored (random codes occasionally collide into one class).
fn populate(path: &PathBuf, count: usize) -> ((u32, u32), usize) {
    let _ = std::fs::remove_dir_all(path);
    let _ = std::fs::remove_file(path);
    let mut registry = Registry::open(path).expect("open fresh registry");
    let mut dims = None;
    let mut classes = HashSet::new();
    for i in 0..count {
        let code = hamming::random_sec(12, &mut StdRng::seed_from_u64(i as u64));
        let canonical = canonicalize(&code);
        dims = Some((canonical.n() as u32, canonical.k() as u32));
        classes.insert(beer::ecc::equivalence::canonical_hash(&canonical));
        registry
            .record(
                Fingerprint(0x5EED_0000 + i as u128),
                "alice",
                &CodeOutcome::Unique(code),
            )
            .expect("record");
    }
    (dims.expect("count > 0"), classes.len())
}

#[test]
fn v2_client_pages_past_the_server_cap_without_truncation() {
    let path = temp_registry("pages");
    let ((n, k), distinct) = populate(&path, 10);
    assert!(distinct > 4, "need more classes than the server cap");

    let service = Arc::new(
        RecoveryService::start(ServiceConfig::new().with_registry_path(&path)).expect("start"),
    );
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_query_entries(4),
    )
    .expect("bind");
    let mut client =
        Client::connect(server.local_addr().to_string(), "alice", "").expect("connect");
    assert_eq!(client.version(), wire::WIRE_VERSION);

    // Page to completion: every class comes back exactly once, no page
    // over the cap, and the server never counted a truncated answer.
    let entries = client.query_dims_all(n, k).expect("paged query");
    let hashes: HashSet<u64> = entries.iter().map(|e| e.hash).collect();
    assert_eq!(entries.len(), distinct, "every entry exactly once");
    assert_eq!(hashes.len(), distinct, "no duplicates across pages");
    assert_eq!(service.stats().truncated_answers, 0);

    // A single explicit page respects the requested limit.
    let (page, next) = client.query_dims_page(n, k, None, 2).expect("first page");
    assert_eq!(page.len(), 2);
    assert!(next.is_some(), "more classes remain");

    // The old capped query still truncates — and is counted.
    let capped = client.query_dims(n, k).expect("v1-style query");
    assert_eq!(capped.len(), 4, "v1 answers stop at the cap");
    assert_eq!(service.stats().truncated_answers, 1);

    // Hash pagination drains a bucket the same way.
    let hash = entries[0].hash;
    let by_hash = client.query_hash_all(hash).expect("hash query");
    assert_eq!(by_hash.len(), 1);
    assert_eq!(by_hash[0].hash, hash);

    client.close();
    drop(server);
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn bad_cursors_are_typed_refusals_and_the_connection_survives() {
    let path = temp_registry("cursors");
    let ((n, k), _) = populate(&path, 10);

    let service = Arc::new(
        RecoveryService::start(ServiceConfig::new().with_registry_path(&path)).expect("start"),
    );
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_query_entries(4),
    )
    .expect("bind");
    let mut client =
        Client::connect(server.local_addr().to_string(), "alice", "").expect("connect");

    // Garbage bytes: refused, typed.
    match client.query_dims_page(n, k, Some(vec![1, 2, 3]), 0) {
        Err(ClientError::Refused {
            kind: ErrorKind::BadRequest,
            ..
        }) => {}
        other => panic!("garbage cursor must be BadRequest, got {other:?}"),
    }

    // A real cursor with one flipped byte: the checksum catches it.
    let (_, next) = client.query_dims_page(n, k, None, 2).expect("first page");
    let mut tampered = next.clone().expect("more pages");
    tampered[10] ^= 0x40;
    match client.query_dims_page(n, k, tampered.into(), 2) {
        Err(ClientError::Refused {
            kind: ErrorKind::BadRequest,
            ..
        }) => {}
        other => panic!("tampered cursor must be BadRequest, got {other:?}"),
    }

    // A cursor minted for one query refused for another (same shape,
    // different dims).
    match client.query_dims_page(n + 1, k, next.clone(), 2) {
        Err(ClientError::Refused {
            kind: ErrorKind::BadRequest,
            ..
        }) => {}
        other => panic!("mismatched cursor must be BadRequest, got {other:?}"),
    }

    // The refusals did not poison the connection: the honest cursor
    // still resumes.
    let (page, _) = client
        .query_dims_page(n, k, next, 2)
        .expect("valid resume after refusals");
    assert!(!page.is_empty());

    client.close();
    drop(server);
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn v1_peers_get_capped_answers_and_no_pagination() {
    let path = temp_registry("v1");
    let ((n, k), _) = populate(&path, 10);

    let service = Arc::new(
        RecoveryService::start(ServiceConfig::new().with_registry_path(&path)).expect("start"),
    );
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_query_entries(4),
    )
    .expect("bind");

    // A raw v1-only handshake.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    wire::write_message(
        &mut stream,
        &Message::Hello {
            min_version: 1,
            max_version: 1,
            tenant: "alice".to_string(),
            token: String::new(),
        },
    )
    .expect("hello");
    match wire::read_message(&mut stream, wire::DEFAULT_MAX_FRAME_BYTES).expect("hello ack") {
        Message::HelloAck { version, .. } => assert_eq!(version, 1, "server steps down to v1"),
        other => panic!("expected HelloAck, got {other:?}"),
    }

    // The classic query: capped, counted as truncated.
    wire::write_message(&mut stream, &Message::QueryDims { n, k }).expect("query");
    match wire::read_message(&mut stream, wire::DEFAULT_MAX_FRAME_BYTES).expect("answer") {
        Message::DimsInfo { entries } => assert_eq!(entries.len(), 4),
        other => panic!("expected DimsInfo, got {other:?}"),
    }
    assert_eq!(service.stats().truncated_answers, 1);

    // A v2-only frame on a v1 connection: typed refusal, not a page.
    wire::write_message(
        &mut stream,
        &Message::QueryDimsPage {
            n,
            k,
            cursor: None,
            limit: 0,
        },
    )
    .expect("page query");
    match wire::read_message(&mut stream, wire::DEFAULT_MAX_FRAME_BYTES).expect("refusal") {
        Message::Error {
            kind: ErrorKind::BadRequest,
            ..
        } => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&path);
}
