//! The paper's flagship configuration: recovering a (136, 128) SEC Hamming
//! code — the 128-bit on-die ECC word size of §5.1.2 — from 1- and
//! 2-CHARGED analytic constraints.
//!
//! The paper reports a 57-hour median for this solve on Z3 over the raw
//! error-pattern encoding; the reduced closed-form encoding, the GF(2)
//! preprocessing pass, lazy column distinctness, and progressive solving
//! bring it into CI territory — but only in release builds, so these tests
//! are ignored under `debug_assertions` (CI runs them with
//! `cargo test --release --test k128_recovery`).

use beer::prelude::*;

fn flagship_outcome(seed: u64, chunk: usize) -> ProgressiveOutcome {
    let code = hamming::random_sec(128, &mut rand::rngs::StdRng::seed_from_u64(seed));
    assert_eq!(code.parity_bits(), 8, "(136, 128) has 8 parity bits");
    let mut backend = AnalyticBackend::new(code.clone());
    let outcome = progressive_recover(
        &mut backend,
        8,
        &progressive_batches(128, chunk),
        &CollectionPlan::quick(),
        &ThresholdFilter::default(),
        &BeerSolverOptions::default(),
        &EngineOptions::default(),
    )
    .expect("well-formed batches");
    assert!(
        outcome.report.is_unique(),
        "(136, 128) seed {seed}: expected a unique solution, got {}",
        outcome.report.solutions.len()
    );
    assert!(
        equivalent(&outcome.report.solutions[0], &code),
        "(136, 128) seed {seed}: wrong code recovered"
    );
    outcome
}

use rand::SeedableRng;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: full-size k = 128 solve")]
fn recovers_a_random_136_128_code_progressively() {
    let outcome = flagship_outcome(0xBEE9, 64);
    // §6.3's point at full scale: a fraction of the 8256-pattern schedule
    // suffices once preprocessing and the profile pin the code down.
    assert!(
        outcome.patterns_used < outcome.patterns_available,
        "used the whole schedule ({} of {})",
        outcome.patterns_used,
        outcome.patterns_available
    );
    assert!(outcome.facts_encoded > 0);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: full-size k = 128 solve")]
fn recovers_several_136_128_codes() {
    for seed in [1u64, 2, 3] {
        flagship_outcome(seed, 64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: full-size k = 128 solve")]
fn recovers_136_128_code_needing_2charged_evidence() {
    // The full 1-CHARGED profile often suffices on its own for (136, 128)
    // codes; withhold a quarter of it (as if those patterns were
    // under-tested) so the run must consume 2-CHARGED batches — the path
    // that exercises the order-2 observation encoding at full scale.
    let code = hamming::random_sec(128, &mut rand::rngs::StdRng::seed_from_u64(0x2C));
    let mut backend = AnalyticBackend::new(code.clone());
    let one: Vec<ChargedSet> = beer::core::pattern::one_charged(128)
        .into_iter()
        .take(96)
        .collect();
    let mut batches = vec![one];
    for chunk in beer::core::pattern::two_charged(128).chunks(64) {
        batches.push(chunk.to_vec());
    }
    let outcome = progressive_recover(
        &mut backend,
        8,
        &batches,
        &CollectionPlan::quick(),
        &ThresholdFilter::default(),
        &BeerSolverOptions::default(),
        &EngineOptions::default(),
    )
    .expect("well-formed batches");
    assert!(
        outcome.rounds > 1,
        "partial 1-CHARGED profile unexpectedly sufficed — no 2-CHARGED \
         batch was consumed"
    );
    assert!(outcome.report.is_unique());
    assert!(equivalent(&outcome.report.solutions[0], &code));
}
