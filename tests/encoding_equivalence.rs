//! Property tests pinning the two observation encodings — and the GF(2)
//! preprocessing pass — to each other.
//!
//! The subset-representative encoding enumerates `2^{t−1}` complement
//! classes; the polynomial encoding replaces that with a selector circuit
//! (positive facts) and a GF(2) dual witness (negative facts). They are
//! different CNF circuits for the same closed-form predicate, so they must
//! accept *exactly* the same `P` matrices — as must every combination of
//! distinctness scheme and preprocessing, which only ever add implied
//! constraints.

use beer::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Enumerates every accepted `P` matrix under the given options, as a
/// canonically sorted list of debug renderings (stable comparison key).
fn solution_set(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> Vec<String> {
    let report =
        solve_profile(k, parity_bits, constraints, options).expect("all test orders are encodable");
    assert!(
        !report.truncated,
        "solution cap hit — raise max_solutions for an exact comparison"
    );
    let mut set: Vec<String> = report
        .solutions
        .iter()
        .map(|s| format!("{:?}", s.parity_submatrix()))
        .collect();
    set.sort();
    set
}

fn options_with(encoding: ObservationEncoding, preprocess: bool) -> BeerSolverOptions {
    BeerSolverOptions {
        max_solutions: 4096,
        verify_solutions: false,
        encoding,
        preprocess,
        ..BeerSolverOptions::default()
    }
}

/// A mixed-order pattern set: everything from order 1 up to `max_t` that
/// the small dataword supports, drawn deterministically.
fn mixed_patterns(k: usize, max_t: usize, seed: u64) -> Vec<ChargedSet> {
    let mut patterns = PatternSet::One.patterns(k);
    for t in 2..=max_t.min(k) {
        patterns.extend(
            PatternSet::RandomT {
                t,
                count: 3,
                seed: seed ^ t as u64,
            }
            .patterns(k),
        );
    }
    patterns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole invariant: for every order t ≤ 6 the polynomial encoding
    /// and the subset-representative encoding accept exactly the same
    /// P matrices.
    #[test]
    fn subset_and_linear_encodings_accept_the_same_matrices(
        k in 4usize..8,
        seed in any::<u64>(),
    ) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let p = code.parity_bits();
        let profile = analytic_profile(&code, &mixed_patterns(k, 6, seed));
        let subset = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::SubsetReps, false));
        let linear = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::Linear, false));
        prop_assert_eq!(&subset, &linear, "encodings disagree (k={}, seed={})", k, seed);
        prop_assert!(!subset.is_empty(), "true code must be accepted");
    }

    /// GF(2) preprocessing only asserts implied facts: the solution set
    /// with the pass enabled is identical to the set without it.
    #[test]
    fn preprocessing_never_changes_the_solution_set(
        k in 4usize..8,
        seed in any::<u64>(),
    ) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let p = code.parity_bits();
        let profile = analytic_profile(&code, &mixed_patterns(k, 4, seed));
        let plain = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::Auto, false));
        let preprocessed = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::Auto, true));
        prop_assert_eq!(&plain, &preprocessed,
            "preprocessing changed the solution set (k={}, seed={})", k, seed);
    }

    /// Corrupted profiles (bit-flipped observations) must still agree
    /// across encodings and preprocessing — including when they become
    /// unsatisfiable.
    #[test]
    fn encodings_agree_on_corrupted_profiles(
        k in 4usize..7,
        seed in any::<u64>(),
        flips in 1usize..4,
    ) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let p = code.parity_bits();
        let mut profile = analytic_profile(&code, &mixed_patterns(k, 5, seed));
        // Deterministically flip a few definite observations.
        let mut flipped = 0;
        'outer: for (ei, (_, obs)) in profile.entries.iter_mut().enumerate() {
            for (bi, o) in obs.iter_mut().enumerate() {
                if (ei * 31 + bi * 17 + seed as usize).is_multiple_of(7) {
                    *o = match *o {
                        Observation::Miscorrection => Observation::NoMiscorrection,
                        Observation::NoMiscorrection => Observation::Miscorrection,
                        Observation::Unknown => continue,
                    };
                    flipped += 1;
                    if flipped >= flips {
                        break 'outer;
                    }
                }
            }
        }
        let subset = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::SubsetReps, false));
        let linear = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::Linear, false));
        let pre = solution_set(k, p, &profile,
            &options_with(ObservationEncoding::Linear, true));
        prop_assert_eq!(&subset, &linear,
            "encodings disagree on a corrupted profile (k={}, seed={})", k, seed);
        prop_assert_eq!(&subset, &pre,
            "preprocessing disagrees on a corrupted profile (k={}, seed={})", k, seed);
    }
}

/// Deterministic spot check across every distinctness scheme (cheap enough
/// to run exhaustively rather than under proptest).
#[test]
fn distinctness_schemes_accept_the_same_matrices() {
    for seed in 0u64..8 {
        let k = 6;
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(seed));
        let p = code.parity_bits();
        let profile = analytic_profile(&code, &PatternSet::One.patterns(k));
        let mut sets = Vec::new();
        for distinctness in [ColumnDistinctness::Lazy, ColumnDistinctness::Eager] {
            sets.push(solution_set(
                k,
                p,
                &profile,
                &BeerSolverOptions {
                    max_solutions: 4096,
                    verify_solutions: false,
                    distinctness,
                    ..BeerSolverOptions::default()
                },
            ));
        }
        assert_eq!(
            sets[0], sets[1],
            "distinctness schemes disagree, seed {seed}"
        );
    }
}

/// Order-0 and ALL-charged entries ride along without changing anything:
/// they carry no (satisfiable) information for a valid profile.
#[test]
fn degenerate_orders_are_neutral_for_true_profiles() {
    let k = 5;
    let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(9));
    let p = code.parity_bits();
    let base = analytic_profile(&code, &PatternSet::One.patterns(k));
    let mut extended = base.clone();
    // ALL-charged: every bit charged ⇒ all observations Unknown.
    extended
        .entries
        .extend(analytic_profile(&code, &PatternSet::All.patterns(k)).entries);
    // Order 0: all bits discharged ⇒ vacuous NoMiscorrection facts.
    extended.entries.push((
        ChargedSet::new(vec![], k),
        vec![Observation::NoMiscorrection; k],
    ));
    let opts = options_with(ObservationEncoding::Auto, true);
    assert_eq!(
        solution_set(k, p, &base, &opts),
        solution_set(k, p, &extended, &opts)
    );
}
