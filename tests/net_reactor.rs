//! Reactor-edge behaviors the blocking suites cannot see: connection
//! scaling without threads, readiness-driven hangup detection, bounded
//! write queues shedding slow readers, typed admission-control refusals,
//! event-driven drain latency, and truncation accounting on registry
//! queries.

use beer::net::reactor::raise_nofile_limit;
use beer::net::wire::{read_message, write_message, ErrorKind, Message, RecvError, WIRE_VERSION};
use beer::net::{Client, NetServer, NetServerConfig};
use beer::prelude::*;
use rand::SeedableRng;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_FRAME: usize = 1 << 20;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

/// A backend that parks its single unit until released, keeping the
/// worker busy so queued jobs stay queued.
#[derive(Clone)]
struct GateSource {
    released: Arc<AtomicBool>,
    running: Arc<AtomicBool>,
}

impl GateSource {
    fn new() -> Self {
        GateSource {
            released: Arc::new(AtomicBool::new(false)),
            running: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl ProfileSource for GateSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "gate".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.running.store(true, Ordering::SeqCst);
        while !self.released.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

/// Connects a raw wire-speaking socket and completes the Hello handshake.
fn handshake(addr: &str, tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_message(
        &mut stream,
        &Message::Hello {
            min_version: WIRE_VERSION,
            max_version: WIRE_VERSION,
            tenant: tenant.to_string(),
            token: String::new(),
        },
    )
    .expect("hello");
    match read_message(&mut stream, MAX_FRAME).expect("hello answered") {
        Message::HelloAck { .. } => stream,
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

/// Uploads a trace over a raw socket, returning its fingerprint.
fn upload(stream: &mut TcpStream, trace: &ProfileTrace) -> Fingerprint {
    let (fingerprint, chunks) = trace.to_chunks(64 << 10);
    let total_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    write_message(
        stream,
        &Message::TraceBegin {
            fingerprint,
            total_chunks: chunks.len() as u32,
            total_bytes,
        },
    )
    .expect("begin");
    let last = chunks.len() - 1;
    for (index, data) in chunks.into_iter().enumerate() {
        write_message(
            stream,
            &Message::TraceChunk {
                fingerprint,
                index: index as u32,
                data,
            },
        )
        .expect("chunk");
        if index == last {
            match read_message(stream, MAX_FRAME).expect("upload answered") {
                Message::TraceAck { fingerprint: fp } if fp == fingerprint => {}
                other => panic!("expected TraceAck, got {other:?}"),
            }
        }
    }
    fingerprint
}

/// Submits an uploaded fingerprint over a raw socket, returning the job.
fn submit(stream: &mut TcpStream, fingerprint: Fingerprint) -> u64 {
    write_message(
        stream,
        &Message::Submit {
            fingerprint,
            priority: Priority::Normal,
            deadline_ms: None,
            trace_id: None,
        },
    )
    .expect("submit");
    match read_message(stream, MAX_FRAME).expect("submit answered") {
        Message::SubmitAck { job } => job,
        other => panic!("expected SubmitAck, got {other:?}"),
    }
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Connection scaling is thread-free: hundreds of concurrent live
/// watches (dedup-coalesced behind a gated worker) add ZERO threads to
/// the process — the reactor multiplexes them all.
#[test]
fn idle_watchers_cost_no_threads() {
    let watchers = 512usize;
    let _ = raise_nofile_limit();

    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_connections(watchers + 8),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Park the worker so every submitted job stays live (the duplicates
    // coalesce into one queued primary).
    let gate = GateSource::new();
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    while !gate.running.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let threads_before = thread_count();

    let mut conns: Vec<TcpStream> = Vec::with_capacity(watchers);
    let mut fingerprint = None;
    for i in 0..watchers {
        let mut stream = handshake(&addr, "alice");
        let fp = match fingerprint {
            Some(fp) => fp,
            None => *fingerprint.insert(upload(&mut stream, &trace)),
        };
        let job = submit(&mut stream, fp);
        write_message(&mut stream, &Message::Watch { job }).expect("watch");
        conns.push(stream);
        if i == 0 {
            // All later submissions coalesce into this primary.
            assert!(service.stats().queued >= 1);
        }
    }
    assert_eq!(server.active_connections(), watchers);

    let threads_after = thread_count();
    assert_eq!(
        threads_after, threads_before,
        "{watchers} live watches must not add threads \
         (before={threads_before}, after={threads_after})"
    );

    // Release the gate: every watcher gets its terminal Done frame,
    // fanned out through the reactor.
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    for (i, stream) in conns.iter_mut().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        loop {
            match read_message(stream, MAX_FRAME).expect("event stream") {
                Message::Event { .. } => {}
                Message::Done { result, .. } => {
                    assert!(result.is_ok(), "watcher {i} saw a failed job");
                    break;
                }
                other => panic!("watcher {i}: unexpected frame {other:?}"),
            }
        }
    }
    drop(conns);
    server.shutdown(Duration::from_secs(5));
}

/// A watcher that hangs up mid-watch is detected by readiness (RDHUP),
/// not a liveness poll: its slot frees within a reactor tick while the
/// watched job keeps running.
#[test]
fn closed_watcher_releases_slot_within_one_tick() {
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    // Park the worker so the watched job stays queued (the watch stays
    // live instead of completing instantly).
    let gate = GateSource::new();
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    while !gate.running.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut stream = handshake(&addr, "alice");
    let fingerprint = upload(&mut stream, &trace);
    let job = submit(&mut stream, fingerprint);
    write_message(&mut stream, &Message::Watch { job }).expect("watch");
    assert_eq!(server.active_connections(), 1);

    // Hang up mid-watch. The old edge needed a periodic zero-byte
    // liveness peek to notice; the reactor sees the FIN as a readiness
    // event and must release the slot within one tick.
    drop(stream);
    let deadline = Instant::now() + Duration::from_millis(500);
    while server.active_connections() != 0 {
        assert!(
            Instant::now() < deadline,
            "hung-up watcher still holds its slot after 500ms"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The job was unaffected: it finishes once the worker frees up.
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    let output = service.wait(JobId(job)).expect("job survives its watcher");
    assert!(equivalent(
        output.outcome.unique_code().expect("unique"),
        &secret
    ));
    server.shutdown(Duration::from_secs(5));
}

/// Over the connection limit, a new peer gets a typed Busy frame and a
/// clean close — never a silently dropped socket.
#[test]
fn over_limit_connection_gets_typed_busy() {
    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_connections(1),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    let held = handshake(&addr, "alice");
    let mut refused = TcpStream::connect(&addr).expect("connect");
    refused
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    match read_message(&mut refused, MAX_FRAME).expect("refusal frame") {
        Message::Error {
            kind: ErrorKind::Busy,
            detail,
        } => assert!(detail.contains("connection limit"), "detail: {detail}"),
        other => panic!("expected Busy, got {other:?}"),
    }
    match read_message(&mut refused, MAX_FRAME) {
        Err(RecvError::Closed) => {}
        other => panic!("expected clean close after refusal, got {other:?}"),
    }
    drop(held);
    server.shutdown(Duration::from_secs(5));
}

/// A peer that pipelines thousands of requests but never reads its
/// responses overflows its bounded write queue: it gets a typed Busy
/// frame and a disconnect, while a healthy connection on the same
/// reactor keeps round-tripping unstalled.
#[test]
fn slow_reader_is_shed_without_stalling_others() {
    let idle_conns = 62usize; // + 1 slow + 1 healthy = 64 on one reactor
    let _ = raise_nofile_limit();

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new()
            .with_max_connections(256)
            .with_max_write_buffer(32 << 10),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // A crowd of idle authed connections: the shed must not touch them.
    let idle: Vec<TcpStream> = (0..idle_conns).map(|_| handshake(&addr, "crowd")).collect();
    let mut healthy = Client::connect(&addr, "alice", "").expect("connect");

    // The slow reader floods pipelined QueryStats requests (5 bytes each,
    // ~130-byte answers) without ever reading: kernel buffers fill, then
    // the server-side queue hits its 32 KiB bound.
    let mut slow = handshake(&addr, "sloth");
    slow.set_write_timeout(Some(Duration::from_millis(200)))
        .expect("timeout");
    let batch: Vec<u8> = {
        let mut one = Vec::new();
        Message::QueryStats.encode_into(&mut one);
        one.repeat(1000)
    };
    let send_deadline = Instant::now() + Duration::from_secs(10);
    let mut sent = 0usize;
    while sent < 64_000 && Instant::now() < send_deadline {
        match slow.write(&batch) {
            Ok(n) => sent += n / 5,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            // Reset: the server already shed us mid-send. Also proof.
            Err(_) => break,
        }
        // The healthy connection round-trips while the flood is active.
        let t0 = Instant::now();
        healthy.stats().expect("healthy round-trip");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "healthy connection stalled behind the slow reader"
        );
    }

    // Drain what the server managed to flush: complete frames, then the
    // typed overflow refusal, then a close. (Framing survives the shed —
    // the queue is cut at frame boundaries.)
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut answered = 0usize;
    let mut shed = false;
    loop {
        match read_message(&mut slow, MAX_FRAME) {
            Ok(Message::StatsInfo(_)) => answered += 1,
            Ok(Message::Error {
                kind: ErrorKind::Busy,
                detail,
            }) => {
                assert!(detail.contains("write queue"), "detail: {detail}");
                shed = true;
            }
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(RecvError::Closed) => break,
            Err(e) => panic!("transport error instead of clean shed: {e:?}"),
        }
    }
    assert!(shed, "slow reader was never sent the typed Busy refusal");
    assert!(
        answered < sent,
        "every request answered ({answered}/{sent}): the queue never overflowed; \
         raise the flood size"
    );

    // The crowd and the healthy connection are untouched.
    healthy.stats().expect("healthy survives the shed");
    drop(idle);
    drop(healthy);
    server.shutdown(Duration::from_secs(5));
}

/// Drain latency is event-driven: once in-flight work finishes and the
/// watcher collects its result, shutdown returns promptly (condvar
/// wakeups, not sleep loops).
#[test]
fn drain_returns_promptly_after_service_goes_idle() {
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    let gate = GateSource::new();
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    while !gate.running.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut client = Client::connect(&addr, "alice", "").expect("connect");
    let queued = client.submit(&trace).expect("queued behind the gate");
    let watcher = std::thread::spawn(move || {
        let output = client
            .wait(queued)
            .expect("watch survives the drain")
            .expect("job finishes during drain");
        assert!(equivalent(
            output.outcome.unique_code().expect("unique"),
            &secret
        ));
    });

    let drainer = std::thread::spawn(move || {
        let t0 = Instant::now();
        server.shutdown(Duration::from_secs(30));
        t0.elapsed()
    });
    std::thread::sleep(Duration::from_millis(100)); // let draining latch

    let released_at = Instant::now();
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    watcher.join().expect("watcher thread");
    let drained_in = drainer.join().expect("drain completes");
    let after_release = released_at.elapsed();
    assert!(
        after_release < Duration::from_secs(2),
        "drain took {after_release:?} after the gate released; \
         the idle/flush waits must be event-driven"
    );
    assert!(
        drained_in >= Duration::from_millis(100),
        "drain saw the gate"
    );
}

/// Registry query answers are capped; a capped answer is marked by
/// counting it in ServiceStats.truncated_answers so operators can tell
/// truncation from a small registry.
#[test]
fn truncated_query_answers_are_counted() {
    let cap = 2usize;
    let codes = distinct_codes(4, 8, 0xBEE5);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(2)).expect("start"));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_query_entries(cap),
    )
    .expect("bind");

    let mut client =
        Client::connect(server.local_addr().to_string(), "alice", "").expect("connect");
    for code in &codes {
        let job = client.submit(&record_trace(code)).expect("submit");
        client.wait(job).expect("watch").expect("solves");
    }
    assert_eq!(service.stats().truncated_answers, 0);

    let n = codes[0].n() as u32;
    let entries = client.query_dims(n, 8).expect("query");
    assert_eq!(entries.len(), cap, "answer is capped at max_query_entries");
    assert_eq!(
        service.stats().truncated_answers,
        1,
        "the capped answer is counted as truncated"
    );
    server.shutdown(Duration::from_secs(5));
}
