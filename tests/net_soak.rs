//! Network soak: N concurrent clients over loopback against one server —
//! duplicate submissions, cancels before completion, typed backpressure,
//! and a graceful drain — asserting the service's answers equal local
//! recoveries and the whole stack stays deadlock-free.

use beer::net::wire::ErrorKind;
use beer::net::{Client, ClientError, NetServer, NetServerConfig};
use beer::prelude::*;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

/// A backend that parks its single unit until released.
#[derive(Clone)]
struct GateSource {
    released: Arc<AtomicBool>,
    running: Arc<AtomicBool>,
}

impl ProfileSource for GateSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "gate".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.running.store(true, Ordering::SeqCst);
        while !self.released.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

/// 4 clients × 24 jobs from a 6-profile pool (duplicates guaranteed),
/// every 6th job cancelled right after submission. Every completed answer
/// must equal the locally recovered canonical code for its profile.
#[test]
fn concurrent_clients_with_duplicates_and_cancels() {
    let clients = 4usize;
    let jobs_each = 24usize;
    let pool = 6usize;

    let codes = distinct_codes(pool, 8, 0x50AC);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();

    // The ground truth each remote answer must match, bit for bit.
    let expected: Vec<BitMatrix> = codes
        .iter()
        .map(|code| canonicalize(code).parity_submatrix().clone())
        .collect();

    let service = Arc::new(
        RecoveryService::start(
            ServiceConfig::new()
                .with_workers(2)
                .with_queue_capacity(clients * jobs_each + 8),
        )
        .expect("start"),
    );
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    let completed = Arc::new(AtomicUsize::new(0));
    let cancelled = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let traces = traces.clone();
            let expected = expected.clone();
            let completed = Arc::clone(&completed);
            let cancelled = Arc::clone(&cancelled);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(&addr, format!("tenant-{c}"), "").expect("connect");
                for j in 0..jobs_each {
                    let which = (c + j) % traces.len();
                    let job = client.submit(&traces[which]).expect("admitted");
                    let try_cancel = j % 6 == 5;
                    if try_cancel {
                        let _ = client.cancel(job).expect("cancel answered");
                    }
                    match client.wait(job).expect("watch completes") {
                        Ok(output) => {
                            let code = output.outcome.unique_code().expect("unique");
                            assert_eq!(
                                code.parity_submatrix(),
                                &expected[which],
                                "remote answer differs from the local recovery"
                            );
                            completed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            assert!(
                                try_cancel,
                                "only cancelled jobs may fail, got {e:?} for job {j}"
                            );
                            cancelled.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                client.close();
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let total = completed.load(Ordering::SeqCst) + cancelled.load(Ordering::SeqCst);
    assert_eq!(
        total,
        clients * jobs_each,
        "every job reached a terminal answer"
    );
    assert!(
        completed.load(Ordering::SeqCst) >= clients * (jobs_each - jobs_each / 6),
        "non-cancelled jobs all complete"
    );

    let stats = service.stats();
    assert_eq!(stats.submitted as usize, clients * jobs_each);
    // Dedup must have collapsed most of the load: at most one solve per
    // distinct profile, plus re-solves forced by cancelled primaries.
    assert!(
        (stats.coalesced + stats.cache_hits) as usize
            >= clients * jobs_each - pool - stats.cancelled as usize,
        "dedup shares the work: {stats:?}"
    );
    server.shutdown(Duration::from_secs(5));
}

/// Graceful drain: with a job still running, shutdown refuses new
/// submissions with a typed ShuttingDown frame while the in-flight job
/// finishes and its watcher collects the result.
#[test]
fn drain_refuses_new_submits_and_finishes_inflight_work() {
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    // Occupy the worker so the drain has something in flight.
    let gate = GateSource {
        released: Arc::new(AtomicBool::new(false)),
        running: Arc::new(AtomicBool::new(false)),
    };
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    while !gate.running.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut client = Client::connect(&addr, "alice", "").expect("connect");
    let queued = client.submit(&trace).expect("queued behind the gate");

    // Start the drain in the background: it waits for the queue to empty.
    let drain_server = server;
    let drainer = std::thread::spawn(move || {
        drain_server.shutdown(Duration::from_secs(30));
    });
    std::thread::sleep(Duration::from_millis(100)); // let draining latch

    // New submissions are refused with the typed drain error…
    let mut late = Client::connect(&addr, "bob", "").expect("queries still served");
    let fresh = record_trace(&distinct_codes(1, 8, 0xD1A1)[0]);
    match late.submit(&fresh) {
        Err(
            e @ ClientError::Refused {
                kind: ErrorKind::ShuttingDown,
                ..
            },
        ) => assert!(e.is_backpressure()),
        other => panic!("expected ShuttingDown, got {other:?}"),
    }

    // …while the in-flight work finishes and its watcher gets the result.
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    let output = client
        .wait(queued)
        .expect("watch survives the drain")
        .expect("queued job finishes during drain");
    assert!(equivalent(
        output.outcome.unique_code().expect("unique"),
        &secret
    ));
    drainer.join().expect("drain completes");
}
