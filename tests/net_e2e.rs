//! End-to-end semantics of the network edge: a remote submission recovers
//! the same code as a local session (bit-identical), duplicate
//! submissions from distinct clients coalesce onto one job with both
//! receiving the streamed terminal event, a dropped connection resumes by
//! fingerprint without re-solving, typed backpressure crosses the wire,
//! and a restarted server answers from the replayed registry.

use beer::net::wire::{self, ErrorKind, Message};
use beer::net::{Client, ClientConfig, ClientError, NetServer, NetServerConfig, WireOutcome};
use beer::prelude::*;
use rand::SeedableRng;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn temp_registry(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("beer_net_{name}_{}.log", std::process::id()))
}

/// A backend that parks its single unit until released — holds a worker
/// busy so queueing and coalescing decisions are deterministic.
#[derive(Clone)]
struct GateSource {
    released: Arc<AtomicBool>,
    running: Arc<AtomicBool>,
}

impl GateSource {
    fn new() -> Self {
        GateSource {
            released: Arc::new(AtomicBool::new(false)),
            running: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl ProfileSource for GateSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "gate".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.running.store(true, Ordering::SeqCst);
        while !self.released.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

fn wait_flag(flag: &AtomicBool, what: &str) {
    for _ in 0..5000 {
        if flag.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

/// The headline acceptance property: a trace submitted over the wire
/// recovers the *bit-identical* canonical code a local session recovers
/// from the same trace.
#[test]
fn remote_recovery_is_bit_identical_to_local() {
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    // Local: a RecoverySession over the same trace.
    let mut local_backend = ReplayBackend::new(trace.clone());
    let report = RecoveryConfig::new()
        .session(&mut local_backend)
        .run_to_completion()
        .expect("local session");
    let RecoveryOutcome::Unique(local_code) = report.outcome else {
        panic!("local session must be unique, got {:?}", report.outcome);
    };
    let local_canonical = canonicalize(&local_code);

    // Remote: the same trace through the full network stack.
    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(2)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let mut client =
        Client::connect(server.local_addr().to_string(), "alice", "").expect("connect");
    let job = client.submit(&trace).expect("submit");
    assert_eq!(job.fingerprint, trace.fingerprint());
    let output = client
        .wait(job)
        .expect("watch completes")
        .expect("clean profile solves");
    let WireOutcome::Unique(remote_code) = output.outcome else {
        panic!("remote recovery must be unique, got {:?}", output.outcome);
    };

    assert_eq!(
        remote_code.parity_submatrix(),
        local_canonical.parity_submatrix(),
        "remote and local recoveries must be bit-identical"
    );
    assert!(equivalent(&remote_code, &secret));
    server.shutdown(Duration::from_secs(2));
}

/// Duplicate submissions from two distinct clients coalesce onto one
/// in-flight job; both receive the streamed terminal event and the same
/// code; only one solve happens.
#[test]
fn duplicate_submissions_from_distinct_clients_coalesce() {
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    // Hold the single worker busy so both remote jobs are in flight
    // together and the second deterministically coalesces.
    let gate = GateSource::new();
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    wait_flag(&gate.running, "gate to start");

    let mut alice = Client::connect(&addr, "alice", "").expect("alice connects");
    let mut bob = Client::connect(&addr, "bob", "").expect("bob connects");
    let job_a = alice.submit(&trace).expect("alice submits");
    let job_b = bob
        .submit(&trace)
        .expect("bob attaches to the same fingerprint");
    assert_ne!(job_a.id, job_b.id, "each submission gets its own job id");
    assert_eq!(job_a.fingerprint, job_b.fingerprint);

    let (tx, rx) = std::sync::mpsc::channel();
    let watcher = std::thread::spawn(move || {
        let mut saw_terminal = false;
        let result = bob
            .wait_with(job_b, |event| {
                if matches!(
                    event,
                    beer::net::WireEvent::State {
                        state: JobState::Done
                    }
                ) {
                    saw_terminal = true;
                }
            })
            .expect("bob's watch completes")
            .expect("bob's job completes");
        tx.send((result, saw_terminal)).expect("send");
    });
    // Let bob's Watch frame register server-side while the job is still
    // gated, so the terminal event deterministically streams through it.
    std::thread::sleep(Duration::from_millis(300));
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);

    let out_a = alice
        .wait(job_a)
        .expect("alice watch")
        .expect("alice completes");
    let (out_b, bob_saw_terminal) = rx.recv_timeout(Duration::from_secs(30)).expect("bob");
    watcher.join().expect("watcher thread");

    let code_a = out_a.outcome.unique_code().expect("unique").clone();
    let code_b = out_b.outcome.unique_code().expect("unique").clone();
    assert_eq!(
        code_a.parity_submatrix(),
        code_b.parity_submatrix(),
        "both clients share one recovery"
    );
    assert!(bob_saw_terminal, "the waiter streams the terminal event");
    assert_eq!(
        out_b.coalesced_into,
        Some(job_a.id),
        "bob's job coalesced onto alice's"
    );

    let stats = service.stats();
    assert_eq!(stats.coalesced, 1, "exactly one coalesce");
    assert_eq!(stats.cache_hits, 0, "no cache on a fresh service");
    server.shutdown(Duration::from_secs(2));
}

/// A client that loses its connection mid-wait reconnects and re-attaches
/// to the in-flight job by fingerprint — nothing is re-solved.
#[test]
fn dropped_connection_resumes_by_fingerprint() {
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr();

    // Hold the worker so the remote job stays in flight across the drop.
    let gate = GateSource::new();
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    wait_flag(&gate.running, "gate to start");

    let mut client = Client::connect_with(
        addr.to_string(),
        "alice",
        "",
        ClientConfig::new().with_reconnect(20, Duration::from_millis(100)),
    )
    .expect("connect");
    let job = client.submit(&trace).expect("submit");

    let waiter = std::thread::spawn(move || client.wait(job));

    // Kill the network edge mid-watch (the service keeps running), then
    // bring a new server up on the same address.
    std::thread::sleep(Duration::from_millis(200));
    drop(server);
    let server2 = {
        let mut last_err = None;
        let mut bound = None;
        for _ in 0..100 {
            match NetServer::bind(Arc::clone(&service), addr, NetServerConfig::new()) {
                Ok(s) => {
                    bound = Some(s);
                    break;
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        bound.unwrap_or_else(|| panic!("rebind failed: {last_err:?}"))
    };

    // Let the client's reconnect find the new server, then release the
    // solve.
    std::thread::sleep(Duration::from_millis(300));
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);

    let output = waiter
        .join()
        .expect("waiter thread")
        .expect("resumed wait completes")
        .expect("resumed job solves");
    let code = output.outcome.unique_code().expect("unique");
    assert!(equivalent(code, &secret));

    let stats = service.stats();
    // The resume re-attached (coalesce on the in-flight job or a cache
    // hit if the solve finished first) — it never solved a second time.
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        1,
        "resume must re-attach, not re-solve: {stats:?}"
    );
    server2.shutdown(Duration::from_secs(2));
}

/// Admission backpressure crosses the wire as typed error frames — load
/// shedding, not dropped sockets.
#[test]
fn backpressure_is_typed_on_the_wire() {
    let service = Arc::new(
        RecoveryService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_tenants([("alice", "hunter2")]),
        )
        .expect("start"),
    );
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    // Wrong token: a typed auth refusal at Hello time.
    match Client::connect(&addr, "alice", "wrong") {
        Err(ClientError::Refused {
            kind: ErrorKind::AuthFailed,
            ..
        }) => {}
        Err(other) => panic!("expected AuthFailed, got {other:?}"),
        Ok(_) => panic!("wrong token must not connect"),
    }
    // Unknown tenant: same gate.
    match Client::connect(&addr, "mallory", "hunter2") {
        Err(ClientError::Refused {
            kind: ErrorKind::AuthFailed,
            ..
        }) => {}
        Err(other) => panic!("expected AuthFailed, got {other:?}"),
        Ok(_) => panic!("unknown tenant must not connect"),
    }

    let mut client = Client::connect(&addr, "alice", "hunter2").expect("right token connects");

    // Fill the queue: the gate occupies the worker, one trace queues,
    // the next distinct trace is typed QueueFull.
    let gate = GateSource::new();
    let gate_job = service
        .submit(JobRequest::source("alice", "gate", Box::new(gate.clone())))
        .expect("gate admitted");
    wait_flag(&gate.running, "gate to start");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB00);
    let trace1 = record_trace(&hamming::random_sec(8, &mut rng));
    let trace2 = record_trace(&hamming::random_sec(8, &mut rng));
    let queued = client.submit(&trace1).expect("fills the queue");
    match client.submit(&trace2) {
        Err(
            e @ ClientError::Refused {
                kind: ErrorKind::QueueFull { capacity: 1 },
                ..
            },
        ) => assert!(e.is_backpressure()),
        other => panic!("expected QueueFull, got {other:?}"),
    }

    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    let _ = client
        .wait(queued)
        .expect("queued watch")
        .expect("queued job completes");
    server.shutdown(Duration::from_secs(2));
}

/// Raw-socket protocol behavior: version negotiation refusals, submits
/// for unuploaded fingerprints, foreign job ids, and garbage frames are
/// all typed errors.
#[test]
fn protocol_violations_are_typed_errors() {
    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let addr = server.local_addr();
    let max = wire::DEFAULT_MAX_FRAME_BYTES;

    // A client from the future: no common version.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_message(
            &mut stream,
            &Message::Hello {
                min_version: 7,
                max_version: 9,
                tenant: "t".to_string(),
                token: String::new(),
            },
        )
        .expect("send");
        match wire::read_message(&mut stream, max) {
            Ok(Message::Error {
                kind: ErrorKind::UnsupportedVersion { min, max },
                ..
            }) => {
                assert_eq!((min, max), (wire::WIRE_MIN_VERSION, wire::WIRE_VERSION));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    // Submit before upload, watch/cancel of a foreign id, then garbage.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_message(
            &mut stream,
            &Message::Hello {
                min_version: 1,
                max_version: 1,
                tenant: "t".to_string(),
                token: String::new(),
            },
        )
        .expect("send hello");
        assert!(matches!(
            wire::read_message(&mut stream, max),
            Ok(Message::HelloAck { version: 1, .. })
        ));

        let fingerprint = Fingerprint(42);
        wire::write_message(
            &mut stream,
            &Message::Submit {
                fingerprint,
                priority: Priority::Normal,
                deadline_ms: None,
                trace_id: None,
            },
        )
        .expect("send submit");
        match wire::read_message(&mut stream, max) {
            Ok(Message::Error {
                kind: ErrorKind::UnknownFingerprint { fingerprint: fp },
                ..
            }) => assert_eq!(fp, fingerprint),
            other => panic!("expected UnknownFingerprint, got {other:?}"),
        }

        wire::write_message(&mut stream, &Message::Watch { job: 999 }).expect("send watch");
        assert!(matches!(
            wire::read_message(&mut stream, max),
            Ok(Message::Error {
                kind: ErrorKind::UnknownJob { job: 999 },
                ..
            })
        ));

        // A frame with an unknown tag: one typed diagnosis, then close.
        use std::io::Write as _;
        stream
            .write_all(&[0, 0, 0, 1, 250])
            .expect("send future frame");
        assert!(matches!(
            wire::read_message(&mut stream, max),
            Ok(Message::Error {
                kind: ErrorKind::BadRequest,
                ..
            })
        ));
    }

    // A corrupt chunked upload: typed BadChunk (wrong fingerprint).
    {
        let secret = hamming::random_sec(8, &mut rand::rngs::StdRng::seed_from_u64(7));
        let trace = record_trace(&secret);
        let (fp, chunks) = trace.to_chunks(64);
        let total_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let wrong = Fingerprint(fp.0 ^ 1);

        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_message(
            &mut stream,
            &Message::Hello {
                min_version: 1,
                max_version: 1,
                tenant: "t".to_string(),
                token: String::new(),
            },
        )
        .expect("hello");
        let _ = wire::read_message(&mut stream, max).expect("ack");
        wire::write_message(
            &mut stream,
            &Message::TraceBegin {
                fingerprint: wrong,
                total_chunks: chunks.len() as u32,
                total_bytes,
            },
        )
        .expect("begin");
        for (i, data) in chunks.into_iter().enumerate() {
            wire::write_message(
                &mut stream,
                &Message::TraceChunk {
                    fingerprint: wrong,
                    index: i as u32,
                    data,
                },
            )
            .expect("chunk");
        }
        match wire::read_message(&mut stream, max) {
            Ok(Message::Error {
                kind: ErrorKind::BadChunk,
                detail,
            }) => assert!(detail.contains("fingerprint"), "got {detail}"),
            other => panic!("expected BadChunk, got {other:?}"),
        }
    }
    server.shutdown(Duration::from_secs(2));
}

/// A restarted server (fresh process state, same registry file) answers
/// the same fingerprint from the replayed registry without re-solving.
#[test]
fn restarted_server_answers_from_replayed_registry() {
    let registry_path = temp_registry("restart");
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);
    let fingerprint = trace.fingerprint();

    let first_code = {
        let service = Arc::new(
            RecoveryService::start(
                ServiceConfig::new()
                    .with_workers(1)
                    .with_registry_path(&registry_path),
            )
            .expect("start"),
        );
        let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new())
            .expect("bind");
        let mut client =
            Client::connect(server.local_addr().to_string(), "alice", "").expect("connect");
        let job = client.submit(&trace).expect("submit");
        let output = client.wait(job).expect("watch").expect("solves");
        assert!(!output.from_cache);
        let code = output.outcome.unique_code().expect("unique").clone();
        server.shutdown(Duration::from_secs(2));
        drop(client);
        Arc::try_unwrap(service)
            .ok()
            .expect("server released its handle")
            .shutdown();
        code
    };

    // A new service + server over the same registry file: the upload
    // cache is empty (the client transparently re-uploads), but the
    // answer comes from the replayed registry, not a solve.
    let service = Arc::new(
        RecoveryService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_registry_path(&registry_path),
        )
        .expect("restart"),
    );
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new()).expect("bind");
    let mut client = Client::connect(server.local_addr().to_string(), "bob", "").expect("connect");

    // The registry already knows the fingerprint, remotely queryable.
    let record = client
        .query_fingerprint(fingerprint)
        .expect("query")
        .expect("replayed record");
    assert_eq!(record.tenant, "alice");

    let job = client.submit(&trace).expect("resubmit");
    let output = client.wait(job).expect("watch").expect("cache answers");
    assert!(output.from_cache, "restart must answer from the registry");
    let code = output.outcome.unique_code().expect("unique");
    assert_eq!(
        code.parity_submatrix(),
        first_code.parity_submatrix(),
        "the replayed answer is bit-identical"
    );

    // Registry queries by dims and canonical hash agree.
    let entries = client
        .query_dims(code.n() as u32, code.k() as u32)
        .expect("dims");
    assert!(entries.iter().any(|e| equivalent(&e.code, code)));
    let hash = entries[0].hash;
    let by_hash = client.query_hash(hash).expect("hash");
    assert_eq!(by_hash.len(), 1);
    assert!(by_hash[0].fingerprints.contains(&fingerprint));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 1);
    server.shutdown(Duration::from_secs(2));
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);
}

/// A refused chunked upload must not desynchronize the connection: the
/// server answers the refusal once and silently absorbs the rest of the
/// already-written chunk stream, so later requests still pair with their
/// own responses.
#[test]
fn refused_upload_does_not_desync_the_connection() {
    use beer::net::NetServerConfig;
    let secret = hamming::shortened(8);
    let trace = record_trace(&secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    // A server whose upload ceiling is far below the trace: every upload
    // is refused at TraceBegin.
    let mut config = NetServerConfig::new();
    config.max_trace_bytes = 64;
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");

    let mut client = Client::connect_with(
        server.local_addr().to_string(),
        "alice",
        "",
        // Small chunks so the refused upload leaves many chunk frames in
        // flight behind the refusal.
        ClientConfig::new().with_chunk_bytes(16),
    )
    .expect("connect");
    match client.submit(&trace) {
        Err(ClientError::Refused {
            kind: ErrorKind::BadChunk,
            detail,
        }) => assert!(detail.contains("limit"), "got {detail}"),
        other => panic!("expected BadChunk refusal, got {other:?}"),
    }
    // The connection still pairs requests with responses.
    let stats = client.stats().expect("stats still answers");
    assert_eq!(stats.submitted, 0, "nothing was admitted");
    assert!(
        client
            .query_fingerprint(trace.fingerprint())
            .expect("query")
            .is_none(),
        "registry has no record"
    );
    server.shutdown(Duration::from_secs(2));
}
