//! §4.1 vs §4.2: the two reverse-engineering methodologies side by side.
//!
//! Rank-level ECC exposes syndromes and allows error injection into
//! codewords, so its parity-check matrix falls to n one-hot injections
//! (Cojocar et al.). On-die ECC exposes neither — BEER must induce errors
//! *physically* and infer syndromes from miscorrections. These tests pin
//! the relationship between the two results.

use beer::prelude::*;

#[test]
fn injection_beats_beer_on_representation_but_not_on_behaviour() {
    // One physical code, both methodologies.
    let code = vendor_code(Manufacturer::C, 16, 2);

    // §4.1: visible syndromes — exact recovery.
    let dut = RankLevelEcc::new(code.clone());
    let injected = extract_by_injection(&dut).expect("valid code");
    assert_eq!(injected.parity_submatrix(), code.parity_submatrix());

    // §4.2/§5: BEER from the analytic profile — equivalence-class recovery.
    let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(16));
    let report = solve_profile(
        16,
        code.parity_bits(),
        &profile,
        &BeerSolverOptions::default(),
    )
    .expect("well-formed profile");
    assert!(report.is_unique());
    let beer_code = &report.solutions[0];

    // BEER's representative may differ from the exact matrix…
    // …but must be the same equivalence class, i.e. the same externally
    // visible behaviour.
    assert!(equivalent(beer_code, &injected));

    // And identical observable behaviour on every single-error decode.
    let data = BitVec::from_u64(16, 0xA5A5);
    for pos in 0..16usize {
        let mut cw_true = code.encode(&data);
        cw_true.flip(pos);
        let mut cw_beer = beer_code.encode(&data);
        cw_beer.flip(pos);
        assert_eq!(
            code.decode(&cw_true).data,
            beer_code.decode(&cw_beer).data,
            "behavioural divergence at data bit {pos}"
        );
    }
}

#[test]
fn beer_needs_no_parity_access_injection_does() {
    // The §4.2 obstacle in concrete form: restrict injection to data bits
    // (as on-die ECC does) and the injection method can no longer pin the
    // parity-check matrix — many codes share the data-column syndromes it
    // can see, because without parity-bit injections the visible columns
    // fix P outright ONLY when syndromes are also visible. With neither,
    // nothing is learnable at all — which is exactly the gap BEER fills.
    let code = hamming::shortened(8);
    let dut = RankLevelEcc::new(code.clone());

    // Injecting into data bits with visible syndromes still works…
    let stored = dut.store(&BitVec::zeros(8));
    for pos in 0..8 {
        let report = dut.load_with_injected_errors(&stored, &[pos]);
        assert_eq!(report.syndrome, code.column(pos));
    }

    // …but with on-die ECC the same experiment observes only corrected
    // data: every single-bit injection is silently repaired, yielding zero
    // information.
    let on_die = beer::dram::OnDieEcc::new(code.clone());
    for pos in 0..code.n() {
        let mut cw = on_die.encode(&BitVec::zeros(8));
        cw.flip(pos);
        assert!(
            on_die.decode(&cw).is_zero(),
            "single-bit injection visible through on-die ECC?!"
        );
    }
}

#[test]
fn experiment_budgets_match_paper_arithmetic() {
    // §5.1.3's example: a 128-bit dataword has 128 1-CHARGED and 8128
    // 2-CHARGED patterns; §4.1 needs n = 136 injections.
    assert_eq!(PatternSet::One.len(128), 128);
    assert_eq!(PatternSet::Two.len(128), 8128);
    assert_eq!(beer::core::direct::injection_experiments(136), 136);
}
