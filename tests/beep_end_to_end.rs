//! End-to-end BEEP on a simulated chip: the §7.1 flow with the ECC
//! function recovered by BEER (not read from ground truth), profiling
//! words whose weak cells come from the chip's own retention model.

use beer::prelude::*;

/// Ground truth: the chip's weak cells for `word` at window `trefw`,
/// straight from the (secret) retention model configuration.
fn true_weak_cells(chip: &SimChip, word: usize, trefw: f64) -> Vec<usize> {
    let model = chip.config().retention;
    let n = chip.n();
    (0..n)
        .filter(|&bit| model.fails((word * n + bit) as u64, trefw, 80.0))
        .collect()
}

#[test]
fn beep_finds_chip_weak_cells_using_beer_recovered_function() {
    let mut chip = SimChip::new(ChipConfig::small_test_chip(0xBEE9));

    // Phase 0: BEER recovers the ECC function from the chip interface.
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let patterns = PatternSet::One.patterns(chip.k());
    let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
    let report = solve_profile(
        chip.k(),
        hamming::parity_bits_for(chip.k()),
        &profile.to_constraints(&ThresholdFilter::default()),
        &BeerSolverOptions::default(),
    )
    .expect("well-formed constraints");
    let recovered = report
        .solutions
        .iter()
        .find(|s| equivalent(s, chip.reveal_code()))
        .expect("BEER failed to recover the function")
        .clone();

    // Pick a window giving each word a couple of weak cells, then find
    // words with 2–4 weak *data* cells to profile. (BEEP locates parity
    // weak cells too, but the recovered code's parity ordering is only
    // unique up to relabeling, so ground-truth comparison uses data bits —
    // see §5.4 "Disambiguating equivalent codes".)
    let trefw = chip.config().retention.window_for_ber(0.05, 80.0);
    let n = chip.n();
    let k = chip.k();
    let mut words_checked = 0;
    for word in 0..chip.num_words() {
        let weak = true_weak_cells(&chip, word, trefw);
        let data_weak: Vec<usize> = weak.iter().copied().filter(|&c| c < k).collect();
        if weak.len() < 2 || weak.len() > 4 || data_weak.len() != weak.len() {
            continue; // want all-data weak sets for exact comparison
        }
        let layout = chip.config().word_layout;
        let mut target = DramWordTarget::new(&mut chip, layout, word, trefw);
        let result = profile_word(&recovered, &mut target, &BeepConfig::default());
        let found_data: Vec<usize> = result
            .discovered_sorted()
            .into_iter()
            .filter(|&c| c < k)
            .collect();
        assert_eq!(
            found_data, data_weak,
            "word {word}: BEEP missed or invented data weak cells"
        );
        words_checked += 1;
        if words_checked >= 3 {
            break;
        }
    }
    assert!(
        words_checked > 0,
        "no suitable word found for the BEEP check (n={n})"
    );
}

#[test]
fn beep_word_count_matches_retention_model_density() {
    // Sanity-check the test harness itself: the number of weak cells per
    // word at a window targeting BER b should average ~ b·n.
    let chip = SimChip::new(ChipConfig::small_test_chip(0xBEEA));
    let trefw = chip.config().retention.window_for_ber(0.05, 80.0);
    let words = chip.num_words().min(512);
    let total: usize = (0..words)
        .map(|w| true_weak_cells(&chip, w, trefw).len())
        .sum();
    let mean = total as f64 / words as f64;
    let expected = 0.05 * chip.n() as f64;
    assert!(
        (mean / expected - 1.0).abs() < 0.35,
        "mean weak cells {mean:.2} vs expected {expected:.2}"
    );
}
