//! # BEER: Bit-Exact ECC Recovery
//!
//! A full Rust reproduction of *"Bit-Exact ECC Recovery (BEER): Determining
//! DRAM On-Die ECC Functions by Exploiting DRAM Data Retention
//! Characteristics"* (Patel, Kim, Shahroodi, Hassan, Mutlu — MICRO 2020),
//! including every substrate the paper depends on: a CDCL SAT solver, GF(2)
//! linear algebra, SEC Hamming codes, a simulated LPDDR4 chip population
//! with on-die ECC, an EINSim-style Monte-Carlo simulator, and the BEEP
//! error profiler built on top of BEER.
//!
//! This crate is a facade: it re-exports the workspace crates as modules
//! and offers a [`prelude`] for the common types. See `DESIGN.md` for the
//! architecture and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! The whole pipeline — craft patterns, profile retention miscorrections,
//! solve for the consistent ECC functions — runs through one typed entry
//! point: a [`beer_core::recovery::RecoveryConfig`] owns every knob, and
//! the [`beer_core::recovery::RecoverySession`] it starts drives any
//! backend to a typed [`beer_core::recovery::RecoveryOutcome`]:
//!
//! ```
//! use beer::prelude::*;
//!
//! // A chip whose on-die ECC function we pretend not to know.
//! let chip = SimChip::new(ChipConfig::small_test_chip(7));
//! let secret = chip.reveal_code().clone();
//! let knowledge = ChipKnowledge::uniform(
//!     chip.config().word_layout,
//!     CellType::True,
//!     chip.geometry().total_rows(),
//! );
//! let mut backend = ChipBackend::new(Box::new(chip), knowledge);
//!
//! // Steps 1–3, interleaved: batches of patterns are collected (sharded
//! // across worker threads), threshold-filtered, and streamed into an
//! // incremental SAT session until the ECC function is pinned down.
//! let report = RecoveryConfig::new()
//!     .with_parity_bits(secret.parity_bits())
//!     .session(&mut backend)
//!     .run_to_completion()
//!     .expect("simulated chips cannot fail collection");
//! match report.outcome {
//!     RecoveryOutcome::Unique(code) => assert!(equivalent(&code, &secret)),
//!     other => panic!("expected a unique recovery, got {other:?}"),
//! }
//! ```
//!
//! The low-level steps (`collect_with`, `solve_profile`,
//! `ProgressiveSolver`) remain available for experiments that need to
//! drive one stage in isolation — see the README's low-level API appendix.

pub use beer_beep as beep;
pub use beer_cluster as cluster;
pub use beer_core as core;
pub use beer_dram as dram;
pub use beer_ecc as ecc;
pub use beer_einsim as einsim;
pub use beer_gf2 as gf2;
pub use beer_net as net;
pub use beer_obs as obs;
pub use beer_sat as sat;
pub use beer_service as service;
pub use beer_timing as timing;

/// The commonly used types and functions, one `use` away.
pub mod prelude {
    pub use beer_beep::{
        code_from_outcome, evaluate, profile_recovered_word, profile_word, BeepConfig, BeepResult,
        DramWordTarget, EvalConfig, RecoveredCodeError, SimWordTarget, WordTarget,
    };
    pub use beer_cluster::{Cluster, ClusterClient, ClusterJob};
    pub use beer_core::analytic::{analytic_profile, code_matches_constraints};
    pub use beer_core::collect::{collect_profile, ChipKnowledge, CollectionPlan};
    pub use beer_core::direct::extract_by_injection;
    pub use beer_core::preprocess::{preprocess, Preprocessed};
    pub use beer_core::solve::{
        progressive_batches, progressive_recover, ColumnDistinctness, ObservationEncoding,
        ProgressiveOutcome, ProgressiveSolver, SolveError,
    };
    pub use beer_core::{
        collect_with, run_session_guarded, solve_profile, try_collect_traced, try_collect_with,
        AnalyticBackend, BeerSolverOptions, BudgetReason, CancelToken, ChargedSet, ChipBackend,
        EinsimBackend, EngineError, EngineOptions, FamilyCostEstimate, Fanout, Fingerprint,
        FleetMember, FleetOutcome, MiscorrectionProfile, Observation, PatternSchedule, PatternSet,
        ProfileConstraints, ProfileSource, ProfileTrace, RecoveryConfig, RecoveryError,
        RecoveryEvent, RecoveryFleet, RecoveryOutcome, RecoveryReport, RecoverySession,
        RecoveryStats, ReplayBackend, ScheduleCostModel, ScheduleCostReport, SessionHooks,
        SessionStatus, SolveReport, ThresholdFilter, TimedChipBackend, TimedCostModel,
        TraceParseError,
    };
    pub use beer_dram::{
        CellLayout, CellType, ChipConfig, ControllerReport, DramInterface, Geometry, RankLevelEcc,
        RetentionModel, SimChip, TransientNoise, WordLayout,
    };
    pub use beer_ecc::design::{vendor_code, Manufacturer};
    pub use beer_ecc::equivalence::{canonicalize, equivalent};
    pub use beer_ecc::{hamming, miscorrection, Correction, DecodeResult, LinearCode};
    pub use beer_einsim::{simulate, simulate_batches, ErrorModel, PerBitStats, SimConfig};
    pub use beer_gf2::{BitMatrix, BitVec, SynMask};
    pub use beer_net::{
        Client, ClientConfig, ClientError, NetServer, NetServerConfig, RemoteJob, Ring, RingMember,
        WireOutcome, WireResult,
    };
    pub use beer_obs::{
        FlightEvent, FlightRecorder, Histogram, HistogramSnapshot, MetricsRegistry, TraceId,
    };
    pub use beer_service::{
        CodeOutcome, ConfigError, JobError, JobEvent, JobId, JobInput, JobOutput, JobRequest,
        JobResult, JobState, Priority, RecoveryService, Rejected, RejectionStats, ServiceConfig,
        ServiceObs, ServiceStats, StartError,
    };
    pub use beer_timing::{
        ArrayGeometry, Command, MemController, TimingError, TimingParams, TrialCost,
    };
}
