//! # BEER: Bit-Exact ECC Recovery
//!
//! A full Rust reproduction of *"Bit-Exact ECC Recovery (BEER): Determining
//! DRAM On-Die ECC Functions by Exploiting DRAM Data Retention
//! Characteristics"* (Patel, Kim, Shahroodi, Hassan, Mutlu — MICRO 2020),
//! including every substrate the paper depends on: a CDCL SAT solver, GF(2)
//! linear algebra, SEC Hamming codes, a simulated LPDDR4 chip population
//! with on-die ECC, an EINSim-style Monte-Carlo simulator, and the BEEP
//! error profiler built on top of BEER.
//!
//! This crate is a facade: it re-exports the workspace crates as modules
//! and offers a [`prelude`] for the common types. See `DESIGN.md` for the
//! architecture and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! Recover the hidden ECC function of a simulated chip through the
//! profiling engine (parallel collection + progressive solving):
//!
//! ```
//! use beer::prelude::*;
//!
//! // A chip whose on-die ECC function we pretend not to know.
//! let chip = SimChip::new(ChipConfig::small_test_chip(7));
//! let secret = chip.reveal_code().clone();
//! let knowledge = ChipKnowledge::uniform(
//!     chip.config().word_layout,
//!     CellType::True,
//!     chip.geometry().total_rows(),
//! );
//!
//! // Steps 1+2: collect a miscorrection profile with 1-CHARGED patterns,
//! // sharded across worker threads by the engine.
//! let mut backend = ChipBackend::new(Box::new(chip), knowledge);
//! let patterns = PatternSet::One.patterns(backend.k());
//! let profile = collect_with(
//!     &mut backend,
//!     &patterns,
//!     &CollectionPlan::quick(),
//!     &EngineOptions::default(),
//! );
//!
//! // Step 3: solve for every consistent ECC function.
//! let constraints = profile.to_constraints(&ThresholdFilter::default());
//! let report = solve_profile(
//!     backend.k(),
//!     secret.parity_bits(),
//!     &constraints,
//!     &BeerSolverOptions::default(),
//! )
//! .expect("well-formed constraints");
//! assert!(report.solutions.iter().any(|s| equivalent(s, &secret)));
//! ```

pub use beer_beep as beep;
pub use beer_core as core;
pub use beer_dram as dram;
pub use beer_ecc as ecc;
pub use beer_einsim as einsim;
pub use beer_gf2 as gf2;
pub use beer_sat as sat;

/// The commonly used types and functions, one `use` away.
pub mod prelude {
    pub use beer_beep::{
        evaluate, profile_word, BeepConfig, BeepResult, DramWordTarget, EvalConfig, SimWordTarget,
        WordTarget,
    };
    pub use beer_core::analytic::{analytic_profile, code_matches_constraints};
    pub use beer_core::collect::{collect_profile, ChipKnowledge, CollectionPlan};
    pub use beer_core::direct::extract_by_injection;
    pub use beer_core::preprocess::{preprocess, Preprocessed};
    pub use beer_core::solve::{
        progressive_batches, progressive_recover, ColumnDistinctness, ObservationEncoding,
        ProgressiveOutcome, ProgressiveSolver, SolveError,
    };
    pub use beer_core::{
        collect_with, solve_profile, AnalyticBackend, BeerSolverOptions, ChargedSet, ChipBackend,
        EinsimBackend, EngineOptions, MiscorrectionProfile, Observation, PatternSet,
        ProfileConstraints, ProfileSource, ProfileTrace, ReplayBackend, SolveReport,
        ThresholdFilter,
    };
    pub use beer_dram::{
        CellLayout, CellType, ChipConfig, ControllerReport, DramInterface, Geometry, RankLevelEcc,
        RetentionModel, SimChip, TransientNoise, WordLayout,
    };
    pub use beer_ecc::design::{vendor_code, Manufacturer};
    pub use beer_ecc::equivalence::{canonicalize, equivalent};
    pub use beer_ecc::{hamming, miscorrection, Correction, DecodeResult, LinearCode};
    pub use beer_einsim::{simulate, simulate_batches, ErrorModel, PerBitStats, SimConfig};
    pub use beer_gf2::{BitMatrix, BitVec, SynMask};
}
