#!/usr/bin/env python3
"""Gate cluster scaling efficiency against a checked-in baseline.

Usage: check_cluster_scaling.py <run_json> <baseline_json> [factor]

Reads `efficiency_2node` — 2-node speedup normalized by
`min(2, cpu_cores)` — from a `bench_results/cluster_throughput.json`
produced by the cluster_throughput bench. The normalization makes the
number portable across machines: on a 1-core box it asserts sharding
adds no serialization penalty (parity), on a multi-core runner it
demands real near-linear scaling. The run fails (exit 1) if its
efficiency drops below `min(baseline, 1.0) * factor` (default 0.7 —
speedup >= 1.4x on a 2-core runner; the bench itself demonstrates
~2x where cores allow). The baseline is capped at 1.0 so a lucky
superlinear baseline can never demand the impossible.

Also fails if `duplicate_solves != duplicate_pairs`: cross-node
duplicates must coalesce to exactly one solve each, run and baseline
alike — dedup has no noise allowance.

Refresh the baseline deliberately with a smoke-scale run on a quiet
machine:  BEER_BENCH_SCALE=smoke cargo bench -p beer_bench --bench \
cluster_throughput && cp bench_results/cluster_throughput.json \
ci/cluster_throughput.baseline.json
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def field(doc, path, key):
    value = doc.get(key)
    if value is None:
        sys.exit(f"{path}: no {key} in artifact metadata")
    return float(value)


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <run_json> <baseline_json> [factor]")
    run_path, baseline_path = sys.argv[1], sys.argv[2]
    factor = float(sys.argv[3]) if len(sys.argv) == 4 else 0.7

    run = load(run_path)
    baseline = load(baseline_path)

    pairs = field(run, run_path, "duplicate_pairs")
    solves = field(run, run_path, "duplicate_solves")
    if solves != pairs:
        sys.exit(
            f"cross-node dedup broke: {solves:.0f} solves for "
            f"{pairs:.0f} duplicated profiles (expected exactly one each)"
        )
    print(f"cross-node dedup: {solves:.0f} solves for {pairs:.0f} pairs -> OK")

    run_eff = field(run, run_path, "efficiency_2node")
    base_eff = field(baseline, baseline_path, "efficiency_2node")
    floor = min(base_eff, 1.0) * factor
    verdict = "OK" if run_eff >= floor else "REGRESSION"
    print(
        f"2-node scaling efficiency: run = {run_eff:.3f} "
        f"(speedup {field(run, run_path, 'speedup_2node'):.2f}x on "
        f"{field(run, run_path, 'cpu_cores'):.0f} cores), "
        f"baseline = {base_eff:.3f}, floor = {floor:.3f} ({factor}x) -> {verdict}"
    )
    if run_eff < floor:
        sys.exit(1)


if __name__ == "__main__":
    main()
