#!/usr/bin/env python3
"""Gate cost-aware campaign scheduling against a checked-in baseline.

Usage: check_timing_campaign.py <run_json> <baseline_json> [max_ratio_x]

Reads `ratio` — the worst-case (over the temperatures run) quotient of
cost-aware over naive simulated campaign nanoseconds — from a
`bench_results/timing_campaign.json` produced by the timing_campaign
bench. Two conditions gate the run (exit 1 on failure):

1. Cost-aware must actually beat naive: `ratio < 1.0`. The scheduler's
   whole claim is fewer simulated DRAM hours for the same recovered
   function; a ratio at or above parity means the ordering regressed to
   worthless.
2. No drift past the baseline: `ratio <= baseline_ratio * max_ratio_x`
   (default 1.1 — "at most 10% worse than the checked-in run"). The
   simulation is deterministic, so any movement here is a real change
   in scheduler or controller behavior, not noise.

Refresh the baseline deliberately after an intentional change:
  BEER_BENCH_SCALE=quick cargo bench -p beer_bench --bench \
timing_campaign && cp bench_results/timing_campaign.json \
ci/timing_campaign.baseline.json
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def field(doc, path, key):
    value = doc.get(key)
    if value is None:
        sys.exit(f"{path}: no {key} in artifact metadata")
    return float(value)


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <run_json> <baseline_json> [max_ratio_x]")
    run_path, baseline_path = sys.argv[1], sys.argv[2]
    max_ratio_x = float(sys.argv[3]) if len(sys.argv) == 4 else 1.1

    run = load(run_path)
    baseline = load(baseline_path)

    run_ratio = field(run, run_path, "ratio")
    base_ratio = field(baseline, baseline_path, "ratio")
    ceiling = base_ratio * max_ratio_x

    beats_naive = run_ratio < 1.0
    within_baseline = run_ratio <= ceiling
    verdict = "OK" if beats_naive and within_baseline else "REGRESSION"
    print(
        f"cost-aware/naive simulated campaign time: run = {run_ratio:.4f}, "
        f"baseline = {base_ratio:.4f}, ceiling = {ceiling:.4f} "
        f"(x{max_ratio_x}) -> {verdict}"
    )
    if not beats_naive:
        print(f"cost-aware scheduling no longer beats naive order ({run_ratio:.4f} >= 1.0)")
    if not within_baseline:
        print(f"ratio drifted past the baseline ceiling ({run_ratio:.4f} > {ceiling:.4f})")
    if not (beats_naive and within_baseline):
        sys.exit(1)


if __name__ == "__main__":
    main()
