#!/usr/bin/env python3
"""Gate segmented-registry startup against a checked-in baseline.

Usage: check_registry_scale.py <run_json> <baseline_json> [factor]

Reads `startup_segmented_ms` from a `bench_results/registry_scale.json`
produced by the registry_scale bench and from the checked-in baseline,
and fails (exit 1) if the run regressed by more than `factor` (default
2.0). The generous factor absorbs shared-runner noise; a return to
whole-log replay at startup overshoots it by an order of magnitude
(see `startup_monolith_ms` in the same artifact).

Refresh the baseline deliberately with a smoke-scale run on a quiet
machine:  BEER_BENCH_SCALE=smoke cargo bench -p beer_bench --bench \
registry_scale && cp bench_results/registry_scale.json \
ci/registry_scale.baseline.json
"""

import json
import sys


def startup_ms(path):
    with open(path) as f:
        doc = json.load(f)
    value = doc.get("startup_segmented_ms")
    if value is None:
        sys.exit(f"{path}: no startup_segmented_ms in artifact metadata")
    return float(value)


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <run_json> <baseline_json> [factor]")
    run_path, baseline_path = sys.argv[1], sys.argv[2]
    factor = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    run = startup_ms(run_path)
    baseline = startup_ms(baseline_path)
    limit = baseline * factor
    verdict = "OK" if run <= limit else "REGRESSION"
    print(
        f"segmented registry startup: run = {run:.2f} ms, baseline = {baseline:.2f} ms, "
        f"limit = {limit:.2f} ms ({factor}x) -> {verdict}"
    )
    if run > limit:
        sys.exit(1)


if __name__ == "__main__":
    main()
