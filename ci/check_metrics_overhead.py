#!/usr/bin/env python3
"""Gate beer_obs instrumentation cost against a checked-in baseline.

Usage: check_metrics_overhead.py <run_json> <baseline_json> [margin_pct]

Reads `overhead_pct` — the throughput cost of running the service with
observability on versus off, measured on the dedup fast path where
per-job metric recording is the largest fraction of the work — from a
`bench_results/metrics_overhead.json` produced by the metrics_overhead
bench. The run fails (exit 1) if its overhead exceeds
`max(baseline, 0) + margin` (default margin 5.0 — "at most five points
of regression"). The baseline is floored at zero so a lucky negative
baseline (measurement noise can make obs-on win) never tightens the
gate below the advertised five percent.

Refresh the baseline deliberately with a quick-scale run on a quiet
machine:  BEER_BENCH_SCALE=quick cargo bench -p beer_bench --bench \
metrics_overhead && cp bench_results/metrics_overhead.json \
ci/metrics_overhead.baseline.json
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def field(doc, path, key):
    value = doc.get(key)
    if value is None:
        sys.exit(f"{path}: no {key} in artifact metadata")
    return float(value)


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <run_json> <baseline_json> [margin_pct]")
    run_path, baseline_path = sys.argv[1], sys.argv[2]
    margin = float(sys.argv[3]) if len(sys.argv) == 4 else 5.0

    run = load(run_path)
    baseline = load(baseline_path)

    run_overhead = field(run, run_path, "overhead_pct")
    base_overhead = field(baseline, baseline_path, "overhead_pct")
    ceiling = max(base_overhead, 0.0) + margin
    verdict = "OK" if run_overhead <= ceiling else "REGRESSION"
    print(
        f"observability overhead: run = {run_overhead:.2f}% "
        f"(on {field(run, run_path, 'hits_per_sec_on'):.0f} vs "
        f"off {field(run, run_path, 'hits_per_sec_off'):.0f} hits/sec), "
        f"baseline = {base_overhead:.2f}%, "
        f"ceiling = {ceiling:.2f}% (+{margin}) -> {verdict}"
    )
    if run_overhead > ceiling:
        sys.exit(1)


if __name__ == "__main__":
    main()
