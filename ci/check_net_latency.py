#!/usr/bin/env python3
"""Gate remote cache-hit latency against a checked-in baseline.

Usage: check_net_latency.py <run_json> <baseline_json> [factor]

Reads `hit_p99_us` from a `bench_results/net_throughput.json` produced by
the net_throughput bench and from the checked-in baseline, and fails
(exit 1) if the run regressed by more than `factor` (default 2.0). The
generous factor absorbs shared-runner noise; a return to polling-based
event delivery (~50 ms ticks) overshoots it by orders of magnitude.

Refresh the baseline deliberately with a smoke-scale run on a quiet
machine:  BEER_BENCH_SCALE=smoke cargo bench -p beer_bench --bench \
net_throughput && cp bench_results/net_throughput.json \
ci/net_throughput.baseline.json
"""

import json
import sys


def hit_p99_us(path):
    with open(path) as f:
        doc = json.load(f)
    value = doc.get("hit_p99_us")
    if value is None:
        sys.exit(f"{path}: no hit_p99_us in artifact metadata")
    return float(value)


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <run_json> <baseline_json> [factor]")
    run_path, baseline_path = sys.argv[1], sys.argv[2]
    factor = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    run = hit_p99_us(run_path)
    baseline = hit_p99_us(baseline_path)
    limit = baseline * factor
    verdict = "OK" if run <= limit else "REGRESSION"
    print(
        f"remote cache-hit p99: run = {run:.0f} us, baseline = {baseline:.0f} us, "
        f"limit = {limit:.0f} us ({factor}x) -> {verdict}"
    )
    if run > limit:
        sys.exit(1)


if __name__ == "__main__":
    main()
