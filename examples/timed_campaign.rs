//! What a BEER campaign *costs*: recover a (136, 128) LPDDR4-style on-die
//! ECC function over the cycle-accurate timed backend at two temperatures,
//! and compare the simulated DRAM hours against the host-side solve
//! milliseconds.
//!
//! The paper prices its experiments in DRAM time — every retention trial
//! pins the array for a full refresh window while the SAT solve takes
//! milliseconds (§6.3). Here both numbers come from one execution: the
//! `TimedChipBackend` drives every trial through a `beer_timing`
//! controller (program sweep → refresh-paused decay → readback), so each
//! round's error profile and its simulated nanoseconds derive from the
//! same command stream. Temperature sets the exchange rate: the retention
//! model needs exponentially longer refresh windows at lower temperature
//! to reach the same raw bit-error rates, so the *same facts* cost vastly
//! more simulated hours at 45 °C than at 80 °C.
//!
//! Run with: `cargo run --release --example timed_campaign`

use beer::prelude::*;
use beer::timing::TimingParams;

/// BER targets of the refresh-window sweep (the quick plan's ladder).
const BER_TARGETS: [f64; 10] = [1e-3, 1e-2, 0.05, 0.1, 0.15, 0.25, 0.35, 0.4, 0.45, 0.499];

/// A (136, 128)-code chip, shrunk geometrically for a fast demo.
fn chip() -> SimChip {
    SimChip::new(
        ChipConfig::lpddr4_like(Manufacturer::A, 2, 0x7E_D5)
            .with_geometry(Geometry::new(2, 128, 512)),
    )
}

/// The refresh-window sweep reaching `BER_TARGETS` at `celsius` — same
/// error rates (same facts), temperature-dependent windows (different
/// cost).
fn plan_at(model: &RetentionModel, celsius: f64) -> CollectionPlan {
    CollectionPlan {
        trefw_schedule: BER_TARGETS
            .iter()
            .map(|&b| model.window_for_ber(b, celsius))
            .collect(),
        celsius,
        trials_per_step: 8,
    }
}

fn main() {
    let probe = chip();
    let secret = probe.reveal_code().clone();
    let model = probe.config().retention;
    println!(
        "chip under test: ({}, {}) on-die ECC, {} x {}-bit words, {} banks",
        secret.n(),
        secret.k(),
        probe.num_words(),
        probe.k(),
        probe.geometry().banks(),
    );

    for celsius in [45.0, 80.0] {
        println!("\n=== campaign at {celsius} °C ===");
        let plan = plan_at(&model, celsius);
        println!(
            "    refresh windows: {:.1} s .. {:.1} s ({} trials/round)",
            plan.trefw_schedule.first().unwrap(),
            plan.trefw_schedule.last().unwrap(),
            plan.num_trials(),
        );

        let c = chip();
        let knowledge = ChipKnowledge::uniform(
            c.config().word_layout,
            CellType::True,
            c.geometry().total_rows(),
        );
        let mut backend =
            TimedChipBackend::with_params(Box::new(c), knowledge, TimingParams::lpddr4_3200());

        // Price one round up front by *executing* the plan on a scratch
        // controller — the same streams the backend will run.
        let round_ns = backend.cost_model().round_sim_ns(&plan);
        println!(
            "    cost model: one collection round = {:.2} simulated hours",
            round_ns as f64 / 3.6e12
        );

        // The simulator is noise-free, so any single observation is a real
        // miscorrection and silence at this sampling depth is real absence
        // — the default filter's noise margins would only discard facts.
        let report = RecoveryConfig::new()
            .with_parity_bits(secret.parity_bits())
            .with_filter(ThresholdFilter {
                min_count: 1,
                min_fraction: 0.0,
                min_trials: 1,
            })
            .with_plan(plan)
            .session(&mut backend)
            .with_observer(|event| {
                if let RecoveryEvent::CheckCompleted {
                    round,
                    solutions,
                    sim_ns,
                    phases,
                    ..
                } = event
                {
                    println!(
                        "    round {round}: {solutions} candidate(s) — {:.2} simulated h \
                         of DRAM time, {} ms of host solve",
                        *sim_ns as f64 / 3.6e12,
                        phases.solve.as_millis(),
                    );
                }
            })
            .run_to_completion()
            .expect("simulated chips cannot fail collection");

        match report.outcome.unique_code() {
            Some(code) if equivalent(code, &secret) => println!("    recovered: MATCH"),
            Some(_) => println!("    recovered: MISMATCH"),
            None => println!("    outcome: {:?}", report.outcome),
        }
        let sim_hours = report.stats.dram_sim_ns as f64 / 3.6e12;
        println!(
            "    campaign total: {:.2} simulated DRAM hours for {:?} of host wall-clock \
             ({} rounds, {} facts)",
            sim_hours, report.stats.elapsed, report.stats.rounds, report.stats.facts_encoded,
        );
    }

    println!(
        "\nSame facts, different bill: the 45 °C campaign needs the same sweep of raw \
         bit-error rates, but each window is exponentially longer — the simulated hours \
         above are the cost the paper's §6.3 runtime model prices."
    );
}
