//! BEEP (§7.1): locate pre-correction error-prone cells bit-exactly —
//! including cells inside the chip-invisible parity bits — using a known
//! ECC function.
//!
//! Plants weak cells in simulated ECC words, runs the three BEEP phases
//! (craft patterns → experiment → calculate), and reports precision and
//! recall against the planted ground truth.
//!
//! Run with: `cargo run --release --example beep_profiling`

use beer::prelude::*;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xBEE9_0001);

    // The ECC function would come from BEER in practice; here we take a
    // (63, 57) SEC Hamming code drawn from the design space.
    let code = hamming::random_sec(57, &mut rng);
    println!(
        "ECC function: ({}, {}) SEC Hamming code (known via BEER)",
        code.n(),
        code.k()
    );

    let configs = [
        ("3 errors, P[error]=1.00", 3usize, 1.0f64, 1usize),
        ("5 errors, P[error]=1.00", 5, 1.0, 1),
        ("5 errors, P[error]=0.50", 5, 0.5, 2),
        ("8 errors, P[error]=0.75", 8, 0.75, 2),
    ];

    for (label, n_errors, p_error, passes) in configs {
        // Plant weak cells anywhere in the codeword, parity included.
        let weak: Vec<usize> = {
            let mut v: Vec<usize> = sample(&mut rng, code.n(), n_errors).into_iter().collect();
            v.sort_unstable();
            v
        };
        let mut target = SimWordTarget::new(code.clone(), weak.clone(), p_error, 0xD0D0);
        let config = BeepConfig {
            passes,
            trials_per_pattern: 4,
            ..BeepConfig::default()
        };
        let result = profile_word(&code, &mut target, &config);
        let found = result.discovered_sorted();

        let tp = found.iter().filter(|f| weak.contains(f)).count();
        let fp = found.len() - tp;
        let parity_found = found.iter().filter(|&&f| f >= code.k()).count();
        println!("\n== {label} ==");
        println!("   planted:    {weak:?}");
        println!("   discovered: {found:?}");
        println!(
            "   recall {}/{}  false-positives {}  (parity-bit errors found: {})",
            tp,
            weak.len(),
            fp,
            parity_found
        );
        println!(
            "   {} crafted patterns, {} trials, {} bits skipped",
            result.patterns_tested, result.trials_run, result.skipped_bits
        );
        if found == weak {
            println!("   => exact recovery");
        }
    }

    println!(
        "\nNote: every discovered position is proven by an exact syndrome\n\
         decode (Equation 4), so false positives only arise from noise —\n\
         none exists in this simulation."
    );
}
