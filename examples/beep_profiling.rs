//! BEEP (§7.1): locate pre-correction error-prone cells bit-exactly —
//! including cells inside the chip-invisible parity bits — using the ECC
//! function recovered by BEER.
//!
//! The composed pipeline: a [`RecoverySession`] first recovers the (63,
//! 57) code from its miscorrection profile, then the typed outcome feeds
//! BEEP directly (`profile_recovered_word`) — anything short of a unique
//! recovery is a typed refusal, never a silently wrong profile. Weak
//! cells are planted in simulated ECC words, the three BEEP phases run
//! (craft patterns → experiment → calculate), and precision/recall are
//! reported against the planted ground truth.
//!
//! Run with: `cargo run --release --example beep_profiling`

use beer::prelude::*;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xBEE9_0001);

    // The chip's secret function: a (63, 57) SEC Hamming code drawn from
    // the design space. BEER recovers it from retention evidence alone.
    let secret = hamming::random_sec(57, &mut rng);
    println!(
        "secret ECC function: ({}, {}) SEC Hamming code",
        secret.n(),
        secret.k()
    );
    let mut backend = AnalyticBackend::new(secret.clone());
    let report = RecoveryConfig::new()
        .with_parity_bits(secret.parity_bits())
        .with_chunked_schedule(128)
        .session(&mut backend)
        .run_to_completion()
        .expect("analytic backends cannot fail");
    println!(
        "BEER: {} in {} round(s), {}/{} patterns",
        if report.outcome.is_unique() {
            "unique recovery"
        } else {
            "NO unique recovery"
        },
        report.stats.rounds,
        report.stats.patterns_used,
        report.stats.patterns_available,
    );
    let recovered = code_from_outcome(&report.outcome).expect("unique recovery");
    assert!(
        equivalent(recovered, &secret),
        "recovered function must match the secret"
    );

    let configs = [
        ("3 errors, P[error]=1.00", 3usize, 1.0f64, 1usize),
        ("5 errors, P[error]=1.00", 5, 1.0, 1),
        ("5 errors, P[error]=0.50", 5, 0.5, 2),
        ("8 errors, P[error]=0.75", 8, 0.75, 2),
    ];

    for (label, n_errors, p_error, passes) in configs {
        // Plant weak cells anywhere in the codeword, parity included.
        // BEER recovers the function up to parity-bit relabeling, so cell
        // positions live in the recovered function's coordinate system —
        // the target simulates the same physical device in those
        // coordinates, exactly as BEEP sees it in practice.
        let weak: Vec<usize> = {
            let mut v: Vec<usize> = sample(&mut rng, recovered.n(), n_errors)
                .into_iter()
                .collect();
            v.sort_unstable();
            v
        };
        let mut target = SimWordTarget::new(recovered.clone(), weak.clone(), p_error, 0xD0D0);
        let config = BeepConfig {
            passes,
            trials_per_pattern: 4,
            ..BeepConfig::default()
        };
        let result = profile_recovered_word(&report.outcome, &mut target, &config)
            .expect("unique recovery feeds BEEP directly");
        let found = result.discovered_sorted();

        let tp = found.iter().filter(|f| weak.contains(f)).count();
        let fp = found.len() - tp;
        let parity_found = found.iter().filter(|&&f| f >= recovered.k()).count();
        println!("\n== {label} ==");
        println!("   planted:    {weak:?}");
        println!("   discovered: {found:?}");
        println!(
            "   recall {}/{}  false-positives {}  (parity-bit errors found: {})",
            tp,
            weak.len(),
            fp,
            parity_found
        );
        println!(
            "   {} crafted patterns, {} trials, {} bits skipped",
            result.patterns_tested, result.trials_run, result.skipped_bits
        );
        if found == weak {
            println!("   => exact recovery");
        }
    }

    println!(
        "\nNote: every discovered position is proven by an exact syndrome\n\
         decode (Equation 4), so false positives only arise from noise —\n\
         none exists in this simulation."
    );
}
