//! Running BEER as a service: multi-tenant job submission, fingerprint
//! dedup, event streaming, and the persistent code registry surviving a
//! restart.
//!
//! ```sh
//! cargo run --release --example recovery_service
//! ```

use beer::prelude::*;
use beer::service::Registry;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn main() -> std::io::Result<()> {
    let registry_path = std::env::temp_dir().join("beer_recovery_service_example.log");
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);

    // Two chip families, i.e. two distinct on-die ECC functions. Tenants
    // profile their chips (here: the analytic model) and submit traces.
    let family_a = vendor_code(Manufacturer::B, 16, 0);
    let family_b = vendor_code(Manufacturer::C, 16, 0);
    let trace_a1 = record_trace(&family_a); // alice's chip
    let trace_a2 = record_trace(&family_a); // bob's chip, same family
    let trace_b = record_trace(&family_b);

    println!("=== first service life ===");
    let service = RecoveryService::start(
        ServiceConfig::new()
            .with_workers(2)
            .with_registry_path(&registry_path),
    )?;
    let events = service.subscribe_all();

    let alice = service
        .submit(JobRequest::trace("alice", trace_a1.clone()))
        .expect("admitted");
    let bob = service
        .submit(JobRequest::trace("bob", trace_a2.clone()).with_priority(Priority::High))
        .expect("admitted");
    let carol = service
        .submit(JobRequest::trace("carol", trace_b.clone()))
        .expect("admitted");

    for (who, id, family) in [
        ("alice", alice, &family_a),
        ("bob", bob, &family_a),
        ("carol", carol, &family_b),
    ] {
        let output = service.wait(id).expect("clean profiles solve");
        let code = output.outcome.unique_code().expect("unique recovery");
        println!(
            "{who:>6}: {id} -> ({}, {}) code, matches family: {}, from cache: {}",
            code.n(),
            code.k(),
            equivalent(code, family),
            output.from_cache,
        );
    }

    // Alice's and bob's chips are *different recordings* of the same
    // physical evidence, so their fingerprints match and only one was
    // actually solved — visible in the event stream.
    let mut coalesced = 0;
    let mut progress = 0;
    for event in events.try_iter() {
        match event {
            JobEvent::Coalesced { job, primary } => {
                coalesced += 1;
                println!("  event: {job} coalesced onto {primary}");
            }
            JobEvent::Progress { .. } => progress += 1,
            _ => {}
        }
    }
    let stats = service.stats();
    println!(
        "dedup: {} coalesced + {} cache hits across {} submissions ({progress} session events)",
        stats.coalesced, stats.cache_hits, stats.submitted
    );
    assert_eq!(coalesced + stats.cache_hits as usize, 1);

    // The registry now holds both families, queryable three ways.
    let (records, codes) = service.registry_size();
    println!("registry: {records} job records, {codes} distinct codes");
    let entry = service.lookup_code(&family_a).expect("family A registered");
    println!(
        "family A was recovered from {} profile(s): {:?}",
        entry.fingerprints.len(),
        entry.fingerprints
    );
    println!(
        "({}, {}) codes on file: {}",
        family_a.n(),
        family_a.k(),
        service.lookup_dims(family_a.n(), family_a.k()).len()
    );
    service.shutdown();

    println!("\n=== second service life (same registry file) ===");
    let service = RecoveryService::start(
        ServiceConfig::new()
            .with_workers(2)
            .with_registry_path(&registry_path),
    )?;
    let dave = service
        .submit(JobRequest::trace("dave", trace_a1.clone()))
        .expect("admitted");
    let output = service.wait(dave).expect("cache answers");
    println!(
        "dave resubmits alice's profile: from_cache = {}, matches family A: {}",
        output.from_cache,
        equivalent(output.outcome.unique_code().expect("unique"), &family_a),
    );
    assert!(output.from_cache, "the restart must answer from history");
    service.shutdown();

    // The registry directory is a plain, replayable artifact.
    let registry = Registry::open(&registry_path)?;
    println!(
        "standalone replay: {} records, {} codes, {} corrupt lines skipped",
        registry.record_count(),
        registry.code_count(),
        registry.skipped_lines()
    );
    let _ = std::fs::remove_file(&registry_path);
    let _ = std::fs::remove_dir_all(&registry_path);
    Ok(())
}
