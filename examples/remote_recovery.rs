//! Remote recovery over `beer-wire v1`: a server on an ephemeral
//! loopback port, one client submitting a profiled trace, and a second
//! client attaching to the *same fingerprint* — it coalesces onto the
//! in-flight job and streams its events instead of re-solving.
//!
//! ```text
//! cargo run --release --example remote_recovery
//! ```

use beer::net::{Client, NetServer, NetServerConfig, WireEvent};
use beer::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tenant profiles a chip (here: the analytic model of a secret
    // code) and records the evidence as a shippable trace.
    let secret = hamming::shortened(16);
    let patterns = PatternSet::OneTwo.patterns(16);
    let mut chip = AnalyticBackend::new(secret.clone());
    let trace = ProfileTrace::record(&mut chip, &patterns, &CollectionPlan::default());
    println!(
        "profiled a secret ({}, {}) code: {} patterns, fingerprint {}",
        secret.n(),
        secret.k(),
        trace.patterns.len(),
        trace.fingerprint()
    );

    // The service and its network edge, on an ephemeral loopback port.
    let service = Arc::new(RecoveryService::start(
        ServiceConfig::new().with_workers(2),
    )?);
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_server_name("beer-demo"),
    )?;
    let addr = server.local_addr().to_string();
    println!("server listening on {addr}\n");

    // Client 1 submits the trace and waits.
    let mut alice = Client::connect(&addr, "alice", "")?;
    let job_a = alice.submit(&trace)?;
    println!(
        "alice: submitted as job {} (wire v{})",
        job_a.id,
        alice.version()
    );

    // Client 2 submits the *same fingerprint* from another connection —
    // the service coalesces it onto alice's in-flight job (or answers
    // from cache if alice already finished) and streams the events.
    let mut bob = Client::connect(&addr, "bob", "")?;
    let job_b = bob.submit(&trace)?;
    println!("bob:   attached as job {} (same fingerprint)", job_b.id);
    let bob_result = bob.wait_with(job_b, |event| match event {
        WireEvent::Coalesced { primary } => {
            println!("bob:   coalesced onto in-flight job {primary}");
        }
        WireEvent::CacheHit => println!("bob:   answered from the registry cache"),
        WireEvent::State { state } => println!("bob:   state → {state}"),
        _ => {}
    })?;

    let alice_result = alice.wait(job_a)?;
    let code_a = alice_result
        .expect("clean profile solves")
        .outcome
        .unique_code()
        .expect("unique recovery")
        .clone();
    let out_b = bob_result.expect("bob shares the result");
    let code_b = out_b
        .outcome
        .unique_code()
        .expect("unique recovery")
        .clone();

    println!("\nalice recovered: P =");
    for row in code_a.parity_submatrix().iter_rows() {
        let bits: String = (0..row.len())
            .map(|j| if row.get(j) { '1' } else { '0' })
            .collect();
        println!("  {bits}");
    }
    assert_eq!(
        code_a.parity_submatrix(),
        code_b.parity_submatrix(),
        "both clients share one recovery"
    );
    assert!(equivalent(&code_a, &secret), "and it matches the secret");
    println!(
        "bob's answer is bit-identical (coalesced into: {:?})",
        out_b.coalesced_into
    );

    let stats = alice.stats()?;
    println!(
        "\nservice: {} submitted, {} completed, {} coalesced, {} cache hits",
        stats.submitted, stats.completed, stats.coalesced, stats.cache_hits
    );
    server.shutdown(Duration::from_secs(2));
    println!("server drained cleanly");
    Ok(())
}
