//! The full §5 pipeline on a manufacturer-C-style chip: nothing about the
//! chip is assumed — cell layout, dataword layout, and the ECC function
//! are all reverse engineered from the data interface.
//!
//! Manufacturer C is the interesting case: its chips mix true- and
//! anti-cells in alternating row blocks (§5.1.1), so even *writing a test
//! pattern* requires first learning which rows invert data.
//!
//! Run with: `cargo run --release --example reverse_engineer_chip`

use beer::prelude::*;

fn main() {
    // An LPDDR4-like chip, shrunk for a fast demonstration: 32-bit words,
    // alternating true/anti blocks every 32 rows.
    let config = ChipConfig {
        cell_layout: CellLayout::AlternatingBlocks {
            block_rows: vec![32],
        },
        ..ChipConfig::lpddr4_like(Manufacturer::C, 1, 0xC44)
            .with_geometry(Geometry::new(1, 128, 256))
            .with_word_bytes(4)
    };
    let mut chip = SimChip::new(config);
    println!(
        "chip under test: manufacturer C, {} x {}-bit words, {} rows",
        chip.num_words(),
        chip.k(),
        chip.geometry().total_rows()
    );

    // ---------------------------------------------------------------
    // §5.1.1 + §5.1.2: reverse engineer the cell and dataword layouts.
    // ---------------------------------------------------------------
    println!("\n[1] probing cell + dataword layout (§5.1.1, §5.1.2)...");
    let knowledge =
        ChipKnowledge::probe(&mut chip, 4, 4.0 * 3600.0).expect("layout probe failed to decide");
    let anti_rows = knowledge
        .row_cell_types
        .iter()
        .filter(|&&t| t == CellType::Anti)
        .count();
    println!(
        "    cell layout: {anti_rows}/{} anti-cell rows detected",
        knowledge.row_cell_types.len()
    );
    println!("    word layout: {:?}", knowledge.word_layout);

    // ---------------------------------------------------------------
    // §5.1.3 + §5.3, interleaved: the progressive engine collects one
    // pattern batch at a time (sharded over worker threads), streams the
    // thresholded constraints into a live SAT session, and stops at the
    // first batch that pins the ECC function down uniquely (§6.3).
    // ---------------------------------------------------------------
    println!("\n[2] progressive collect-and-solve (§5.1.3 + §5.3 + §6.3)...");
    let secret = chip.reveal_code().clone();
    let k = chip.k();
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    let outcome = progressive_recover(
        &mut backend,
        hamming::parity_bits_for(k),
        &progressive_batches(k, 64),
        &CollectionPlan::quick(),
        &ThresholdFilter::default(),
        &BeerSolverOptions::default(),
        &EngineOptions::default(),
    )
    .expect("well-formed batches");
    let report = &outcome.report;
    println!(
        "    {} round(s), {} of {} patterns collected, {} facts encoded",
        outcome.rounds, outcome.patterns_used, outcome.patterns_available, outcome.facts_encoded
    );
    println!(
        "    {} solution(s); total {:?}, {} vars / {} clauses",
        report.solutions.len(),
        outcome.total_time,
        report.num_vars,
        report.num_clauses
    );

    // ---------------------------------------------------------------
    // Validation against ground truth (simulation-only luxury), plus the
    // paper's §5.1.3 EINSim-style cross-check: the recovered function's
    // *analytic* profile must reproduce a freshly measured one.
    // ---------------------------------------------------------------
    let hit = report.solutions.iter().find(|s| equivalent(s, &secret));
    match hit {
        Some(found) => {
            println!("\n[3] ground truth check: MATCH");
            let patterns = PatternSet::One.patterns(k);
            let measured = collect_with(
                &mut backend,
                &patterns,
                &CollectionPlan::quick(),
                &EngineOptions::default(),
            )
            .to_constraints(&ThresholdFilter::default());
            let cross = analytic_profile(found, &patterns);
            let disagreements = measured.disagreements(&cross);
            println!(
                "    EINSim cross-check: {} disagreements between measured and simulated profiles",
                disagreements.len()
            );
        }
        None => println!("\n[3] ground truth check: MISMATCH"),
    }
}
