//! The full §5 pipeline on a manufacturer-C-style chip: nothing about the
//! chip is assumed — cell layout, dataword layout, and the ECC function
//! are all reverse engineered from the data interface.
//!
//! Manufacturer C is the interesting case: its chips mix true- and
//! anti-cells in alternating row blocks (§5.1.1), so even *writing a test
//! pattern* requires first learning which rows invert data.
//!
//! The recovery itself runs through a checkpointing [`RecoverySession`]:
//! every collected unit is recorded into a [`ProfileTrace`], and the
//! example replays that trace through a [`ReplayBackend`] session to show
//! the archived experiment reproduces the outcome bit for bit.
//!
//! Run with: `cargo run --release --example reverse_engineer_chip`

use beer::prelude::*;

fn main() {
    // An LPDDR4-like chip, shrunk for a fast demonstration: 32-bit words,
    // alternating true/anti blocks every 32 rows.
    let config = ChipConfig {
        cell_layout: CellLayout::AlternatingBlocks {
            block_rows: vec![32],
        },
        ..ChipConfig::lpddr4_like(Manufacturer::C, 1, 0xC44)
            .with_geometry(Geometry::new(1, 128, 256))
            .with_word_bytes(4)
    };
    let mut chip = SimChip::new(config);
    println!(
        "chip under test: manufacturer C, {} x {}-bit words, {} rows",
        chip.num_words(),
        chip.k(),
        chip.geometry().total_rows()
    );

    // ---------------------------------------------------------------
    // §5.1.1 + §5.1.2: reverse engineer the cell and dataword layouts.
    // ---------------------------------------------------------------
    println!("\n[1] probing cell + dataword layout (§5.1.1, §5.1.2)...");
    let knowledge =
        ChipKnowledge::probe(&mut chip, 4, 4.0 * 3600.0).expect("layout probe failed to decide");
    let anti_rows = knowledge
        .row_cell_types
        .iter()
        .filter(|&&t| t == CellType::Anti)
        .count();
    println!(
        "    cell layout: {anti_rows}/{} anti-cell rows detected",
        knowledge.row_cell_types.len()
    );
    println!("    word layout: {:?}", knowledge.word_layout);

    // ---------------------------------------------------------------
    // §5.1.3 + §5.3, interleaved: one session drives progressive batch
    // collection (sharded over worker threads), streams the thresholded
    // constraints into a live SAT session, and stops at the first batch
    // that pins the ECC function down uniquely (§6.3). Trace recording is
    // on, so the whole experiment is checkpointed as it runs.
    // ---------------------------------------------------------------
    println!("\n[2] recovery session: progressive collect-and-solve (§5.1.3 + §5.3 + §6.3)...");
    let secret = chip.reveal_code().clone();
    let k = chip.k();
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    let session_config = RecoveryConfig::new()
        .with_parity_bits(hamming::parity_bits_for(k))
        .with_chunked_schedule(64)
        .with_trace_recording(true);
    let report = session_config
        .session(&mut backend)
        .with_observer(|event| {
            if let RecoveryEvent::CheckCompleted {
                round,
                solutions,
                elapsed,
                ..
            } = event
            {
                println!("    round {round}: {solutions} candidate function(s) ({elapsed:?})");
            }
        })
        .run_to_completion()
        .expect("simulated chips cannot fail collection");
    let stats = &report.stats;
    println!(
        "    {} round(s), {} of {} patterns collected, {} facts encoded, {} vars pinned",
        stats.rounds,
        stats.patterns_used,
        stats.patterns_available,
        stats.facts_encoded,
        stats.pinned_vars
    );
    if let Some(check) = &report.last_check {
        println!(
            "    final check: {} vars / {} clauses, total {:?}",
            check.num_vars, check.num_clauses, stats.elapsed
        );
    }

    // ---------------------------------------------------------------
    // Validation against ground truth (simulation-only luxury), plus the
    // paper's §5.1.3 EINSim-style cross-check: the recovered function's
    // *analytic* profile must reproduce the measured one — here taken
    // straight from the session's own checkpoint.
    // ---------------------------------------------------------------
    let trace = report.trace.as_ref().expect("recording was enabled");
    match report.outcome.unique_code() {
        Some(found) if equivalent(found, &secret) => {
            println!("\n[3] ground truth check: MATCH");
            let measured = trace
                .to_profile()
                .to_constraints(&ThresholdFilter::default());
            let cross = analytic_profile(found, &trace.patterns);
            println!(
                "    EINSim cross-check: {} disagreements between measured and simulated profiles",
                measured.disagreements(&cross).len()
            );
        }
        Some(_) => println!("\n[3] ground truth check: MISMATCH"),
        None => println!("\n[3] no unique function: {:?}", report.outcome),
    }

    // ---------------------------------------------------------------
    // Checkpoint replay: the recorded trace stands in for the chip — the
    // same session config over a ReplayBackend reproduces the recovery
    // bit for bit, without touching hardware (profile a fleet once,
    // re-analyze forever).
    // ---------------------------------------------------------------
    println!("\n[4] replaying the checkpoint through a ReplayBackend session...");
    let mut replay = ReplayBackend::new(trace.clone());
    let replayed = RecoveryConfig::new()
        .with_parity_bits(hamming::parity_bits_for(k))
        .with_chunked_schedule(64)
        .session(&mut replay)
        .run_to_completion()
        .expect("the checkpoint covers every batch the session re-requests");
    let identical = match (report.outcome.unique_code(), replayed.outcome.unique_code()) {
        (Some(a), Some(b)) => a.parity_submatrix() == b.parity_submatrix(),
        _ => false,
    };
    println!(
        "    replayed outcome identical to the live run: {}",
        if identical { "YES" } else { "NO" }
    );
}
