//! The full §5 pipeline on a manufacturer-C-style chip: nothing about the
//! chip is assumed — cell layout, dataword layout, and the ECC function
//! are all reverse engineered from the data interface.
//!
//! Manufacturer C is the interesting case: its chips mix true- and
//! anti-cells in alternating row blocks (§5.1.1), so even *writing a test
//! pattern* requires first learning which rows invert data.
//!
//! Run with: `cargo run --release --example reverse_engineer_chip`

use beer::prelude::*;

fn main() {
    // An LPDDR4-like chip, shrunk for a fast demonstration: 32-bit words,
    // alternating true/anti blocks every 32 rows.
    let config = ChipConfig {
        cell_layout: CellLayout::AlternatingBlocks {
            block_rows: vec![32],
        },
        ..ChipConfig::lpddr4_like(Manufacturer::C, 1, 0xC44)
            .with_geometry(Geometry::new(1, 128, 256))
            .with_word_bytes(4)
    };
    let mut chip = SimChip::new(config);
    println!(
        "chip under test: manufacturer C, {} x {}-bit words, {} rows",
        chip.num_words(),
        chip.k(),
        chip.geometry().total_rows()
    );

    // ---------------------------------------------------------------
    // §5.1.1 + §5.1.2: reverse engineer the cell and dataword layouts.
    // ---------------------------------------------------------------
    println!("\n[1] probing cell + dataword layout (§5.1.1, §5.1.2)...");
    let knowledge = ChipKnowledge::probe(&mut chip, 4, 4.0 * 3600.0)
        .expect("layout probe failed to decide");
    let anti_rows = knowledge
        .row_cell_types
        .iter()
        .filter(|&&t| t == CellType::Anti)
        .count();
    println!(
        "    cell layout: {anti_rows}/{} anti-cell rows detected",
        knowledge.row_cell_types.len()
    );
    println!("    word layout: {:?}", knowledge.word_layout);

    // ---------------------------------------------------------------
    // §5.1.3: collect the miscorrection profile across a tREFW sweep.
    // ---------------------------------------------------------------
    println!("\n[2] collecting miscorrection profile (§5.1.3)...");
    let patterns = PatternSet::One.patterns(chip.k());
    let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
    let totals = profile.per_bit_totals();
    println!(
        "    {} miscorrections over {} patterns",
        totals.iter().sum::<u64>(),
        patterns.len()
    );

    // ---------------------------------------------------------------
    // §5.2: threshold filter.
    // ---------------------------------------------------------------
    let constraints = profile.to_constraints(&ThresholdFilter::default());
    println!(
        "\n[3] thresholded profile: {} facts, {} positive",
        constraints.definite_facts(),
        constraints.miscorrection_facts()
    );

    // ---------------------------------------------------------------
    // §5.3: SAT solve + uniqueness check.
    // ---------------------------------------------------------------
    println!("\n[4] solving for the ECC function (§5.3)...");
    let report = solve_profile(
        chip.k(),
        hamming::parity_bits_for(chip.k()),
        &constraints,
        &BeerSolverOptions::default(),
    );
    println!(
        "    {} solution(s); determine {:?}, total {:?}, {} vars / {} clauses",
        report.solutions.len(),
        report.determine_time,
        report.total_time,
        report.num_vars,
        report.num_clauses
    );

    // ---------------------------------------------------------------
    // Validation against ground truth (simulation-only luxury), plus the
    // paper's §5.1.3 EINSim-style cross-check: the recovered function's
    // *analytic* profile must reproduce what we measured.
    // ---------------------------------------------------------------
    let truth = chip.reveal_code();
    let hit = report.solutions.iter().find(|s| equivalent(s, truth));
    match hit {
        Some(found) => {
            println!("\n[5] ground truth check: MATCH");
            let cross = analytic_profile(found, &patterns);
            let disagreements = constraints.disagreements(&cross);
            println!(
                "    EINSim cross-check: {} disagreements between measured and simulated profiles",
                disagreements.len()
            );
        }
        None => println!("\n[5] ground truth check: MISMATCH"),
    }
}
