//! A live cluster metrics dashboard: launch a two-node cluster
//! in-process, push a mixed workload through it (including a submit
//! that crosses nodes via the forward path), then poll every node's
//! wire-v4 `QueryMetrics` surface and render the merged view —
//! per-stage pipeline histograms, queue-wait quantiles, tenant
//! counters, and the flight-recorder tail whose trace ids stitch the
//! forwarded job across both nodes.
//!
//! ```text
//! cargo run --release --example cluster_dashboard
//! ```

use beer::cluster::Cluster;
use beer::net::{Client, Ring};
use beer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

/// A trace whose fingerprint the named ring member owns.
fn trace_owned_by(ring: &Ring, name: &str) -> ProfileTrace {
    for seed in 0..64 {
        let code = hamming::random_sec(8, &mut StdRng::seed_from_u64(seed));
        let trace = record_trace(&code);
        if ring.owner(trace.fingerprint()).name == name {
            return trace;
        }
    }
    panic!("no trace owned by {name} in 64 tries");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start_service = || {
        RecoveryService::start(ServiceConfig::new().with_workers(2))
            .map(Arc::new)
            .expect("start service")
    };
    let cluster = Cluster::launch(vec![start_service(), start_service()])?;
    println!(
        "cluster up: epoch {}, {} members\n",
        cluster.ring().epoch(),
        cluster.ring().members().len()
    );

    // A workload that exercises every instrumented path: a job owned by
    // each node submitted directly, plus one deliberately submitted to
    // the NON-owner so it rides the forward path — its trace id will
    // appear in both nodes' flight recorders below.
    let owned_by_0 = trace_owned_by(cluster.ring(), "node-0");
    let owned_by_1 = trace_owned_by(cluster.ring(), "node-1");

    let mut direct = Client::connect(cluster.addrs()[1].clone(), "acme", "")?;
    let job = direct.submit(&owned_by_1)?;
    let _ = direct.wait(job)?;

    let mut forwarder = Client::connect(cluster.addrs()[1].clone(), "acme", "")?;
    forwarder.upload_trace(&owned_by_0)?;
    let forwarded = forwarder.submit(&owned_by_0)?;
    let trace_id = forwarded.trace_id.expect("v4 submits carry a trace id");
    let _ = forwarder.wait(forwarded)?;
    // A repeat of the same profile: answered from the owner's cache.
    let repeat = forwarder.submit(&owned_by_0)?;
    let _ = forwarder.wait(repeat)?;
    println!(
        "workload done; the forwarded job's trace id is {trace_id:032x} — \
         look for it on BOTH nodes below\n"
    );

    // The dashboard: poll every node's metrics exposition over the wire
    // and render them side by side.
    for node in cluster.nodes() {
        let mut poller = Client::connect(node.addr(), "dashboard", "")?;
        let text = poller.query_metrics(16)?;
        println!(
            "=== {} ({}) — wire v{}",
            node.name,
            node.addr(),
            poller.version()
        );
        for line in text.lines() {
            // The full exposition is verbose; a dashboard shows the
            // series that answer "where does the time go".
            let interesting = line.starts_with("histogram pipeline_")
                || line.starts_with("histogram service_")
                || line.starts_with("histogram net_")
                || line.starts_with("counter tenant_")
                || line.starts_with("flight ");
            if interesting {
                println!("  {line}");
            }
        }
        println!();
    }

    cluster.shutdown(Duration::from_secs(2));
    println!("dashboard complete: both nodes reported trace {trace_id:032x}");
    Ok(())
}
