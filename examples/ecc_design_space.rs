//! §7.2.1: informing secondary-ECC design with recovered functions.
//!
//! Different on-die ECC functions reshape the *post-correction* error
//! distribution in function-specific ways even when the underlying raw
//! errors are identical (Figure 1). A system architect adding rank-level
//! ECC wants to know which data bits each on-die function makes
//! error-prone, so protection can be weighted accordingly (§7.2.1).
//!
//! The architect does not get the vendors' functions on a datasheet: a
//! [`RecoveryFleet`] first recovers all three concurrently — one
//! [`RecoverySession`] per manufacturer's chip model, over a shared
//! thread budget, with deterministic per-member results. The example then
//! simulates the same uniform-random raw errors through each *recovered*
//! function, prints the per-bit miscorrection distribution each induces,
//! and derives the asymmetric-protection hint.
//!
//! Run with: `cargo run --release --example ecc_design_space`

use beer::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let k = 32;
    let words = 400_000u64;
    let ber = 2e-2;
    let data = BitVec::ones(k); // the paper's 0xFF pattern

    // ------------------------------------------------------------------
    // Fleet recovery: one session per manufacturer, run concurrently.
    // ------------------------------------------------------------------
    let members: Vec<FleetMember> = Manufacturer::ALL
        .iter()
        .map(|&m| {
            FleetMember::new(
                format!("manufacturer {m}"),
                Box::new(AnalyticBackend::new(vendor_code(m, k, 0))),
            )
        })
        .collect();
    let fleet = RecoveryConfig::new().with_chunked_schedule(64).fleet();
    let outcomes = fleet.run(members);
    println!(
        "recovered {} on-die ECC functions concurrently via RecoveryFleet\n",
        outcomes.len()
    );

    println!("workload: {words} words, uniform-random raw errors at BER {ber:e}, 0xFF data\n");

    let mut most_skewed: Option<(Manufacturer, f64)> = None;
    for (m, outcome) in Manufacturer::ALL.iter().zip(&outcomes) {
        let report = outcome
            .result
            .as_ref()
            .expect("analytic fleets cannot fail");
        let code = code_from_outcome(&report.outcome).expect("vendor codes recover uniquely");
        let cfg = SimConfig {
            words,
            model: ErrorModel::UniformRandom { ber },
        };
        let mut rng = SmallRng::seed_from_u64(42);
        let stats = simulate(code, &data, &cfg, &mut rng);
        let shares = stats.miscorrection_shares();

        // A simple skew metric: max/mean share.
        let mean = 1.0 / k as f64;
        let max = shares.iter().cloned().fold(0.0, f64::max);
        let skew = max / mean;
        println!(
            "{} (({}, {}) code, recovered in {} round(s)):",
            outcome.label,
            code.n(),
            code.k(),
            report.stats.rounds
        );
        println!(
            "   miscorrected words: {} / {} with raw errors",
            stats.miscorrected_words, stats.words_with_pre_errors
        );
        print!("   per-bit miscorrection share: ");
        for (bit, s) in shares.iter().enumerate() {
            if bit % 8 == 0 {
                print!("\n      bits {bit:>2}..{:>2}: ", bit + 7);
            }
            print!("{:>5.3} ", s);
        }
        println!();
        let mut hot: Vec<(usize, f64)> = shares.iter().cloned().enumerate().collect();
        hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let hot_bits: Vec<usize> = hot.iter().take(4).map(|&(b, _)| b).collect();
        println!("   skew (max/mean): {skew:.2}; most miscorrection-prone bits: {hot_bits:?}\n");
        if most_skewed.is_none_or(|(_, s)| skew > s) {
            most_skewed = Some((*m, skew));
        }
    }

    if let Some((m, skew)) = most_skewed {
        println!(
            "design hint: function {m} concentrates miscorrections the most\n\
             ({skew:.2}x the uniform share). A rank-level ECC layered on a chip\n\
             with this on-die function should bias its protection toward the\n\
             hot bits listed above (§7.2.1); with an unknown on-die function\n\
             none of this structure would be visible."
        );
    }
}
