//! Quickstart: recover a hidden on-die ECC function end to end.
//!
//! Builds a simulated DRAM chip whose on-die ECC function is "secret",
//! runs the three BEER steps against its external interface only, and
//! checks the recovered parity-check matrix against the ground truth
//! (something the paper's authors could not do on real chips — §6.1
//! explains why simulation is the only place this check is possible).
//!
//! Run with: `cargo run --release --example quickstart`

use beer::prelude::*;

fn main() {
    // A small chip with 32-bit datawords. In the paper's setting this
    // would be a real LPDDR4 part with 128-bit words; the methodology is
    // identical (and `reverse_engineer_chip.rs` runs the full pipeline on
    // an LPDDR4-like configuration).
    let chip = SimChip::new(ChipConfig::small_test_chip(0xC0FFEE));
    println!(
        "chip: {} datawords x {} bits (+{} hidden parity bits)",
        chip.num_words(),
        chip.k(),
        chip.n() - chip.k()
    );
    let secret = chip.reveal_code().clone();
    let k = chip.k();

    // ------------------------------------------------------------------
    // Step 1: induce miscorrections with 1-CHARGED test patterns across a
    // refresh-window sweep (§5.1), sharded over worker threads by the
    // profiling engine.
    // ------------------------------------------------------------------
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    let patterns = PatternSet::One.patterns(k);
    println!("step 1: testing {} patterns...", patterns.len());
    let profile = collect_with(
        &mut backend,
        &patterns,
        &CollectionPlan::quick(),
        &EngineOptions::default(),
    );
    let observations: u64 = profile.per_bit_totals().iter().sum();
    println!("        observed {observations} miscorrections");

    // ------------------------------------------------------------------
    // Step 2: threshold-filter the observations (§5.2).
    // ------------------------------------------------------------------
    let constraints = profile.to_constraints(&ThresholdFilter::default());
    println!(
        "step 2: {} definite facts ({} positive)",
        constraints.definite_facts(),
        constraints.miscorrection_facts()
    );

    // ------------------------------------------------------------------
    // Step 3: solve for the ECC function and check uniqueness (§5.3).
    // ------------------------------------------------------------------
    let report = solve_profile(
        k,
        hamming::parity_bits_for(k),
        &constraints,
        &BeerSolverOptions::default(),
    )
    .expect("well-formed constraints");
    println!(
        "step 3: {} solution(s) in {:?} (determine: {:?})",
        report.solutions.len(),
        report.total_time,
        report.determine_time,
    );

    // Ground-truth validation (possible only in simulation).
    let truth = &secret;
    match report.solutions.iter().find(|s| equivalent(s, truth)) {
        Some(found) => {
            println!("\nrecovered parity-check sub-matrix P (canonical form):");
            println!("{}", canonicalize(found).parity_submatrix());
            println!("\nSUCCESS: recovered function matches the chip's secret ECC");
        }
        None => println!("\nFAILURE: recovered function does not match ground truth"),
    }
    if report.is_unique() {
        println!("uniqueness: the profile admits exactly this one function");
    } else {
        println!(
            "uniqueness: {} candidate functions (try PatternSet::OneTwo)",
            report.solutions.len()
        );
    }
}
