//! Quickstart: recover a hidden on-die ECC function end to end.
//!
//! Builds a simulated DRAM chip whose on-die ECC function is "secret",
//! runs the whole BEER pipeline through one [`RecoverySession`], and
//! checks the recovered parity-check matrix against the ground truth
//! (something the paper's authors could not do on real chips — §6.1
//! explains why simulation is the only place this check is possible).
//!
//! Run with: `cargo run --release --example quickstart`

use beer::prelude::*;

fn main() {
    // A small chip with 32-bit datawords. In the paper's setting this
    // would be a real LPDDR4 part with 128-bit words; the methodology is
    // identical (and `reverse_engineer_chip.rs` runs the full pipeline on
    // an LPDDR4-like configuration).
    let chip = SimChip::new(ChipConfig::small_test_chip(0xC0FFEE));
    println!(
        "chip: {} datawords x {} bits (+{} hidden parity bits)",
        chip.num_words(),
        chip.k(),
        chip.n() - chip.k()
    );
    let secret = chip.reveal_code().clone();

    // The experimenter's knowledge: dataword layout and cell types (here
    // assumed; `reverse_engineer_chip.rs` probes both from scratch).
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);

    // One typed entry point for the whole pipeline: the config owns the
    // pattern schedule, collection plan, threshold filter, and solver
    // options; the session interleaves collection and solving (§6.3) and
    // reports progress through typed events instead of ad-hoc printing.
    let config = RecoveryConfig::new()
        .with_parity_bits(secret.parity_bits())
        .with_pattern_family(PatternSet::One);
    let report = config
        .session(&mut backend)
        .with_observer(|event| match event {
            RecoveryEvent::BatchCollected {
                patterns,
                observations,
                ..
            } => println!("step 1: {patterns} patterns tested, {observations} miscorrections"),
            RecoveryEvent::FactsPushed {
                new_facts,
                pinned_vars,
                ..
            } => println!("step 2: {new_facts} definite facts ({pinned_vars} variables pinned)"),
            RecoveryEvent::CheckCompleted {
                solutions, elapsed, ..
            } => println!("step 3: {solutions} solution(s) in {elapsed:?}"),
            RecoveryEvent::CounterexampleRepaired { pairs, .. } => {
                println!("        ({pairs} distinctness counterexamples repaired)")
            }
        })
        .run_to_completion()
        .expect("simulated chips cannot fail collection");

    // Ground-truth validation (possible only in simulation).
    match &report.outcome {
        RecoveryOutcome::Unique(code) => {
            println!("\nrecovered parity-check sub-matrix P (canonical form):");
            println!("{}", canonicalize(code).parity_submatrix());
            if equivalent(code, &secret) {
                println!("SUCCESS: recovered function matches the chip's secret ECC");
            } else {
                println!("FAILURE: unique function does not match ground truth");
            }
            println!("uniqueness: the profile admits exactly this one function");
        }
        RecoveryOutcome::Ambiguous {
            count, witnesses, ..
        } => {
            match witnesses.iter().find(|s| equivalent(s, &secret)) {
                Some(_) => println!("\nthe secret function is among the candidates"),
                None => println!("\nFAILURE: no candidate matches ground truth"),
            }
            println!("uniqueness: {count} candidate functions (try PatternSet::OneTwo)");
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }
}
