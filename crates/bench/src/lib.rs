//! Shared infrastructure for the experiment harness.
//!
//! Every bench target regenerates one table or figure of the BEER paper
//! (see DESIGN.md §5 for the index): it prints the paper's rows/series to
//! stdout and writes a CSV artifact into `bench_results/`.
//!
//! Set `BEER_BENCH_SCALE=paper` for paper-scale sample sizes (slow) or
//! leave the default `quick` scale for minute-scale runs that preserve the
//! shape of every result.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Sample-size scale of a harness run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Minute-scale runs preserving every qualitative shape.
    Quick,
    /// Paper-scale sample sizes.
    Paper,
}

impl Scale {
    /// Reads `BEER_BENCH_SCALE` (default `quick`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value.
    pub fn from_env() -> Self {
        match std::env::var("BEER_BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("quick") | Err(_) => Scale::Quick,
            Ok(other) => panic!("unknown BEER_BENCH_SCALE {other:?} (quick|paper)"),
        }
    }

    /// Picks between the quick and paper variants of a parameter.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Prints the standard harness banner for an experiment.
pub fn banner(id: &str, title: &str, paper_expectation: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_expectation}");
    println!("scale: {:?}", Scale::from_env());
    println!("================================================================");
}

/// A CSV artifact accumulating rows; written under `bench_results/`.
pub struct CsvArtifact {
    name: String,
    content: String,
}

impl CsvArtifact {
    /// Starts an artifact with a header row.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let mut content = String::new();
        let _ = writeln!(content, "{}", header.join(","));
        CsvArtifact {
            name: name.to_string(),
            content,
        }
    }

    /// Appends one row.
    pub fn row(&mut self, fields: &[String]) {
        let _ = writeln!(self.content, "{}", fields.join(","));
    }

    /// Convenience: appends a row of displayable fields.
    pub fn row_display<T: std::fmt::Display>(&mut self, fields: &[T]) {
        let strings: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        self.row(&strings);
    }

    /// Writes the artifact to `bench_results/<name>.csv` (relative to the
    /// workspace root if invoked via cargo, else the current directory).
    pub fn write(&self) -> PathBuf {
        let dir = workspace_dir().join("bench_results");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.csv", self.name));
        if let Err(e) = std::fs::write(&path, &self.content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[artifact] {}", path.display());
        }
        path
    }
}

fn workspace_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench; the workspace root is two
    // levels up. Fall back to the current directory outside cargo.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

/// Renders a count matrix as a compact ASCII heat map with log intensity
/// (used for the Figure 3 profile plots).
pub fn ascii_heatmap(matrix: &[Vec<u64>], max_rows: usize, max_cols: usize) -> String {
    const SHADES: [char; 6] = [' ', '.', ':', '*', '%', '#'];
    if matrix.is_empty() {
        return String::new();
    }
    let rows = matrix.len();
    let cols = matrix[0].len();
    let row_bin = rows.div_ceil(max_rows).max(1);
    let col_bin = cols.div_ceil(max_cols).max(1);
    let mut bins: Vec<Vec<u64>> = Vec::new();
    for r0 in (0..rows).step_by(row_bin) {
        let mut row = Vec::new();
        for c0 in (0..cols).step_by(col_bin) {
            let mut sum = 0u64;
            for matrix_row in &matrix[r0..(r0 + row_bin).min(rows)] {
                sum += matrix_row[c0..(c0 + col_bin).min(cols)].iter().sum::<u64>();
            }
            row.push(sum);
        }
        bins.push(row);
    }
    let max = bins.iter().flatten().copied().max().unwrap_or(0).max(1);
    let log_max = (max as f64).ln_1p();
    let mut out = String::new();
    for row in &bins {
        for &v in row {
            let idx = if v == 0 {
                0
            } else {
                let t = (v as f64).ln_1p() / log_max;
                1 + ((t * (SHADES.len() - 2) as f64).round() as usize).min(SHADES.len() - 2)
            };
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

/// Formats a `Duration` compactly for tables.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// Formats a byte count compactly.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn heatmap_shapes() {
        let m = vec![vec![0, 1, 10, 100]; 4];
        let art = ascii_heatmap(&m, 2, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(std::time::Duration::from_micros(50)), "50.0us");
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(20)),
            "20.00ms"
        );
        assert_eq!(fmt_duration(std::time::Duration::from_secs(5)), "5.00s");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }

    #[test]
    fn csv_accumulates() {
        let mut c = CsvArtifact::new("test", &["a", "b"]);
        c.row_display(&[1, 2]);
        assert!(c.content.contains("a,b"));
        assert!(c.content.contains("1,2"));
    }
}
