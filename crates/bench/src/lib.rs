//! Shared infrastructure for the experiment harness.
//!
//! Every bench target regenerates one table or figure of the BEER paper
//! (see DESIGN.md §5 for the index): it prints the paper's rows/series to
//! stdout and writes a CSV artifact into `bench_results/`.
//!
//! Set `BEER_BENCH_SCALE=paper` for paper-scale sample sizes (slow) or
//! leave the default `quick` scale for minute-scale runs that preserve the
//! shape of every result.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Sample-size scale of a harness run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Second-scale CI smoke runs: just enough samples to catch encoding
    /// regressions, no statistical claims.
    Smoke,
    /// Minute-scale runs preserving every qualitative shape.
    Quick,
    /// Paper-scale sample sizes.
    Paper,
}

impl Scale {
    /// Reads `BEER_BENCH_SCALE` (default `quick`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value.
    pub fn from_env() -> Self {
        match std::env::var("BEER_BENCH_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("paper") => Scale::Paper,
            Ok("quick") | Err(_) => Scale::Quick,
            Ok(other) => panic!("unknown BEER_BENCH_SCALE {other:?} (smoke|quick|paper)"),
        }
    }

    /// Picks between the quick and paper variants of a parameter (smoke
    /// runs use the quick variant unless the bench opts in via
    /// [`Scale::pick3`]).
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Smoke | Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// Picks between explicit smoke, quick, and paper variants.
    pub fn pick3<T>(self, smoke: T, quick: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Prints the standard harness banner for an experiment.
pub fn banner(id: &str, title: &str, paper_expectation: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_expectation}");
    println!("scale: {:?}", Scale::from_env());
    println!("================================================================");
}

/// A CSV artifact accumulating rows; written under `bench_results/` both
/// as `<name>.csv` and as a machine-readable `<name>.json` summary (an
/// object with the bench name, scale, metadata such as wall-clock time,
/// and one JSON object per row).
pub struct CsvArtifact {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    meta: Vec<(String, String)>,
}

impl CsvArtifact {
    /// Starts an artifact with a header row.
    pub fn new(name: &str, header: &[&str]) -> Self {
        CsvArtifact {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            // Read the env var leniently: artifact construction must not
            // panic (and must not lie) under an odd test environment.
            meta: vec![(
                "scale".to_string(),
                std::env::var("BEER_BENCH_SCALE").unwrap_or_else(|_| "quick".to_string()),
            )],
        }
    }

    /// Appends one row.
    pub fn row(&mut self, fields: &[String]) {
        self.rows.push(fields.to_vec());
    }

    /// Convenience: appends a row of displayable fields.
    pub fn row_display<T: std::fmt::Display>(&mut self, fields: &[T]) {
        let strings: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        self.row(&strings);
    }

    /// Attaches a metadata entry to the JSON summary (e.g. wall-clock
    /// seconds, CNF size, code length).
    pub fn meta<T: std::fmt::Display>(&mut self, key: &str, value: T) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// The CSV rendering of the artifact.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// The JSON rendering of the artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        for (k, v) in &self.meta {
            let _ = writeln!(out, "  {}: {},", json_string(k), json_value(v));
        }
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = self
                .header
                .iter()
                .zip(row)
                .map(|(h, v)| format!("{}: {}", json_string(h), json_value(v)))
                .collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    {{{}}}{comma}", fields.join(", "));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the artifact to `bench_results/<name>.csv` and
    /// `bench_results/<name>.json` (relative to the workspace root if
    /// invoked via cargo, else the current directory). Returns the CSV
    /// path.
    pub fn write(&self) -> PathBuf {
        let dir = workspace_dir().join("bench_results");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.csv", self.name));
        for (p, content) in [
            (path.clone(), self.to_csv()),
            (dir.join(format!("{}.json", self.name)), self.to_json()),
        ] {
            if let Err(e) = std::fs::write(&p, &content) {
                eprintln!("warning: could not write {}: {e}", p.display());
            } else {
                println!("[artifact] {}", p.display());
            }
        }
        path
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a field as a bare JSON number when it already *is* one by the
/// JSON grammar (so `1.250` stays a number run after run, while `007`,
/// `NaN`, and `1-CHARGED` stay strings), else as a string.
fn json_value(s: &str) -> String {
    if is_json_number(s) {
        s.to_string()
    } else {
        json_string(s)
    }
}

/// Exactly the JSON number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?`
/// with an optional exponent.
fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') {
        i += 1;
    }
    // Integer part: 0, or a nonzero digit followed by digits.
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(i).is_some_and(|c| c.is_ascii_digit()) {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        let start = i;
        while b.get(i).is_some_and(|c| c.is_ascii_digit()) {
            i += 1;
        }
        if i == start {
            return false;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let start = i;
        while b.get(i).is_some_and(|c| c.is_ascii_digit()) {
            i += 1;
        }
        if i == start {
            return false;
        }
    }
    i == b.len()
}

fn workspace_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench; the workspace root is two
    // levels up. Fall back to the current directory outside cargo.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

/// Renders a count matrix as a compact ASCII heat map with log intensity
/// (used for the Figure 3 profile plots).
pub fn ascii_heatmap(matrix: &[Vec<u64>], max_rows: usize, max_cols: usize) -> String {
    const SHADES: [char; 6] = [' ', '.', ':', '*', '%', '#'];
    if matrix.is_empty() {
        return String::new();
    }
    let rows = matrix.len();
    let cols = matrix[0].len();
    let row_bin = rows.div_ceil(max_rows).max(1);
    let col_bin = cols.div_ceil(max_cols).max(1);
    let mut bins: Vec<Vec<u64>> = Vec::new();
    for r0 in (0..rows).step_by(row_bin) {
        let mut row = Vec::new();
        for c0 in (0..cols).step_by(col_bin) {
            let mut sum = 0u64;
            for matrix_row in &matrix[r0..(r0 + row_bin).min(rows)] {
                sum += matrix_row[c0..(c0 + col_bin).min(cols)].iter().sum::<u64>();
            }
            row.push(sum);
        }
        bins.push(row);
    }
    let max = bins.iter().flatten().copied().max().unwrap_or(0).max(1);
    let log_max = (max as f64).ln_1p();
    let mut out = String::new();
    for row in &bins {
        for &v in row {
            let idx = if v == 0 {
                0
            } else {
                let t = (v as f64).ln_1p() / log_max;
                1 + ((t * (SHADES.len() - 2) as f64).round() as usize).min(SHADES.len() - 2)
            };
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

/// Formats a `Duration` compactly for tables.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// Formats a byte count compactly.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
        assert_eq!(Scale::Smoke.pick(1, 2), 1, "smoke falls back to quick");
        assert_eq!(Scale::Smoke.pick3(0, 1, 2), 0);
        assert_eq!(Scale::Quick.pick3(0, 1, 2), 1);
        assert_eq!(Scale::Paper.pick3(0, 1, 2), 2);
    }

    #[test]
    fn heatmap_shapes() {
        let m = vec![vec![0, 1, 10, 100]; 4];
        let art = ascii_heatmap(&m, 2, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(std::time::Duration::from_micros(50)), "50.0us");
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(20)),
            "20.00ms"
        );
        assert_eq!(fmt_duration(std::time::Duration::from_secs(5)), "5.00s");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }

    #[test]
    fn csv_accumulates() {
        let mut c = CsvArtifact::new("test", &["a", "b"]);
        c.row_display(&[1, 2]);
        let csv = c.to_csv();
        assert!(csv.contains("a,b"));
        assert!(csv.contains("1,2"));
    }

    #[test]
    fn json_summary_has_name_meta_and_typed_rows() {
        let mut c = CsvArtifact::new("fig_test", &["k", "label", "wall_us"]);
        c.row_display(&["8".to_string(), "hi \"x\"".to_string(), "12.5".to_string()]);
        c.row_display(&[16, 0, 3]);
        c.meta("wall_clock_s", "1.25");
        let json = c.to_json();
        assert!(json.contains("\"name\": \"fig_test\""));
        assert!(json.contains("\"wall_clock_s\": 1.25"));
        assert!(json.contains("\"k\": 8"), "integers stay numbers: {json}");
        assert!(json.contains("\"wall_us\": 12.5"), "floats stay numbers");
        assert!(json.contains("\\\"x\\\""), "strings are escaped");
        assert!(json.contains("\"scale\""));
    }

    #[test]
    fn json_value_round_trip_rules() {
        assert_eq!(json_value("42"), "42");
        assert_eq!(json_value("-3.5"), "-3.5");
        assert_eq!(
            json_value("1.250"),
            "1.250",
            "trailing zeros stay numbers run after run"
        );
        assert_eq!(json_value("1e-3"), "1e-3");
        assert_eq!(
            json_value("007"),
            "\"007\"",
            "leading zeros are not JSON numbers"
        );
        assert_eq!(json_value("1."), "\"1.\"");
        assert_eq!(json_value("1-CHARGED"), "\"1-CHARGED\"");
        assert_eq!(json_value("NaN"), "\"NaN\"");
    }
}
