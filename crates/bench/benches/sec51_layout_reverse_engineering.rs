//! §5.1.1 / §5.1.2: reverse engineering the cell layout and the dataword
//! layout of chips from all three manufacturers.
//!
//! Expected results (paper): manufacturers A and B use exclusively
//! true-cells; C uses 50/50 true/anti-cells in alternating row blocks; all
//! three map two byte-interleaved 16-byte ECC words per 32-byte region.

use beer_bench::{banner, CsvArtifact, Scale};
use beer_core::layout_probe::{probe_cell_layout, probe_word_layout};
use beer_dram::{CellLayout, CellType, ChipConfig, DramInterface, Geometry, SimChip, WordLayout};
use beer_ecc::design::Manufacturer;

fn main() {
    let scale = Scale::from_env();
    banner(
        "sec5.1",
        "cell-layout and dataword-layout reverse engineering",
        "A/B all-true; C alternating blocks; byte-interleaved word pairs",
    );
    let k_bytes = scale.pick(4, 16);
    let geometry = scale.pick(Geometry::new(1, 192, 256), Geometry::new(2, 1024, 1024));
    let probe_trefw = 4.0 * 3600.0;
    let block = scale.pick(32usize, 800);

    let mut csv = CsvArtifact::new(
        "sec51_layout_reverse_engineering",
        &[
            "manufacturer",
            "anti_rows_detected",
            "anti_rows_true",
            "word_layout",
            "violations",
            "observations",
        ],
    );

    let mut all_good = true;
    for m in Manufacturer::ALL {
        let cell_layout = match m {
            Manufacturer::A | Manufacturer::B => CellLayout::AllTrue,
            Manufacturer::C => CellLayout::AlternatingBlocks {
                block_rows: vec![block],
            },
        };
        let config = ChipConfig {
            cell_layout: cell_layout.clone(),
            ..ChipConfig::lpddr4_like(m, 0, 0x51 + m as u64)
                .with_geometry(geometry)
                .with_word_bytes(k_bytes)
        };
        let mut chip = SimChip::new(config);
        let rows = chip.geometry().total_rows();

        // §5.1.1: cell types per row.
        let detected = probe_cell_layout(&mut chip, probe_trefw);
        let detected_anti = detected.iter().filter(|&&t| t == CellType::Anti).count();
        let true_anti = (0..rows)
            .filter(|&r| cell_layout.cell_type_of_row(r) == CellType::Anti)
            .count();
        let misclassified = (0..rows)
            .filter(|&r| detected[r] != cell_layout.cell_type_of_row(r))
            .count();

        // §5.1.2: dataword layout.
        let candidates = [
            WordLayout::InterleavedPairs {
                word_bytes: k_bytes,
            },
            WordLayout::Contiguous {
                word_bytes: k_bytes,
            },
        ];
        let probe = probe_word_layout(&mut chip, &detected, &candidates, probe_trefw);
        let decided = probe.decided();

        println!("manufacturer {m}:");
        println!(
            "  cell layout: {detected_anti}/{rows} anti rows detected (truth {true_anti}; {misclassified} rows misclassified)"
        );
        println!(
            "  word layout: {:?} ({} observations, violations {:?})",
            decided, probe.observations, probe.violations
        );
        let ok = misclassified == 0
            && decided
                == Some(WordLayout::InterleavedPairs {
                    word_bytes: k_bytes,
                });
        all_good &= ok;
        println!("  => {}", if ok { "MATCH" } else { "MISMATCH" });
        csv.row_display(&[
            m.to_string(),
            detected_anti.to_string(),
            true_anti.to_string(),
            format!("{decided:?}").replace(',', ";"),
            format!("{:?}", probe.violations).replace(',', ";"),
            probe.observations.to_string(),
        ]);
    }
    csv.write();

    println!(
        "\nshape {}: layouts recovered {}",
        if all_good { "HOLDS" } else { "VIOLATED" },
        if all_good { "exactly" } else { "with errors" }
    );
}
