//! Table 2: the miscorrection profile of the Equation 1 (7,4) Hamming code
//! for all four 1-CHARGED test patterns.
//!
//! Expected rows (paper): only pattern 0 (CHARGED bit 0) can produce
//! miscorrections, at bits 1, 2, and 3; patterns 1–3 produce none.

use beer_bench::{banner, CsvArtifact};
use beer_core::analytic::analytic_profile;
use beer_core::pattern::PatternSet;
use beer_core::Observation;
use beer_ecc::hamming;

fn main() {
    banner(
        "tab2",
        "miscorrection profile of the Eq. 1 (7,4) code",
        "pattern 0 -> miscorrections at bits 1,2,3; patterns 1-3 -> none",
    );
    let code = hamming::eq1_code();
    let patterns = PatternSet::One.patterns(4);
    let profile = analytic_profile(&code, &patterns);

    let mut csv = CsvArtifact::new(
        "tab02_miscorrection_profile",
        &["pattern_charged_bit", "bit0", "bit1", "bit2", "bit3"],
    );
    println!("(rows in the paper's order: pattern ID = CHARGED bit index, descending)\n");
    println!("{:<26} possible miscorrections", "1-CHARGED pattern");
    for (pattern, obs) in profile.entries.iter().rev() {
        let cells: Vec<String> = obs
            .iter()
            .map(|o| {
                match o {
                    Observation::Miscorrection => "1",
                    Observation::NoMiscorrection => "-",
                    Observation::Unknown => "?",
                }
                .to_string()
            })
            .collect();
        println!("{:<26} [{}]", pattern.to_string(), cells.join(" "));
        let mut row = vec![pattern.bits()[0].to_string()];
        row.extend(cells);
        csv.row(&row);
    }
    csv.write();

    // Assert the exact Table 2 content.
    assert_eq!(
        profile.entries[0].1,
        vec![
            Observation::Unknown,
            Observation::Miscorrection,
            Observation::Miscorrection,
            Observation::Miscorrection
        ]
    );
    for pi in 1..4 {
        assert!(profile.entries[pi]
            .1
            .iter()
            .all(|&o| o != Observation::Miscorrection));
    }
    println!("\nshape HOLDS: matches Table 2 exactly");
}
