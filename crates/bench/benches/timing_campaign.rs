//! Simulated campaign cost under cycle-accurate timing: cost-aware
//! pattern scheduling vs. a naive family order.
//!
//! Every collection round costs the same simulated DRAM time (the plan's
//! refresh-window sweep, priced by executing it on a scratch
//! `beer_timing` controller), so a campaign's simulated cost is
//! `rounds × round_cost` — the scheduler earns its keep purely by
//! reaching uniqueness in fewer rounds. The naive order runs the
//! facts-poor families first (ALL-charged, then checkerboard, leaving
//! 1-CHARGED last); `PatternSchedule::cost_aware` ranks families by
//! projected facts per simulated second and front-loads the facts-rich
//! ones, so the campaign converges before paying for the cheap-looking
//! but uninformative rounds.
//!
//! Artifact: per refresh window × temperature trial-cost breakdown, plus
//! naive/cost-aware campaign totals and their ratio (gated in CI by
//! `ci/check_timing_campaign.py` — cost-aware must keep beating naive).

use beer_bench::{banner, CsvArtifact, Scale};
use beer_core::collect::{ChipKnowledge, CollectionPlan};
use beer_core::{
    PatternSchedule, PatternSet, RecoveryConfig, ThresholdFilter, TimedChipBackend, TimedCostModel,
};
use beer_dram::{CellType, ChipConfig, DramInterface, Geometry, SimChip};
use beer_ecc::equivalence::equivalent;
use beer_timing::{trial_cost, ArrayGeometry, TimingParams};

/// BER targets of the refresh-window ladder (the quick plan's sweep).
const BER_TARGETS: [f64; 6] = [1e-3, 1e-2, 0.1, 0.25, 0.4, 0.499];

/// Naive "simple patterns first" family order the scheduler competes
/// against: facts-poor families lead.
const NAIVE_ORDER: [PatternSet; 3] = [PatternSet::All, PatternSet::Checkered, PatternSet::One];

const SEED: u64 = 0x7C_A1;

fn chip() -> SimChip {
    SimChip::new(ChipConfig::small_test_chip(SEED).with_geometry(Geometry::new(1, 128, 128)))
}

fn plan_at(chip: &SimChip, celsius: f64) -> CollectionPlan {
    CollectionPlan {
        trefw_schedule: BER_TARGETS
            .iter()
            .map(|&b| chip.config().retention.window_for_ber(b, celsius))
            .collect(),
        celsius,
        trials_per_step: 8,
    }
}

/// Runs one full recovery campaign under `schedule`, returning
/// `(rounds, simulated ns)`.
fn run_campaign(plan: &CollectionPlan, schedule: PatternSchedule) -> (usize, u64) {
    let c = chip();
    let secret = c.reveal_code().clone();
    let knowledge = ChipKnowledge::uniform(
        c.config().word_layout,
        CellType::True,
        c.geometry().total_rows(),
    );
    let mut backend =
        TimedChipBackend::with_params(Box::new(c), knowledge, TimingParams::ddr4_3200());
    // The simulator is noise-free: one observation is a real
    // miscorrection, and silence at this sampling depth is real absence.
    let report = RecoveryConfig::new()
        .with_parity_bits(secret.parity_bits())
        .with_filter(ThresholdFilter {
            min_count: 1,
            min_fraction: 0.0,
            min_trials: 1,
        })
        .with_plan(plan.clone())
        .with_schedule(schedule)
        .session(&mut backend)
        .run_to_completion()
        .expect("simulated chips cannot fail collection");
    assert!(
        report
            .outcome
            .unique_code()
            .is_some_and(|code| equivalent(code, &secret)),
        "campaign did not uniquely recover the planted code: {:?}",
        report.outcome
    );
    (report.stats.rounds, report.stats.dram_sim_ns)
}

fn main() {
    banner(
        "timing",
        "campaign cost: cost-aware vs naive pattern order",
        "same facts either way; cost-aware reaches uniqueness in fewer rounds, so fewer simulated hours",
    );
    let scale = Scale::from_env();
    let temperatures: &[f64] = scale.pick3(&[80.0], &[45.0, 80.0], &[45.0, 80.0]);

    let probe = chip();
    let k = probe.k();
    let params = TimingParams::ddr4_3200();
    let geom = ArrayGeometry::of_chip(&probe.geometry());
    let model = TimedCostModel::new(params, geom);

    let mut csv = CsvArtifact::new(
        "timing_campaign",
        &[
            "celsius",
            "target_ber",
            "window_s",
            "write_ms",
            "wait_ms",
            "read_ms",
            "trial_total_ms",
            "commands",
        ],
    );

    let mut worst_ratio = 0.0f64;
    for &celsius in temperatures {
        let plan = plan_at(&probe, celsius);

        // Per-window trial-cost breakdown: the same executed streams the
        // backend runs, priced on scratch controllers.
        println!("\n-- {celsius} °C: per-window trial cost --");
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>12} {:>14}",
            "target BER", "window s", "write ms", "wait ms", "read ms", "trial total ms"
        );
        for (&ber, &window) in BER_TARGETS.iter().zip(&plan.trefw_schedule) {
            let cost = trial_cost(&params, &geom, window);
            println!(
                "{ber:>10} {:>10.1} {:>12.3} {:>12.1} {:>12.3} {:>14.1}",
                cost.window_seconds,
                cost.write_ns as f64 / 1e6,
                cost.wait_ns as f64 / 1e6,
                cost.read_ns as f64 / 1e6,
                cost.total_ns() as f64 / 1e6,
            );
            csv.row_display(&[
                format!("{celsius}"),
                format!("{ber}"),
                format!("{:.3}", cost.window_seconds),
                format!("{:.3}", cost.write_ns as f64 / 1e6),
                format!("{:.3}", cost.wait_ns as f64 / 1e6),
                format!("{:.3}", cost.read_ns as f64 / 1e6),
                format!("{:.3}", cost.total_ns() as f64 / 1e6),
                format!("{}", cost.commands),
            ]);
        }

        // The scheduler's view of the family ranking.
        let (aware_schedule, cost_report) =
            PatternSchedule::cost_aware(&NAIVE_ORDER, k, &plan, &model);
        println!("\n-- {celsius} °C: cost-aware family ranking --");
        for est in &cost_report.families {
            println!(
                "    {:?}: {} patterns, {} projected facts, {:.1} facts/sim-h",
                est.family,
                est.patterns,
                est.projected_facts,
                est.facts_per_sim_second * 3600.0
            );
        }

        let naive_schedule =
            PatternSchedule::Batches(NAIVE_ORDER.iter().map(|f| f.patterns(k)).collect());
        let (naive_rounds, naive_ns) = run_campaign(&plan, naive_schedule);
        let (aware_rounds, aware_ns) = run_campaign(&plan, aware_schedule);
        let ratio = aware_ns as f64 / naive_ns as f64;
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "\n-- {celsius} °C: naive {naive_rounds} rounds = {:.2} sim h, \
             cost-aware {aware_rounds} rounds = {:.2} sim h (ratio {ratio:.3}) --",
            naive_ns as f64 / 3.6e12,
            aware_ns as f64 / 3.6e12,
        );
        csv.meta(&format!("naive_sim_ns_{celsius}"), naive_ns);
        csv.meta(&format!("aware_sim_ns_{celsius}"), aware_ns);
        csv.meta(&format!("naive_rounds_{celsius}"), naive_rounds);
        csv.meta(&format!("aware_rounds_{celsius}"), aware_rounds);
        csv.meta(&format!("ratio_{celsius}"), format!("{ratio:.6}"));
    }

    csv.meta("ratio", format!("{worst_ratio:.6}"));
    csv.write();

    println!(
        "\nshape {}",
        if worst_ratio < 1.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
