//! Service scale proof: jobs/sec and cache-hit latency under concurrent
//! multi-tenant load over `AnalyticBackend` profiles.
//!
//! Two modes per submitter count (1 / 8 / 64):
//!
//! * **dedup** — tenants submit recorded traces drawn from a small pool of
//!   distinct profiles (the paper's "manufacturers reuse a few ECC
//!   functions" scenario): in-flight duplicates coalesce, completed ones
//!   hit the registry cache, so throughput decouples from solver cost.
//! * **raw** — every job is a live `AnalyticBackend` source (opaque to
//!   dedup): each submission pays a full recovery, measuring the worker
//!   pool's solve throughput.
//!
//! A final section times submit→done latency for pure cache hits (p50 /
//! p99): the O(1) answer path a restarted service serves from history.

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::collect::CollectionPlan;
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::PatternSet;
use beer_core::trace::ProfileTrace;
use beer_ecc::{equivalence, hamming, LinearCode};
use beer_service::{JobRequest, RecoveryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalence::equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

struct RunStats {
    jobs: usize,
    wall: Duration,
    solves: usize,
    coalesced: u64,
    cache_hits: u64,
}

/// Drives `submitters` threads through `jobs_each` submissions and waits
/// for every job; panics on any unexpected outcome (the proof part).
fn drive(
    service: &Arc<RecoveryService>,
    submitters: usize,
    jobs_each: usize,
    codes: &[LinearCode],
    traces: &[ProfileTrace],
    raw: bool,
) -> RunStats {
    let before = service.stats();
    let start = Instant::now();
    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let service = Arc::clone(service);
            let codes = codes.to_vec();
            let traces = traces.to_vec();
            std::thread::spawn(move || {
                let tenant = format!("tenant-{s}");
                let ids: Vec<_> = (0..jobs_each)
                    .map(|j| {
                        let which = (s + j) % traces.len();
                        let request = if raw {
                            JobRequest::source(
                                &tenant,
                                "analytic",
                                Box::new(AnalyticBackend::new(codes[which].clone())),
                            )
                        } else {
                            JobRequest::trace(&tenant, traces[which].clone())
                        };
                        (which, service.submit(request).expect("admitted"))
                    })
                    .collect();
                for (which, id) in ids {
                    let output = service.wait(id).expect("clean profile solves");
                    let code = output.outcome.unique_code().expect("unique recovery");
                    assert!(
                        equivalence::equivalent(code, &codes[which]),
                        "service answer disagrees with the profiled code"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("submitter");
    }
    let wall = start.elapsed();
    let after = service.stats();
    RunStats {
        jobs: submitters * jobs_each,
        wall,
        solves: (after.completed - before.completed) as usize
            - (after.coalesced - before.coalesced) as usize
            - (after.cache_hits - before.cache_hits) as usize,
        coalesced: after.coalesced - before.coalesced,
        cache_hits: after.cache_hits - before.cache_hits,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "service_throughput",
        "multi-tenant recovery service: jobs/sec and cache-hit latency",
        "dedup decouples throughput from solver cost; cache hits answer in O(1)",
    );

    let k = scale.pick3(8, 8, 16);
    let pool = scale.pick3(2, 8, 16);
    let dedup_jobs_each = scale.pick3(4, 24, 64);
    let raw_jobs_each = scale.pick3(2, 6, 12);
    let cache_probes = scale.pick3(32, 256, 1024);
    let submitter_counts = [1usize, 8, 64];

    let codes = distinct_codes(pool, k, 0x5EE7);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
    println!(
        "k = {k}, {pool} distinct profiles, {dedup_jobs_each} dedup / {raw_jobs_each} raw jobs \
         per submitter\n"
    );

    let mut csv = CsvArtifact::new(
        "service_throughput",
        &[
            "mode",
            "submitters",
            "jobs",
            "unique_profiles",
            "wall_ms",
            "jobs_per_sec",
            "solves",
            "coalesced",
            "cache_hits",
        ],
    );
    println!(
        "{:>6} | {:>10} {:>6} {:>9} {:>11} {:>7} {:>9} {:>10}",
        "mode", "submitters", "jobs", "wall", "jobs/sec", "solves", "coalesced", "cache hits"
    );
    for &submitters in &submitter_counts {
        for raw in [false, true] {
            let jobs_each = if raw { raw_jobs_each } else { dedup_jobs_each };
            // A fresh service per cell: cold caches, clean counters.
            let service = Arc::new(
                RecoveryService::start(
                    ServiceConfig::new().with_queue_capacity(submitters * jobs_each + 16),
                )
                .expect("start service"),
            );
            let stats = drive(&service, submitters, jobs_each, &codes, &traces, raw);
            let mode = if raw { "raw" } else { "dedup" };
            let jobs_per_sec = stats.jobs as f64 / stats.wall.as_secs_f64();
            if !raw {
                assert_eq!(stats.solves, pool.min(stats.jobs), "one solve per profile");
            }
            println!(
                "{:>6} | {:>10} {:>6} {:>9} {:>11.1} {:>7} {:>9} {:>10}",
                mode,
                submitters,
                stats.jobs,
                fmt_duration(stats.wall),
                jobs_per_sec,
                stats.solves,
                stats.coalesced,
                stats.cache_hits,
            );
            csv.row_display(&[
                mode.to_string(),
                submitters.to_string(),
                stats.jobs.to_string(),
                pool.to_string(),
                format!("{:.3}", stats.wall.as_secs_f64() * 1e3),
                format!("{jobs_per_sec:.1}"),
                stats.solves.to_string(),
                stats.coalesced.to_string(),
                stats.cache_hits.to_string(),
            ]);
        }
    }

    // Cache-hit latency: a warm service answering repeats from history.
    let service = Arc::new(
        RecoveryService::start(ServiceConfig::new().with_queue_capacity(pool + 16))
            .expect("start warm service"),
    );
    let _ = drive(&service, 1, pool, &codes, &traces, false); // warm every profile
    let mut latencies: Vec<Duration> = (0..cache_probes)
        .map(|i| {
            let t0 = Instant::now();
            let id = service
                .submit(JobRequest::trace("prober", traces[i % pool].clone()))
                .expect("admitted");
            let output = service.wait(id).expect("cache answers");
            assert!(output.from_cache, "warm service must answer from cache");
            t0.elapsed()
        })
        .collect();
    latencies.sort();
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    println!(
        "\ncache-hit latency over {cache_probes} probes: p50 = {}, p99 = {}",
        fmt_duration(p50),
        fmt_duration(p99)
    );
    csv.meta("cache_probes", cache_probes);
    csv.meta("hit_p50_us", p50.as_micros());
    csv.meta("hit_p99_us", p99.as_micros());
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();
    println!("\ntotal wall clock: {}", fmt_duration(start.elapsed()));
}
