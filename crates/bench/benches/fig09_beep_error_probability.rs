//! Figure 9: BEEP single-pass success rate versus per-bit error
//! probability, across codeword lengths and injected-error counts.
//!
//! Expected shape (paper): success falls as P[error] drops (cells that
//! rarely fire are hard to catch); longer codewords degrade more
//! gracefully; higher error counts at low probability are hardest.

use beer_beep::{evaluate, EvalConfig};
use beer_bench::{banner, CsvArtifact, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig9",
        "BEEP success rate vs per-bit error probability (1 pass)",
        "success increases with P[error] and codeword length",
    );
    let lengths: Vec<usize> = scale.pick(vec![31, 63], vec![31, 63, 127]);
    let words = scale.pick(16, 100);
    let probabilities = [0.25, 0.5, 0.75, 1.0];
    println!("codeword lengths {lengths:?}, {words} words per point\n");

    let mut csv = CsvArtifact::new(
        "fig09_beep_error_probability",
        &[
            "codeword_len",
            "errors",
            "p_error",
            "success_rate",
            "mean_recall",
        ],
    );
    println!(
        "{:>6} {:>7} | {:>9} {:>9} {:>9} {:>9}",
        "n", "errors", "P=0.25", "P=0.50", "P=0.75", "P=1.00"
    );

    let mut monotone_ok = true;
    let mut per_length_rate_at_1: Vec<f64> = Vec::new();
    for &n in &lengths {
        let error_counts: Vec<usize> = if n <= 63 { vec![2, 5] } else { vec![10, 25] };
        for &errs in &error_counts {
            let mut rates = Vec::new();
            for &p in &probabilities {
                let outcome = evaluate(&EvalConfig::figure9(n, errs, p, words));
                rates.push(outcome.success_rate());
                csv.row_display(&[
                    n.to_string(),
                    errs.to_string(),
                    p.to_string(),
                    format!("{:.3}", outcome.success_rate()),
                    format!("{:.3}", outcome.mean_recall),
                ]);
            }
            println!(
                "{n:>6} {errs:>7} | {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                rates[0] * 100.0,
                rates[1] * 100.0,
                rates[2] * 100.0,
                rates[3] * 100.0
            );
            // Allow noise, but the ends of the curve must order correctly.
            if rates[3] + 0.10 < rates[0] {
                monotone_ok = false;
            }
            if errs == error_counts[0] {
                per_length_rate_at_1.push(rates[3]);
            }
        }
    }
    csv.write();

    println!(
        "\nshape {}: success {} with P[error]",
        if monotone_ok { "HOLDS" } else { "UNCLEAR" },
        if monotone_ok {
            "increases"
        } else {
            "does not increase"
        }
    );
}
