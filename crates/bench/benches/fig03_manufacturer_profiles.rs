//! Figure 3: observed error counts per (1-CHARGED pattern, bit position)
//! for a representative chip of each manufacturer, across the refresh
//! window sweep.
//!
//! Expected shape (paper): the three manufacturers' profiles differ
//! visibly; B's and C's show regular repeating structure while A's looks
//! unstructured; chips of the same model produce identical profiles.

use beer_bench::{ascii_heatmap, banner, CsvArtifact, Scale};
use beer_core::collect::{ChipKnowledge, CollectionPlan};
use beer_core::pattern::PatternSet;
use beer_core::{collect_with, ChipBackend, EngineOptions, MiscorrectionProfile, ThresholdFilter};
use beer_dram::{CellType, ChipConfig, DramInterface, Geometry, SimChip};
use beer_ecc::design::Manufacturer;

fn profile_chip(
    m: Manufacturer,
    chip_seed: u64,
    k_bytes: usize,
    geometry: Geometry,
) -> MiscorrectionProfile {
    let chip = SimChip::new(
        ChipConfig::lpddr4_like(m, 0, chip_seed)
            .with_geometry(geometry)
            .with_word_bytes(k_bytes),
    );
    // Fig. 3's data comes from true-cell regions; give every chip a known
    // all-true layout knowledge (manufacturer C's probe path is exercised
    // in sec51).
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let patterns = PatternSet::One.patterns(chip.k());
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    collect_with(
        &mut backend,
        &patterns,
        &CollectionPlan::quick(),
        &EngineOptions::default(),
    )
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig3",
        "per-(pattern, bit) miscorrection counts per manufacturer",
        "manufacturers differ; B/C structured, A unstructured; same model => same profile",
    );
    // Paper scale: the real 128-bit datawords. Quick scale: 32-bit words
    // (same methodology, 16x fewer patterns).
    let k_bytes = scale.pick(4, 16);
    let geometry = scale.pick(Geometry::new(1, 128, 256), Geometry::new(1, 512, 1024));
    let k = k_bytes * 8;
    println!("chips: {k}-bit datawords, geometry {geometry:?}\n");

    let mut csv = CsvArtifact::new(
        "fig03_manufacturer_profiles",
        &["manufacturer", "pattern", "bit", "count"],
    );
    let mut matrices = Vec::new();
    for m in Manufacturer::ALL {
        let profile = profile_chip(m, 0xF3 + m as u64, k_bytes, geometry);
        let matrix: Vec<Vec<u64>> = (0..k)
            .map(|pi| (0..k).map(|bit| profile.count(pi, bit)).collect())
            .collect();
        for (pi, row) in matrix.iter().enumerate() {
            for (bit, &c) in row.iter().enumerate() {
                if c > 0 {
                    csv.row_display(&[
                        m.to_string(),
                        pi.to_string(),
                        bit.to_string(),
                        c.to_string(),
                    ]);
                }
            }
        }
        let susceptible: usize = matrix
            .iter()
            .map(|row| row.iter().filter(|&&c| c >= 2).count())
            .sum();
        println!("manufacturer {m}: {susceptible} miscorrection-susceptible (pattern, bit) pairs");
        println!(
            "  (Y: 1-CHARGED pattern id, X: bit index; darker = more errors)\n{}",
            ascii_heatmap(&matrix, 32, 64)
        );
        matrices.push(matrix);
    }
    csv.write();

    // Same-model check: a second chip of manufacturer B.
    let again = profile_chip(Manufacturer::B, 0x1234_5678, k_bytes, geometry);
    let b_first = profile_chip(
        Manufacturer::B,
        0xF3 + Manufacturer::B as u64,
        k_bytes,
        geometry,
    );
    let filter = ThresholdFilter::default();
    let disagreements = b_first
        .to_constraints(&filter)
        .disagreements(&again.to_constraints(&filter));
    println!(
        "same-model check (two manufacturer-B chips): {} disagreements",
        disagreements.len()
    );

    // Shape checks: pairwise-different thresholded profiles.
    let binarize = |m: &Vec<Vec<u64>>| -> Vec<Vec<bool>> {
        m.iter()
            .map(|row| row.iter().map(|&c| c >= 2).collect())
            .collect()
    };
    let ba = binarize(&matrices[0]);
    let bb = binarize(&matrices[1]);
    let bc = binarize(&matrices[2]);
    let differs = ba != bb && bb != bc && ba != bc;
    println!(
        "\nshape {}: manufacturers {} distinguishable, same-model profiles {}",
        if differs && disagreements.is_empty() {
            "HOLDS"
        } else {
            "UNCLEAR"
        },
        if differs { "are" } else { "are NOT" },
        if disagreements.is_empty() {
            "match"
        } else {
            "MISMATCH"
        },
    );
}
