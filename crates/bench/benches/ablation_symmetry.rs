//! Ablation: the canonical row-order (symmetry-breaking) constraint.
//!
//! DESIGN.md §2 argues that within standard form the only residual freedom
//! is a permutation of the parity rows, and that lexicographic row
//! ordering is a *complete* symmetry break — making SAT-model counts equal
//! equivalence-class counts (what Figure 5 reports). This ablation removes
//! the constraint and checks both effects:
//!
//! * solution counts inflate by the number of distinct row arrangements,
//! * every extra solution is equivalent to a canonical one,
//! * enumeration gets slower for no informational gain.

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::analytic::analytic_profile;
use beer_core::pattern::PatternSet;
use beer_core::solve::{solve_profile, BeerSolverOptions};
use beer_ecc::{equivalence, hamming};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "ablation-symmetry",
        "canonical row ordering on vs. off",
        "without it, each function reappears once per distinct row arrangement",
    );
    let ks: Vec<usize> = scale.pick(vec![4, 6, 8, 11], vec![4, 6, 8, 11, 14, 16]);
    let codes_per_k = scale.pick(4, 10);
    let cap = 200;

    let mut csv = CsvArtifact::new(
        "ablation_symmetry",
        &[
            "k",
            "sym_solutions_med",
            "nosym_solutions_med",
            "sym_time_us_med",
            "nosym_time_us_med",
            "all_equivalent",
        ],
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | raw sols all equivalent to canonical?",
        "k", "sols (sym)", "sols (raw)", "time (sym)", "time (raw)"
    );

    let mut all_consistent = true;
    for &k in &ks {
        let mut sym_counts = Vec::new();
        let mut raw_counts = Vec::new();
        let mut sym_times = Vec::new();
        let mut raw_times = Vec::new();
        let mut equivalent_ok = true;
        for ci in 0..codes_per_k {
            let mut rng = StdRng::seed_from_u64(0xAB1A + (k * 100 + ci) as u64);
            let code = hamming::random_sec(k, &mut rng);
            let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(k));

            let sym = solve_profile(
                k,
                code.parity_bits(),
                &profile,
                &BeerSolverOptions {
                    max_solutions: cap,
                    ..BeerSolverOptions::default()
                },
            )
            .expect("well-formed profile");
            let raw = solve_profile(
                k,
                code.parity_bits(),
                &profile,
                &BeerSolverOptions {
                    max_solutions: cap,
                    symmetry_breaking: false,
                    ..BeerSolverOptions::default()
                },
            )
            .expect("well-formed profile");
            sym_counts.push(sym.solutions.len());
            raw_counts.push(raw.solutions.len());
            sym_times.push(sym.total_time);
            raw_times.push(raw.total_time);
            // Every raw solution must collapse onto a canonical one.
            for s in &raw.solutions {
                if !sym.solutions.iter().any(|c| equivalence::equivalent(c, s)) {
                    equivalent_ok = false;
                }
            }
            // With {1,2}-CHARGED the canonical count must be exactly 1.
            if sym.solutions.len() != 1 {
                equivalent_ok = false;
            }
        }
        sym_counts.sort_unstable();
        raw_counts.sort_unstable();
        sym_times.sort_unstable();
        raw_times.sort_unstable();
        let mid = codes_per_k / 2;
        println!(
            "{k:>4} | {:>12} {:>12} | {:>12} {:>12} | {}",
            sym_counts[mid],
            raw_counts[mid],
            fmt_duration(sym_times[mid]),
            fmt_duration(raw_times[mid]),
            equivalent_ok
        );
        csv.row_display(&[
            k.to_string(),
            sym_counts[mid].to_string(),
            raw_counts[mid].to_string(),
            sym_times[mid].as_micros().to_string(),
            raw_times[mid].as_micros().to_string(),
            equivalent_ok.to_string(),
        ]);
        all_consistent &= equivalent_ok;
        all_consistent &= raw_counts[mid] >= sym_counts[mid];
    }
    csv.write();

    println!(
        "\nshape {}: symmetry breaking collapses row-permutation duplicates without losing functions",
        if all_consistent { "HOLDS" } else { "VIOLATED" }
    );
}
