//! Registry scale proof: the segmented LSM-lite store against a single
//! append-only log at up to a million records.
//!
//! Two variants populate the same synthetic workload — mostly distinct
//! `Ambiguous` job records with ~1% `Unique` recoveries drawn from a
//! small pool of real SEC codes (the paper's "manufacturers reuse a few
//! ECC functions" shape):
//!
//! * **segmented** — the production path: the active log seals at a size
//!   threshold and a worker-cadence [`Registry::maybe_roll`] folds the
//!   tail into sorted binary snapshots, so startup replays one snapshot
//!   plus a short tail. The longest single roll call is reported as the
//!   max compaction pause — the stall an in-flight `record()` could
//!   observe.
//! * **monolith** — the pre-segmentation behaviour, recreated by an
//!   unreachable seal threshold and no compaction: startup replays every
//!   record ever written from one giant text log.
//!
//! Both stores then reopen cold. The headline number is the startup
//! ratio (monolith / segmented) — the acceptance target is ≥10x at
//! paper scale — plus lookup p50/p99 over the reopened segmented store.
//!
//! Artifacts land in `bench_results/registry_scale.{csv,json}`; CI gates
//! `startup_segmented_ms` against `ci/registry_scale.baseline.json`.

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::recovery::BudgetReason;
use beer_core::trace::Fingerprint;
use beer_ecc::{hamming, LinearCode};
use beer_service::{CodeOutcome, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("beer_registry_scale_{name}_{}", std::process::id()))
}

fn code_pool(count: usize, k: usize) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    (0..count)
        .map(|_| hamming::random_sec(k, &mut rng))
        .collect()
}

/// One synthetic record: a distinct fingerprint, and an outcome that is
/// `Unique` (re-recovering a pooled code) once per ~100 jobs, a budget
/// exhaustion once per ~50, and a plain ambiguous answer otherwise.
fn outcome_for(i: usize, codes: &[LinearCode]) -> CodeOutcome {
    match i % 100 {
        0 => CodeOutcome::Unique(codes[(i / 100) % codes.len()].clone()),
        1 | 51 => CodeOutcome::BudgetExhausted {
            reason: BudgetReason::Deadline,
        },
        _ => CodeOutcome::Ambiguous {
            count: 2 + (i % 7),
            truncated: i.is_multiple_of(13),
        },
    }
}

fn fp(i: usize) -> Fingerprint {
    // Spread bits so snapshot runs exercise the sparse index, not one
    // dense prefix.
    let x = (i as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835);
    Fingerprint(x ^ (i as u128) << 96)
}

struct Populated {
    wall: Duration,
    max_pause: Duration,
}

/// Writes `records` jobs; `roll_every > 0` drives the worker-cadence
/// seal/compact path and tracks the longest single roll.
fn populate(
    dir: &PathBuf,
    records: usize,
    codes: &[LinearCode],
    seal_bytes: u64,
    roll_every: usize,
    compact_after: usize,
) -> Populated {
    let _ = std::fs::remove_dir_all(dir);
    let mut registry = Registry::open(dir).expect("open fresh registry");
    registry.set_seal_bytes(seal_bytes);
    let start = Instant::now();
    let mut max_pause = Duration::ZERO;
    for i in 0..records {
        registry
            .record(fp(i), "bench", &outcome_for(i, codes))
            .expect("record");
        if roll_every > 0 && i % roll_every == roll_every - 1 {
            let t = Instant::now();
            registry.maybe_roll(compact_after, 4).expect("roll");
            max_pause = max_pause.max(t.elapsed());
        }
    }
    Populated {
        wall: start.elapsed(),
        max_pause,
    }
}

struct Reopened {
    registry: Registry,
    startup: Duration,
}

fn reopen(dir: &PathBuf) -> Reopened {
    let start = Instant::now();
    let registry = Registry::open(dir).expect("reopen");
    Reopened {
        registry,
        startup: start.elapsed(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let bench_start = Instant::now();
    let scale = Scale::from_env();
    let records = scale.pick3(20_000, 100_000, 1_000_000);
    banner(
        "registry_scale",
        "segmented registry startup and lookup at scale",
        "snapshot+tail startup >=10x faster than full-log replay at 1M records",
    );

    let codes = code_pool(50, 12);
    let seg_dir = temp_dir("segmented");
    let mono_dir = temp_dir("monolith");

    // Segmented: seal roughly every records/16 appends' worth of bytes
    // (a ~60-byte job line), roll at worker cadence.
    let seal_bytes = ((records as u64) * 60 / 16).max(64 * 1024);
    let compact_after = (records / 64).max(1024);
    println!("populating segmented store ({records} records)...");
    let seg_pop = populate(&seg_dir, records, &codes, seal_bytes, 512, compact_after);
    println!(
        "  wall {}  max roll pause {}",
        fmt_duration(seg_pop.wall),
        fmt_duration(seg_pop.max_pause)
    );

    println!("populating monolith store ({records} records)...");
    let mono_pop = populate(&mono_dir, records, &codes, u64::MAX, 0, usize::MAX);
    println!("  wall {}", fmt_duration(mono_pop.wall));

    let seg = reopen(&seg_dir);
    let mono = reopen(&mono_dir);
    assert_eq!(
        seg.registry.record_count(),
        mono.registry.record_count(),
        "both stores must replay to the same record count"
    );
    let speedup = mono.startup.as_secs_f64() / seg.startup.as_secs_f64().max(1e-9);
    println!(
        "startup: segmented {} ({} snapshots, {} logs, {} tail records) vs monolith {} -> {:.1}x",
        fmt_duration(seg.startup),
        seg.registry.snapshot_count(),
        seg.registry.log_segments(),
        seg.registry.tail_records(),
        fmt_duration(mono.startup),
        speedup
    );

    // Lookup latency over the reopened segmented store: uniform sampled
    // fingerprints, so most probes land in snapshots, some in the tail.
    let samples = 2_000.min(records);
    let mut rng = StdRng::seed_from_u64(7);
    let mut lookups: Vec<Duration> = (0..samples)
        .map(|_| {
            let which = rng.random_range(0..records);
            let t = Instant::now();
            let hit = seg.registry.lookup_fingerprint(fp(which));
            let elapsed = t.elapsed();
            assert!(hit.is_some(), "recorded fingerprint must resolve");
            elapsed
        })
        .collect();
    lookups.sort();
    let p50 = percentile(&lookups, 0.50);
    let p99 = percentile(&lookups, 0.99);
    println!(
        "lookup over {samples} samples: p50 {}  p99 {}",
        fmt_duration(p50),
        fmt_duration(p99)
    );

    let mut artifact = CsvArtifact::new(
        "registry_scale",
        &[
            "variant",
            "records",
            "populate_ms",
            "startup_ms",
            "snapshots",
            "log_segments",
            "tail_records",
        ],
    );
    artifact.row(&[
        "segmented".to_string(),
        records.to_string(),
        seg_pop.wall.as_millis().to_string(),
        seg.startup.as_millis().to_string(),
        seg.registry.snapshot_count().to_string(),
        seg.registry.log_segments().to_string(),
        seg.registry.tail_records().to_string(),
    ]);
    artifact.row(&[
        "monolith".to_string(),
        records.to_string(),
        mono_pop.wall.as_millis().to_string(),
        mono.startup.as_millis().to_string(),
        mono.registry.snapshot_count().to_string(),
        mono.registry.log_segments().to_string(),
        mono.registry.tail_records().to_string(),
    ]);
    artifact.meta("records", records);
    artifact.meta(
        "startup_segmented_ms",
        format!("{:.3}", seg.startup.as_secs_f64() * 1e3),
    );
    artifact.meta(
        "startup_monolith_ms",
        format!("{:.3}", mono.startup.as_secs_f64() * 1e3),
    );
    artifact.meta("startup_speedup", format!("{speedup:.2}"));
    artifact.meta(
        "max_roll_pause_ms",
        format!("{:.3}", seg_pop.max_pause.as_secs_f64() * 1e3),
    );
    artifact.meta("lookup_p50_us", format!("{:.1}", p50.as_secs_f64() * 1e6));
    artifact.meta("lookup_p99_us", format!("{:.1}", p99.as_secs_f64() * 1e6));
    artifact.meta(
        "wall_clock_s",
        format!("{:.1}", bench_start.elapsed().as_secs_f64()),
    );
    let path = artifact.write();
    println!("artifact: {}", path.display());

    if scale == Scale::Paper {
        assert!(
            speedup >= 10.0,
            "acceptance: segmented startup must be >=10x faster at paper scale, got {speedup:.1}x"
        );
    }

    let _ = std::fs::remove_dir_all(&seg_dir);
    let _ = std::fs::remove_dir_all(&mono_dir);
}
