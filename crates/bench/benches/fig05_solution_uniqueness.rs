//! Figure 5: number of ECC functions matching miscorrection profiles
//! generated with different test-pattern sets, across dataword lengths.
//!
//! Expected shape (paper): {1,2}-CHARGED always identifies the function
//! uniquely; 1-CHARGED is unique for full-length codes (k = 4, 11, 26, 57,
//! 120, …) but can be ambiguous for shortened codes; 2- and 3-CHARGED
//! alone can also be ambiguous.

use beer_bench::{banner, CsvArtifact, Scale};
use beer_core::analytic::analytic_profile;
use beer_core::pattern::PatternSet;
use beer_core::solve::{solve_profile, BeerSolverOptions};
use beer_ecc::hamming;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig5",
        "number of ECC functions matching the profile, by pattern set",
        "{1,2}-CHARGED unique everywhere; 1-CHARGED unique for full-length codes",
    );
    let ks: Vec<usize> = scale.pick(
        vec![4, 6, 8, 11, 14, 16, 20, 26],
        vec![4, 6, 8, 11, 14, 16, 20, 26, 32, 40, 48, 57],
    );
    let codes_per_k = scale.pick(8, 25);
    let cap = 40;
    let sets = [
        PatternSet::One,
        PatternSet::Two,
        PatternSet::Three,
        PatternSet::OneTwo,
    ];
    println!("sweep: k in {ks:?}, {codes_per_k} random codes per k, solution cap {cap}\n");

    let mut csv = CsvArtifact::new(
        "fig05_solution_uniqueness",
        &["k", "pattern_set", "min", "median", "max", "capped"],
    );
    println!(
        "{:>4} {:>6} | {:>16} {:>16} {:>16} {:>16}",
        "k", "full?", "1-CHARGED", "2-CHARGED", "3-CHARGED", "{1,2}-CHARGED"
    );

    let mut one_two_always_unique = true;
    let mut one_charged_unique_on_full = true;
    let mut one_charged_ambiguous_somewhere = false;
    for &k in &ks {
        let full = hamming::parity_bits_for(k) == hamming::parity_bits_for(k + 1) - 1
            || k == hamming::full_length_k(hamming::parity_bits_for(k));
        let is_full = k == hamming::full_length_k(hamming::parity_bits_for(k));
        let _ = full;
        let mut cells: Vec<String> = Vec::new();
        for set in sets {
            // 3-CHARGED encodings grow cubically; skip at larger k like the
            // paper's simulations scale down longer codes.
            if set == PatternSet::Three && k > scale.pick(14, 20) {
                cells.push(format!("{:>16}", "(skipped)"));
                csv.row_display(&[
                    k.to_string(),
                    set.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    "skipped".to_string(),
                ]);
                continue;
            }
            let mut counts: Vec<usize> = Vec::new();
            let mut capped = false;
            for ci in 0..codes_per_k {
                let mut rng = StdRng::seed_from_u64(0xF5_0000 + (k * 1000 + ci) as u64);
                let code = hamming::random_sec(k, &mut rng);
                let profile = analytic_profile(&code, &set.patterns(k));
                let report = solve_profile(
                    k,
                    code.parity_bits(),
                    &profile,
                    &BeerSolverOptions {
                        max_solutions: cap,
                        ..BeerSolverOptions::default()
                    },
                )
                .expect("well-formed profile");
                capped |= report.truncated;
                counts.push(report.solutions.len());
            }
            counts.sort_unstable();
            let (min, med, max) = (
                counts[0],
                counts[counts.len() / 2],
                counts[counts.len() - 1],
            );
            cells.push(format!(
                "{:>16}",
                format!("{min}/{med}/{max}{}", if capped { "+" } else { "" })
            ));
            csv.row_display(&[
                k.to_string(),
                set.to_string(),
                min.to_string(),
                med.to_string(),
                max.to_string(),
                capped.to_string(),
            ]);
            match set {
                PatternSet::OneTwo if max > 1 => one_two_always_unique = false,
                PatternSet::One => {
                    if is_full && max > 1 {
                        one_charged_unique_on_full = false;
                    }
                    if max > 1 {
                        one_charged_ambiguous_somewhere = true;
                    }
                }
                _ => {}
            }
        }
        println!(
            "{k:>4} {:>6} | {}",
            if is_full { "yes" } else { "no" },
            cells.join(" ")
        );
    }
    csv.write();

    println!("\n(cells: min/median/max solution count; '+' = hit the cap)");
    println!(
        "shape checks:\n  {{1,2}}-CHARGED always unique: {}\n  1-CHARGED unique on full-length codes: {}\n  1-CHARGED ambiguous for some shortened codes: {}",
        one_two_always_unique, one_charged_unique_on_full, one_charged_ambiguous_somewhere
    );
    println!(
        "\nshape {}",
        if one_two_always_unique && one_charged_unique_on_full {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
