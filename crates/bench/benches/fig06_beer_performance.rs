//! Figure 6: BEER runtime and memory usage versus ECC code length, split
//! into "determine function(s)" and "check uniqueness", using 1-CHARGED
//! profiles as in the paper's measurement — now including the paper's
//! flagship (136, 128) configuration at every scale, plus a dedicated
//! progressive {1,2}-CHARGED recovery of it (fig6c).
//!
//! Expected shape (paper): determine ≪ check-uniqueness; both runtime and
//! memory jump when the code crosses into the next parity-bit count.
//! Absolute numbers are far below the paper's (57 h median for k = 128 on
//! Z3) because this reproduction encodes the closed-form miscorrection
//! predicate instead of quantifying over raw error patterns, preprocesses
//! 1-CHARGED facts over GF(2), and derives column distinctness lazily —
//! see EXPERIMENTS.md.

use beer_bench::{banner, fmt_bytes, fmt_duration, CsvArtifact, Scale};
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::{ChargedSet, PatternSet};
use beer_core::recovery::{RecoveryConfig, RecoveryReport};
use beer_core::solve::{solve_profile, BeerSolverOptions};
use beer_ecc::{hamming, LinearCode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn median<T: Copy + Ord>(xs: &mut [T]) -> T {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One-shot 1-CHARGED recovery of `code` through a `RecoverySession` over
/// its analytic backend — the bench's unit of measurement.
fn one_charged_session(code: &LinearCode, p: usize, max_solutions: usize) -> RecoveryReport {
    let mut backend = AnalyticBackend::new(code.clone());
    RecoveryConfig::new()
        .with_parity_bits(p)
        .with_pattern_family(PatternSet::One)
        .with_solver_options(BeerSolverOptions {
            max_solutions,
            verify_solutions: false,
            ..BeerSolverOptions::default()
        })
        .session(&mut backend)
        .run_to_completion()
        .expect("analytic backends cannot fail")
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "fig6",
        "BEER runtime and memory vs. code length (1-CHARGED)",
        "determine << check-uniqueness; jumps at each added parity bit",
    );
    let ks: Vec<usize> = scale.pick3(
        vec![4, 8, 16, 32, 91, 120, 128],
        vec![4, 8, 11, 16, 26, 32, 45, 57, 64, 91, 120, 128],
        vec![
            4, 8, 11, 16, 26, 32, 45, 57, 64, 80, 91, 100, 120, 128, 180, 247,
        ],
    );
    let codes_per_k = scale.pick3(2, 5, 10);
    println!("sweep: k in {ks:?}, {codes_per_k} random codes per k\n");

    let mut csv = CsvArtifact::new(
        "fig06_beer_performance",
        &[
            "k",
            "parity_bits",
            "determine_us_min",
            "determine_us_med",
            "determine_us_max",
            "total_us_min",
            "total_us_med",
            "total_us_max",
            "memory_bytes_med",
            "vars",
            "clauses",
        ],
    );
    println!(
        "{:>5} {:>3} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>9} {:>9}",
        "k",
        "p",
        "determine",
        "uniqueness",
        "total(med)",
        "total(max)",
        "memory",
        "vars",
        "clauses"
    );

    let mut prev_total_med = Duration::ZERO;
    let mut monotone_jumps = true;
    let mut prev_p = 0usize;
    for &k in &ks {
        let p = hamming::parity_bits_for(k);
        let mut determines: Vec<Duration> = Vec::new();
        let mut totals: Vec<Duration> = Vec::new();
        let mut memories: Vec<usize> = Vec::new();
        let mut vars = 0;
        let mut clauses = 0;
        for ci in 0..codes_per_k {
            let mut rng = StdRng::seed_from_u64(0xF6_0000 + (k * 100 + ci) as u64);
            let code = hamming::random_sec(k, &mut rng);
            let report = one_charged_session(&code, p, 64);
            let check = report.last_check.expect("one round always runs");
            determines.push(check.determine_time);
            totals.push(check.total_time);
            memories.push(check.solver_stats.memory_bytes);
            vars = check.num_vars;
            clauses = check.num_clauses;
        }
        let d_med = median(&mut determines.clone());
        let t_med = median(&mut totals.clone());
        let m_med = median(&mut memories.clone());
        println!(
            "{k:>5} {p:>3} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>9} {:>9}",
            fmt_duration(d_med),
            fmt_duration(t_med.saturating_sub(d_med)),
            fmt_duration(t_med),
            fmt_duration(*totals.iter().max().unwrap()),
            fmt_bytes(m_med),
            vars,
            clauses
        );
        determines.sort_unstable();
        totals.sort_unstable();
        csv.row_display(&[
            k.to_string(),
            p.to_string(),
            determines[0].as_micros().to_string(),
            d_med.as_micros().to_string(),
            determines[determines.len() - 1].as_micros().to_string(),
            totals[0].as_micros().to_string(),
            t_med.as_micros().to_string(),
            totals[totals.len() - 1].as_micros().to_string(),
            m_med.to_string(),
            vars.to_string(),
            clauses.to_string(),
        ]);
        if p > prev_p && prev_p != 0 && t_med < prev_total_med {
            // A parity-bit jump should not *reduce* the median runtime.
            monotone_jumps = false;
        }
        prev_total_med = t_med;
        prev_p = p;
    }
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();

    println!(
        "\nshape {}: runtime grows with code length{}",
        if monotone_jumps { "HOLDS" } else { "UNCLEAR" },
        if monotone_jumps {
            ", with jumps at parity-bit boundaries"
        } else {
            " (non-monotone at some parity-bit boundary)"
        }
    );
    println!(
        "note: absolute numbers are orders of magnitude below the paper's Z3\n\
         measurements by design — the reduced encoding solves the same problem."
    );

    progressive_vs_reencoding(scale);
    k128_flagship(scale);
}

/// §6.3: the progressive pipeline (a `RecoverySession` streaming batches
/// into its incremental SAT session, stop at uniqueness) versus the same
/// schedule with one-shot re-encoding of every accumulated constraint each
/// round (the legacy `solve_profile` loop — the documented low-level
/// baseline this comparison exists to beat).
fn progressive_vs_reencoding(scale: Scale) {
    println!("\n================================================================");
    println!("fig6b: progressive (incremental session) vs one-shot re-encoding");
    println!("================================================================");
    let ks: Vec<usize> = scale.pick3(
        vec![8, 16],
        vec![8, 11, 16, 24, 32],
        vec![8, 11, 16, 24, 32, 48, 64],
    );
    let codes_per_k = scale.pick3(2, 5, 10);
    let options = BeerSolverOptions {
        max_solutions: 2,
        verify_solutions: false,
        ..BeerSolverOptions::default()
    };

    let mut csv = CsvArtifact::new(
        "fig06_progressive_speedup",
        &[
            "k",
            "rounds_med",
            "patterns_used_med",
            "patterns_available",
            "incremental_us_med",
            "reencode_us_med",
            "speedup_med",
        ],
    );
    println!(
        "{:>5} | {:>6} {:>9} | {:>12} {:>12} | {:>8}",
        "k", "rounds", "patterns", "incremental", "re-encode", "speedup"
    );

    let mut overall: Vec<f64> = Vec::new();
    for &k in &ks {
        let p = hamming::parity_bits_for(k);
        let mut inc_times: Vec<Duration> = Vec::new();
        let mut re_times: Vec<Duration> = Vec::new();
        let mut rounds_used: Vec<usize> = Vec::new();
        let mut patterns_used: Vec<usize> = Vec::new();
        let mut patterns_available = 0usize;
        for ci in 0..codes_per_k {
            let mut rng = StdRng::seed_from_u64(0xF6B_0000 + (k * 100 + ci) as u64);
            let code = hamming::random_sec(k, &mut rng);
            // Small batches model interleaved collection: a handful of
            // patterns arrive, a uniqueness check runs, repeat. This is
            // where re-encoding hurts — every round pays for all prior
            // constraints again.
            let chunk = (k / 4).max(4);
            let all: Vec<ChargedSet> = PatternSet::OneTwo.patterns(k);
            let batches: Vec<Vec<ChargedSet>> = all.chunks(chunk).map(|c| c.to_vec()).collect();
            patterns_available = batches.iter().map(|b| b.len()).sum();

            // Incremental arm: a RecoverySession streams each batch into
            // its live SAT session, reusing the encoding and every learned
            // clause across rounds.
            let start = Instant::now();
            let mut backend = AnalyticBackend::new(code.clone());
            let report = RecoveryConfig::new()
                .with_parity_bits(p)
                .with_batches(batches.clone())
                .with_solver_options(options)
                .session(&mut backend)
                .run_to_completion()
                .expect("analytic backends cannot fail");
            inc_times.push(start.elapsed());
            rounds_used.push(report.stats.rounds);
            patterns_used.push(report.stats.patterns_used);

            // Baseline: identical schedule and (analytic) constraints, but
            // every round re-encodes all accumulated facts into a fresh
            // solver via the low-level one-shot entry point.
            let start = Instant::now();
            let mut accumulated = beer_core::profile::ProfileConstraints {
                k,
                entries: Vec::new(),
            };
            for batch in &batches {
                let constraints = beer_core::analytic::analytic_profile(&code, batch);
                accumulated.entries.extend(constraints.entries);
                if solve_profile(k, p, &accumulated, &options)
                    .expect("well-formed constraints")
                    .is_unique()
                {
                    break;
                }
            }
            re_times.push(start.elapsed());
        }
        let inc_med = median(&mut inc_times.clone());
        let re_med = median(&mut re_times.clone());
        let rounds_med = median(&mut rounds_used.clone());
        let patterns_med = median(&mut patterns_used.clone());
        let speedup = re_med.as_secs_f64() / inc_med.as_secs_f64().max(1e-12);
        overall.push(speedup);
        println!(
            "{k:>5} | {rounds_med:>6} {:>9} | {:>12} {:>12} | {speedup:>7.2}x",
            format!("{patterns_med}/{patterns_available}"),
            fmt_duration(inc_med),
            fmt_duration(re_med),
        );
        csv.row_display(&[
            k.to_string(),
            rounds_med.to_string(),
            patterns_med.to_string(),
            patterns_available.to_string(),
            inc_med.as_micros().to_string(),
            re_med.as_micros().to_string(),
            format!("{speedup:.3}"),
        ]);
    }
    csv.write();
    overall.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\nmedian speedup across k: {:.2}x (incremental sessions reuse the\n\
         encoding and learned clauses instead of re-encoding each round)",
        overall[overall.len() / 2]
    );
}

/// fig6c: the paper's flagship configuration — progressive {1,2}-CHARGED
/// recovery of random (136, 128) SEC codes, the scenario the paper reports
/// at a 57-hour median on Z3 (§6.3).
fn k128_flagship(scale: Scale) {
    println!("\n================================================================");
    println!("fig6c: flagship (136, 128) progressive {{1,2}}-CHARGED recovery");
    println!("================================================================");
    let codes = scale.pick3(1, 3, 10);
    let mut csv = CsvArtifact::new(
        "fig06_k128_flagship",
        &[
            "seed",
            "unique",
            "rounds",
            "patterns_used",
            "patterns_available",
            "facts_encoded",
            "pinned_vars",
            "vars",
            "clauses",
            "total_us",
        ],
    );
    println!(
        "{:>5} | {:>6} {:>7} {:>13} {:>7} {:>7} | {:>9} {:>9} | {:>10}",
        "seed", "unique", "rounds", "patterns", "facts", "pinned", "vars", "clauses", "total"
    );
    let start = Instant::now();
    let mut all_unique = true;
    for seed in 0..codes {
        let mut rng = StdRng::seed_from_u64(0xF6C_0000 + seed as u64);
        let code = hamming::random_sec(128, &mut rng);
        let mut backend = AnalyticBackend::new(code.clone());
        let report = RecoveryConfig::new()
            .with_parity_bits(8)
            .with_chunked_schedule(64)
            .session(&mut backend)
            .run_to_completion()
            .expect("analytic backends cannot fail");
        let unique = report.outcome.is_unique();
        all_unique &= unique;
        let stats = &report.stats;
        let check = report.last_check.as_ref().expect("one round always runs");
        println!(
            "{seed:>5} | {:>6} {:>7} {:>13} {:>7} {:>7} | {:>9} {:>9} | {:>10}",
            unique,
            stats.rounds,
            format!("{}/{}", stats.patterns_used, stats.patterns_available),
            stats.facts_encoded,
            stats.pinned_vars,
            check.num_vars,
            check.num_clauses,
            fmt_duration(stats.elapsed),
        );
        csv.row_display(&[
            seed.to_string(),
            unique.to_string(),
            stats.rounds.to_string(),
            stats.patterns_used.to_string(),
            stats.patterns_available.to_string(),
            stats.facts_encoded.to_string(),
            stats.pinned_vars.to_string(),
            check.num_vars.to_string(),
            check.num_clauses.to_string(),
            stats.elapsed.as_micros().to_string(),
        ]);
    }
    csv.meta("k", 128);
    csv.meta("parity_bits", 8);
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();
    println!(
        "\nflagship {}: every (136, 128) code recovered uniquely from\n\
         progressive {{1,2}}-CHARGED constraints (paper: 57 h median on Z3)",
        if all_unique { "HOLDS" } else { "FAILS" }
    );
    // The CI smoke step relies on this bench's exit status.
    assert!(all_unique, "flagship (136, 128) recovery regressed");
}
