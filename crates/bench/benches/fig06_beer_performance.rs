//! Figure 6: BEER runtime and memory usage versus ECC code length, split
//! into "determine function(s)" and "check uniqueness", using 1-CHARGED
//! profiles as in the paper's measurement.
//!
//! Expected shape (paper): determine ≪ check-uniqueness; both runtime and
//! memory jump when the code crosses into the next parity-bit count.
//! Absolute numbers are far below the paper's (57 h median for k = 128 on
//! Z3) because this reproduction encodes the closed-form miscorrection
//! predicate instead of quantifying over raw error patterns — see
//! EXPERIMENTS.md.

use beer_bench::{banner, fmt_bytes, fmt_duration, CsvArtifact, Scale};
use beer_core::analytic::analytic_profile;
use beer_core::pattern::PatternSet;
use beer_core::solve::{solve_profile, BeerSolverOptions};
use beer_ecc::hamming;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn median<T: Copy + Ord>(xs: &mut [T]) -> T {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig6",
        "BEER runtime and memory vs. code length (1-CHARGED)",
        "determine << check-uniqueness; jumps at each added parity bit",
    );
    let ks: Vec<usize> = scale.pick(
        vec![4, 8, 11, 16, 26, 32, 45, 57],
        vec![4, 8, 11, 16, 26, 32, 45, 57, 64, 80, 100, 120, 128, 180, 247],
    );
    let codes_per_k = scale.pick(5, 10);
    println!("sweep: k in {ks:?}, {codes_per_k} random codes per k\n");

    let mut csv = CsvArtifact::new(
        "fig06_beer_performance",
        &[
            "k",
            "parity_bits",
            "determine_us_min",
            "determine_us_med",
            "determine_us_max",
            "total_us_min",
            "total_us_med",
            "total_us_max",
            "memory_bytes_med",
            "vars",
            "clauses",
        ],
    );
    println!(
        "{:>5} {:>3} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>9} {:>9}",
        "k", "p", "determine", "uniqueness", "total(med)", "total(max)", "memory", "vars", "clauses"
    );

    let mut prev_total_med = Duration::ZERO;
    let mut monotone_jumps = true;
    let mut prev_p = 0usize;
    for &k in &ks {
        let p = hamming::parity_bits_for(k);
        let mut determines: Vec<Duration> = Vec::new();
        let mut totals: Vec<Duration> = Vec::new();
        let mut memories: Vec<usize> = Vec::new();
        let mut vars = 0;
        let mut clauses = 0;
        for ci in 0..codes_per_k {
            let mut rng = StdRng::seed_from_u64(0xF6_0000 + (k * 100 + ci) as u64);
            let code = hamming::random_sec(k, &mut rng);
            let profile = analytic_profile(&code, &PatternSet::One.patterns(k));
            let report = solve_profile(
                k,
                p,
                &profile,
                &BeerSolverOptions {
                    max_solutions: 64,
                    verify_solutions: false,
                    ..BeerSolverOptions::default()
                },
            );
            determines.push(report.determine_time);
            totals.push(report.total_time);
            memories.push(report.solver_stats.memory_bytes);
            vars = report.num_vars;
            clauses = report.num_clauses;
        }
        let d_med = median(&mut determines.clone());
        let t_med = median(&mut totals.clone());
        let m_med = median(&mut memories.clone());
        println!(
            "{k:>5} {p:>3} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>9} {:>9}",
            fmt_duration(d_med),
            fmt_duration(t_med.saturating_sub(d_med)),
            fmt_duration(t_med),
            fmt_duration(*totals.iter().max().unwrap()),
            fmt_bytes(m_med),
            vars,
            clauses
        );
        determines.sort_unstable();
        totals.sort_unstable();
        csv.row_display(&[
            k.to_string(),
            p.to_string(),
            determines[0].as_micros().to_string(),
            d_med.as_micros().to_string(),
            determines[determines.len() - 1].as_micros().to_string(),
            totals[0].as_micros().to_string(),
            t_med.as_micros().to_string(),
            totals[totals.len() - 1].as_micros().to_string(),
            m_med.to_string(),
            vars.to_string(),
            clauses.to_string(),
        ]);
        if p > prev_p && prev_p != 0 && t_med < prev_total_med {
            // A parity-bit jump should not *reduce* the median runtime.
            monotone_jumps = false;
        }
        prev_total_med = t_med;
        prev_p = p;
    }
    csv.write();

    println!(
        "\nshape {}: runtime grows with code length{}",
        if monotone_jumps { "HOLDS" } else { "UNCLEAR" },
        if monotone_jumps {
            ", with jumps at parity-bit boundaries"
        } else {
            " (non-monotone at some parity-bit boundary)"
        }
    );
    println!(
        "note: absolute numbers are orders of magnitude below the paper's Z3\n\
         measurements by design — the reduced encoding solves the same problem."
    );
}
