//! Observability overhead proof: the `beer_obs` instrumentation must be
//! close to free on the service's hottest path.
//!
//! The workload is the dedup fast path — a warm service answering
//! repeated submissions from the registry cache in O(1) — because that
//! is where per-job metric recording (cache-lookup timing, tenant
//! counters, flight-recorder events) is the largest *fraction* of the
//! work. A solve-bound workload would hide any overhead behind
//! milliseconds of SAT time; this one gives it nowhere to hide.
//!
//! Both modes run the identical schedule, interleaved rep by rep so
//! machine drift hits them equally, and each mode keeps its best rep
//! (best-of damps scheduler noise, which only ever subtracts). The
//! headline number is
//!
//! ```text
//! overhead_pct = (1 - hits_per_sec_on / hits_per_sec_off) * 100
//! ```
//!
//! gated by `ci/check_metrics_overhead.py` against the checked-in
//! baseline: at most five points of regression.

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::collect::CollectionPlan;
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::PatternSet;
use beer_core::trace::ProfileTrace;
use beer_ecc::{equivalence, hamming, LinearCode};
use beer_service::{JobRequest, RecoveryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalence::equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

/// One measured rep: start a service with observability `enabled`, warm
/// every profile into the registry cache, then time `probes` cache-hit
/// submissions back to back.
fn cache_hit_rate(enabled: bool, traces: &[ProfileTrace], probes: usize) -> (f64, Duration) {
    let service = Arc::new(
        RecoveryService::start(
            ServiceConfig::new()
                .with_observability(enabled)
                .with_queue_capacity(traces.len() + probes + 16),
        )
        .expect("start service"),
    );
    for trace in traces {
        let id = service
            .submit(JobRequest::trace("warmer", trace.clone()))
            .expect("admitted");
        service.wait(id).expect("warm profile solves");
    }
    let start = Instant::now();
    for i in 0..probes {
        let id = service
            .submit(JobRequest::trace(
                "prober",
                traces[i % traces.len()].clone(),
            ))
            .expect("admitted");
        let output = service.wait(id).expect("cache answers");
        assert!(output.from_cache, "warm service must answer from cache");
    }
    let wall = start.elapsed();
    (probes as f64 / wall.as_secs_f64(), wall)
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "metrics_overhead",
        "beer_obs instrumentation cost on the dedup fast path",
        "histograms are a few atomics per record: hits/sec within 5% of obs-off",
    );

    let k = 8;
    let pool = scale.pick3(2, 4, 8);
    // A rep must run long enough (~100 ms) for hits/sec to be a
    // measurement rather than a scheduler-noise sample; even smoke
    // keeps the probe count high because the gate runs on it in CI.
    let probes = scale.pick3(4000, 8000, 32000);
    let reps = scale.pick3(5, 3, 3);

    let codes = distinct_codes(pool, k, 0x0B5_CAFE);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
    println!("k = {k}, {pool} distinct profiles, {probes} cache-hit probes x {reps} reps\n");

    let mut csv = CsvArtifact::new(
        "metrics_overhead",
        &["observability", "rep", "probes", "wall_ms", "hits_per_sec"],
    );
    println!(
        "{:>13} | {:>3} {:>9} {:>12}",
        "observability", "rep", "wall", "hits/sec"
    );
    let mut best = [0f64; 2]; // [off, on]
    for rep in 0..reps {
        for enabled in [false, true] {
            let (rate, wall) = cache_hit_rate(enabled, &traces, probes);
            let slot = &mut best[usize::from(enabled)];
            *slot = slot.max(rate);
            let label = if enabled { "on" } else { "off" };
            println!(
                "{:>13} | {:>3} {:>9} {:>12.1}",
                label,
                rep,
                fmt_duration(wall),
                rate
            );
            csv.row_display(&[
                label.to_string(),
                rep.to_string(),
                probes.to_string(),
                format!("{:.3}", wall.as_secs_f64() * 1e3),
                format!("{rate:.1}"),
            ]);
        }
    }

    let [off, on] = best;
    let overhead_pct = (1.0 - on / off) * 100.0;
    println!(
        "\nbest-of-{reps}: obs-off = {off:.1} hits/sec, obs-on = {on:.1} hits/sec \
         -> overhead = {overhead_pct:.2}%"
    );
    csv.meta("probes", probes);
    csv.meta("reps", reps);
    csv.meta("hits_per_sec_off", format!("{off:.1}"));
    csv.meta("hits_per_sec_on", format!("{on:.1}"));
    csv.meta("overhead_pct", format!("{overhead_pct:.3}"));
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();
    println!("\ntotal wall clock: {}", fmt_duration(start.elapsed()));
}
