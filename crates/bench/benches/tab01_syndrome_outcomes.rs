//! Table 1: every possible data-retention error pattern, its syndrome, and
//! its outcome for the codeword of Equation 3 (`[D D C D | D C C]`) under
//! the Equation 1 (7,4) Hamming code.
//!
//! Expected rows (paper): 8 patterns — one no-error, three correctable
//! single errors, four uncorrectable multi-error patterns.

use beer_bench::{banner, CsvArtifact};
use beer_ecc::miscorrection::{enumerate_outcomes, Outcome};
use beer_ecc::{hamming, LinearCode};

fn syndrome_name(_code: &LinearCode, positions: &[usize]) -> String {
    if positions.is_empty() {
        return "0".to_string();
    }
    positions
        .iter()
        .map(|&p| format!("H*,{p}"))
        .collect::<Vec<_>>()
        .join(" + ")
}

fn main() {
    banner(
        "tab1",
        "error patterns, syndromes, and outcomes for the Eq. 3 codeword",
        "8 rows: 1 no-error, 3 correctable, 4 uncorrectable",
    );
    let code = hamming::eq1_code();
    // Equation 3: dataword with only bit 2 CHARGED.
    let rows = enumerate_outcomes(&code, &[2]);
    let mut csv = CsvArtifact::new(
        "tab01_syndrome_outcomes",
        &["error_pattern", "syndrome", "outcome", "miscorrected_bit"],
    );

    println!(
        "{:<24} {:<20} {:<14} miscorrection",
        "pre-correction errors", "syndrome", "outcome"
    );
    let mut counts = (0usize, 0usize, 0usize);
    for row in &rows {
        let pattern = if row.error_positions.is_empty() {
            "(none)".to_string()
        } else {
            format!("{:?}", row.error_positions)
        };
        let outcome = match row.outcome {
            Outcome::NoError => {
                counts.0 += 1;
                "No error"
            }
            Outcome::Correct => {
                counts.1 += 1;
                "Correctable"
            }
            Outcome::Uncorrectable => {
                counts.2 += 1;
                "Uncorrectable"
            }
        };
        let mis = row
            .miscorrected_bit
            .map(|b| format!("bit {b}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<24} {:<20} {:<14} {}",
            pattern,
            syndrome_name(&code, &row.error_positions),
            outcome,
            mis
        );
        csv.row(&[
            pattern,
            syndrome_name(&code, &row.error_positions),
            outcome.to_string(),
            mis,
        ]);
    }
    csv.write();

    println!(
        "\ntotals: {} no-error, {} correctable, {} uncorrectable",
        counts.0, counts.1, counts.2
    );
    assert_eq!(rows.len(), 8, "Table 1 must have exactly 8 rows");
    assert_eq!(
        (counts.0, counts.1, counts.2),
        (1, 3, 4),
        "outcome distribution deviates from Table 1"
    );
    println!("shape HOLDS: matches Table 1 exactly");
}
