//! Figure 8: BEEP success rate for 1 vs. 2 passes across codeword lengths
//! and injected-error counts (deterministic weak cells, P[error] = 1).
//!
//! Expected shape (paper): success rates are high everywhere; longer
//! codewords do better (≈100 % for 127/255-bit codes even with one pass);
//! a second pass helps the short codes.

use beer_beep::{evaluate, EvalConfig};
use beer_bench::{banner, CsvArtifact, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig8",
        "BEEP success rate: 1 vs 2 passes",
        "success high everywhere; longer codes ~100%; 2 passes >= 1 pass",
    );
    let lengths: Vec<usize> = scale.pick(vec![31, 63], vec![31, 63, 127, 255]);
    let words = scale.pick(16, 100);
    println!("codeword lengths {lengths:?}, {words} words per point\n");

    let mut csv = CsvArtifact::new(
        "fig08_beep_passes",
        &[
            "codeword_len",
            "errors",
            "passes",
            "success_rate",
            "mean_recall",
            "false_positive_words",
        ],
    );
    println!(
        "{:>6} {:>7} | {:>10} {:>10} | {:>8}",
        "n", "errors", "1 pass", "2 passes", "recall(1p)"
    );

    let mut two_ge_one = true;
    let mut long_codes_high = true;
    for &n in &lengths {
        // The paper plots 2–5 errors for short codes and 10–25 for long.
        let error_counts: Vec<usize> = if n <= 63 {
            vec![2, 3, 4, 5]
        } else {
            vec![10, 15, 20, 25]
        };
        for &errs in &error_counts {
            let mut rates = Vec::new();
            let mut recall_1p = 0.0;
            for passes in [1usize, 2] {
                let outcome = evaluate(&EvalConfig::figure8(n, errs, passes, words));
                rates.push(outcome.success_rate());
                if passes == 1 {
                    recall_1p = outcome.mean_recall;
                }
                csv.row_display(&[
                    n.to_string(),
                    errs.to_string(),
                    passes.to_string(),
                    format!("{:.3}", outcome.success_rate()),
                    format!("{:.3}", outcome.mean_recall),
                    outcome.false_positive_words.to_string(),
                ]);
            }
            println!(
                "{n:>6} {errs:>7} | {:>9.1}% {:>9.1}% | {:>7.1}%",
                rates[0] * 100.0,
                rates[1] * 100.0,
                recall_1p * 100.0
            );
            if rates[1] + 0.15 < rates[0] {
                two_ge_one = false; // allow sampling noise
            }
            if n >= 127 && rates[0] < 0.9 {
                long_codes_high = false;
            }
        }
    }
    csv.write();

    println!(
        "\nshape {}: two passes {} one pass{}",
        if two_ge_one && long_codes_high {
            "HOLDS"
        } else {
            "UNCLEAR"
        },
        if two_ge_one { ">=" } else { "<" },
        if long_codes_high {
            "; long codes near-perfect"
        } else {
            "; long codes below expectation"
        }
    );
}
