//! Figure 1: relative per-bit post-correction error probability for three
//! ECC functions of the same type (32 data bits, 6 parity bits) under
//! identical uniform-random raw errors, with bootstrap confidence
//! intervals.
//!
//! Expected shape (paper): the pre-correction distribution is flat; each
//! ECC function produces a visibly different post-correction distribution,
//! because miscorrections are a pure function of the parity-check matrix.

use beer_bench::{banner, CsvArtifact, Scale};
use beer_ecc::design::{vendor_code, Manufacturer};
use beer_einsim::stats::{bootstrap_ci, mean};
use beer_einsim::{simulate_batches, ErrorModel};
use beer_gf2::BitVec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig1",
        "relative error probability per bit vs. ECC function",
        "same raw errors, function-specific post-correction distributions",
    );
    let k = 32;
    let ber = scale.pick(1e-3, 1e-4);
    let words_per_batch = scale.pick(100_000u64, 1_000_000u64);
    let batches = scale.pick(40, 100);
    let data = BitVec::ones(k); // 0xFF test pattern
    println!(
        "workload: k={k}, BER={ber:e}, {batches} batches x {words_per_batch} words, 0xFF data\n"
    );

    let functions: Vec<(String, _)> = Manufacturer::ALL
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            (
                format!("ECC Function {i} (style {m})"),
                vendor_code(m, k, 0),
            )
        })
        .collect();

    let mut csv = CsvArtifact::new(
        "fig01_ecc_function_dependence",
        &[
            "bit",
            "pre_share",
            "f0_lo",
            "f0_med",
            "f0_hi",
            "f1_lo",
            "f1_med",
            "f1_hi",
            "f2_lo",
            "f2_med",
            "f2_hi",
        ],
    );

    // Per function: per-batch post-correction error shares per bit.
    let mut rng = SmallRng::seed_from_u64(0xF16_0001);
    let mut per_function: Vec<Vec<Vec<f64>>> = Vec::new(); // [func][bit][batch]
    let mut pre_shares = vec![0.0f64; k];
    for (name, code) in &functions {
        let stats = simulate_batches(
            code,
            &data,
            &ErrorModel::UniformRandom { ber },
            words_per_batch,
            batches,
            &mut rng,
        );
        let mut per_bit: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(batches)).collect();
        let mut post_total = 0u64;
        let mut miscorrected = 0u64;
        for b in &stats {
            let shares = b.post_error_shares();
            for (bit, &s) in shares.iter().enumerate() {
                per_bit[bit].push(s);
            }
            post_total += b.total_post_errors();
            miscorrected += b.miscorrected_words;
            // Pre-correction shares accumulate across functions (identical
            // raw model, so this is just more samples of the same flat
            // distribution).
            let pre_tot: u64 = b.pre_errors.iter().take(k).sum();
            if pre_tot > 0 {
                for (bit, share) in pre_shares.iter_mut().enumerate() {
                    *share += b.pre_errors[bit] as f64 / pre_tot as f64;
                }
            }
        }
        println!("{name}: {post_total} post-correction errors, {miscorrected} miscorrected words");
        per_function.push(per_bit);
    }
    for share in pre_shares.iter_mut() {
        *share /= (batches * functions.len()) as f64;
    }

    println!(
        "\n{:>4} {:>9}  post-correction share, median [95% CI], per function",
        "bit", "pre"
    );
    let mut boot_rng = SmallRng::seed_from_u64(0xB007);
    for bit in 0..k {
        let mut row: Vec<String> = vec![bit.to_string(), format!("{:.5}", pre_shares[bit])];
        print!("{bit:>4} {:>9.5} ", pre_shares[bit]);
        for per_bit in &per_function {
            let ci = bootstrap_ci(&per_bit[bit], mean, 1000, 0.05, &mut boot_rng);
            print!(" | {:.4} [{:.4},{:.4}]", ci.estimate, ci.lo, ci.hi);
            row.extend([
                format!("{:.6}", ci.lo),
                format!("{:.6}", ci.estimate),
                format!("{:.6}", ci.hi),
            ]);
        }
        println!();
        csv.row(&row);
    }
    csv.write();

    // Shape check: the three functions must differ pairwise more than the
    // flat pre-correction distribution differs from uniform.
    let med =
        |f: &Vec<Vec<f64>>, bit: usize| -> f64 { f[bit].iter().sum::<f64>() / batches as f64 };
    let mut max_l1 = 0.0f64;
    for i in 0..per_function.len() {
        for j in (i + 1)..per_function.len() {
            let l1: f64 = (0..k)
                .map(|b| (med(&per_function[i], b) - med(&per_function[j], b)).abs())
                .sum();
            println!("L1 distance between function {i} and {j} post-correction shares: {l1:.4}");
            max_l1 = max_l1.max(l1);
        }
    }
    let pre_l1: f64 = pre_shares.iter().map(|s| (s - 1.0 / k as f64).abs()).sum();
    println!("L1 distance of pre-correction shares from uniform:         {pre_l1:.4}");
    println!(
        "\nshape {}: function-specific structure {} the raw-error noise floor",
        if max_l1 > pre_l1 { "HOLDS" } else { "UNCLEAR" },
        if max_l1 > pre_l1 {
            "exceeds"
        } else {
            "does not exceed"
        }
    );
}
