//! Criterion micro-benchmarks for the substrates: ECC encode/decode,
//! GF(2) algebra, the CDCL solver on BEER instances, and the word-level
//! Monte-Carlo simulator. These track the constants behind the
//! figure-level harnesses.

use beer_core::analytic::analytic_profile;
use beer_core::pattern::PatternSet;
use beer_core::solve::{solve_profile, BeerSolverOptions};
use beer_ecc::hamming;
use beer_einsim::{simulate, ErrorModel, SimConfig};
use beer_gf2::{BitMatrix, BitVec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ecc(c: &mut Criterion) {
    let code = hamming::shortened(128);
    let data = BitVec::ones(128);
    let codeword = code.encode(&data);
    let mut corrupted = codeword.clone();
    corrupted.flip(7);
    corrupted.flip(99);

    let mut g = c.benchmark_group("ecc");
    g.bench_function("encode_k128", |b| {
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    g.bench_function("decode_k128_double_error", |b| {
        b.iter(|| black_box(code.decode(black_box(&corrupted))))
    });
    g.bench_function("syndrome_k128", |b| {
        b.iter(|| black_box(code.syndrome(black_box(&corrupted))))
    });
    g.finish();
}

fn bench_gf2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let m = BitMatrix::random(64, 64, &mut rng);
    let x = BitVec::ones(64);

    let mut g = c.benchmark_group("gf2");
    g.bench_function("rref_64x64", |b| b.iter(|| black_box(m.rref())));
    g.bench_function("mul_vec_64", |b| {
        b.iter(|| black_box(m.mul_vec(black_box(&x))))
    });
    g.finish();
}

fn bench_beer_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("beer_solve");
    g.sample_size(10);
    for k in [8usize, 16, 32] {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(k as u64));
        let profile = analytic_profile(&code, &PatternSet::One.patterns(k));
        g.bench_function(format!("solve_1charged_k{k}"), |b| {
            b.iter_batched(
                || profile.clone(),
                |p| {
                    black_box(solve_profile(
                        k,
                        code.parity_bits(),
                        &p,
                        &BeerSolverOptions::default(),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_einsim(c: &mut Criterion) {
    let code = hamming::shortened(128);
    let data = BitVec::ones(128);
    let mut g = c.benchmark_group("einsim");
    g.bench_function("simulate_100k_words_ber1e-4", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = SimConfig {
            words: 100_000,
            model: ErrorModel::UniformRandom { ber: 1e-4 },
        };
        b.iter(|| black_box(simulate(&code, &data, &cfg, &mut rng)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_ecc, bench_gf2, bench_beer_solve, bench_einsim
}
criterion_main!(benches);
