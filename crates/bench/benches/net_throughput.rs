//! Network scale proof: jobs/sec and cache-hit latency through the full
//! `beer-wire v1` stack — real TCP clients over loopback against one
//! `NetServer`-fronted service.
//!
//! Two modes per client count (1 / 8 / 64):
//!
//! * **dedup** — clients submit traces drawn from a small pool of
//!   distinct profiles (the paper's "manufacturers reuse a few ECC
//!   functions" scenario): in-flight duplicates coalesce server-side and
//!   completed ones hit the registry cache, so wire throughput decouples
//!   from solver cost. Repeat submissions are fingerprint-only exchanges
//!   (no re-upload).
//! * **raw** — every submission is a distinct profile (unique
//!   fingerprint): each pays a chunked upload and a full recovery,
//!   measuring the end-to-end solve path through the network edge.
//!
//! A final section times submit→done latency for pure cache hits over
//! the wire (p50 / p99): the remote answer path a restarted server
//! serves from its replayed registry.
//!
//! A **connection-scaling** section then holds 256 / 1024 / 4096
//! concurrent live watches open against one server (scale-dependent; see
//! EXPERIMENTS.md §net_throughput for the methodology): raw wire-speaking
//! sockets whose submissions coalesce behind a parked worker, so every
//! connection sits in a real watch. It proves the reactor's two scaling
//! claims — the process gains ZERO threads however many connections are
//! open, and cache-hit latency through the same reactor stays flat while
//! thousands of watchers idle — then releases the worker and times the
//! event fan-out until the last watcher has its terminal frame.

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::collect::CollectionPlan;
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::PatternSet;
use beer_core::trace::ProfileTrace;
use beer_core::{ChargedSet, EngineError, MiscorrectionProfile, ProfileSource};
use beer_ecc::{equivalence, hamming, LinearCode};
use beer_net::reactor::raise_nofile_limit;
use beer_net::wire::{read_message, write_message, Message, WIRE_VERSION};
use beer_net::{Client, NetServer, NetServerConfig};
use beer_service::{JobRequest, Priority, RecoveryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalence::equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

struct RunStats {
    jobs: usize,
    wall: Duration,
    solves: usize,
    coalesced: u64,
    cache_hits: u64,
}

/// Drives `clients` real TCP connections through `jobs_each` submissions
/// each and waits for every result; panics on any wrong answer.
fn drive(
    service: &Arc<RecoveryService>,
    addr: &str,
    clients: usize,
    jobs_each: usize,
    codes: &[LinearCode],
    traces: &[ProfileTrace],
) -> RunStats {
    let before = service.stats();
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let codes = codes.to_vec();
            let traces = traces.to_vec();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(&addr, format!("tenant-{c}"), "").expect("connect");
                // Pipeline: submit everything, then collect everything —
                // the same shape a batch-submitting tenant drives.
                let jobs: Vec<_> = (0..jobs_each)
                    .map(|j| {
                        // Disjoint slices per client: in raw mode (one
                        // trace per job overall) no index is shared, in
                        // dedup mode the small pool cycles.
                        let which = (c * jobs_each + j) % traces.len();
                        (which, client.submit(&traces[which]).expect("admitted"))
                    })
                    .collect();
                for (which, job) in jobs {
                    let output = client
                        .wait(job)
                        .expect("watch completes")
                        .expect("clean profile solves");
                    let code = output.outcome.unique_code().expect("unique recovery");
                    assert!(
                        equivalence::equivalent(code, &codes[which]),
                        "remote answer disagrees with the profiled code"
                    );
                }
                client.close();
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let wall = start.elapsed();
    let after = service.stats();
    RunStats {
        jobs: clients * jobs_each,
        wall,
        solves: (after.completed - before.completed) as usize
            - (after.coalesced - before.coalesced) as usize
            - (after.cache_hits - before.cache_hits) as usize,
        coalesced: after.coalesced - before.coalesced,
        cache_hits: after.cache_hits - before.cache_hits,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// A profile source that parks its single unit until released, pinning
/// submitted duplicates in a live (queued, coalesced) state.
#[derive(Clone)]
struct GateSource {
    released: Arc<AtomicBool>,
}

impl ProfileSource for GateSource {
    fn k(&self) -> usize {
        8
    }

    fn label(&self) -> String {
        "gate".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        1
    }

    fn run_unit(
        &mut self,
        _unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        _profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        while !self.released.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

const MAX_FRAME: usize = 1 << 20;

/// Connects a raw wire-speaking socket and completes the Hello handshake.
fn handshake(addr: &str, tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_message(
        &mut stream,
        &Message::Hello {
            min_version: WIRE_VERSION,
            max_version: WIRE_VERSION,
            tenant: tenant.to_string(),
            token: String::new(),
        },
    )
    .expect("hello");
    match read_message(&mut stream, MAX_FRAME).expect("hello answered") {
        Message::HelloAck { .. } => stream,
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

/// Uploads a trace over a raw socket, returning its fingerprint.
fn upload(stream: &mut TcpStream, trace: &ProfileTrace) -> beer_core::Fingerprint {
    let (fingerprint, chunks) = trace.to_chunks(64 << 10);
    let total_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    write_message(
        stream,
        &Message::TraceBegin {
            fingerprint,
            total_chunks: chunks.len() as u32,
            total_bytes,
        },
    )
    .expect("begin");
    let last = chunks.len() - 1;
    for (index, data) in chunks.into_iter().enumerate() {
        write_message(
            stream,
            &Message::TraceChunk {
                fingerprint,
                index: index as u32,
                data,
            },
        )
        .expect("chunk");
        if index == last {
            match read_message(stream, MAX_FRAME).expect("upload answered") {
                Message::TraceAck { .. } => {}
                other => panic!("expected TraceAck, got {other:?}"),
            }
        }
    }
    fingerprint
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads line")
        .trim()
        .parse()
        .expect("thread count")
}

struct ConnScalingCell {
    conns: usize,
    setup: Duration,
    threads_before: usize,
    threads_after: usize,
    loaded_p50: Duration,
    loaded_p99: Duration,
    fanout: Duration,
}

/// Holds `conns` live watches open on one server, probes cache-hit
/// latency through the same loaded reactor, then releases the gated
/// worker and times the fan-out until every watcher has its Done frame.
fn conn_scaling_cell(conns: usize, probes: usize) -> ConnScalingCell {
    let warm_secret = hamming::shortened(8);
    let warm_trace = record_trace(&warm_secret);
    let watch_secret = distinct_codes(1, 8, 0xFA11 + conns as u64).remove(0);
    let watch_trace = record_trace(&watch_secret);

    let service =
        Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("start"));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::new().with_max_connections(conns + 8),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Warm the registry with one profile so the loaded-latency probes
    // below are pure cache hits.
    let mut prober = Client::connect(&addr, "prober", "").expect("prober connects");
    let warm_job = prober.submit(&warm_trace).expect("admitted");
    prober.wait(warm_job).expect("watch").expect("solves");

    // Park the single worker so every watcher's job stays live.
    let gate = GateSource {
        released: Arc::new(AtomicBool::new(false)),
    };
    let gate_job = service
        .submit(JobRequest::source("warden", "gate", Box::new(gate.clone())))
        .expect("gate admitted");

    // Open the watchers: raw sockets, one shared upload, duplicate
    // submissions that coalesce into a single queued primary, and a
    // Watch each. From here every connection sits in a live watch.
    let threads_before = thread_count();
    let setup_start = Instant::now();
    let mut sockets: Vec<TcpStream> = Vec::with_capacity(conns);
    let mut fingerprint = None;
    for _ in 0..conns {
        let mut stream = handshake(&addr, "watchers");
        let fp = match fingerprint {
            Some(fp) => fp,
            None => *fingerprint.insert(upload(&mut stream, &watch_trace)),
        };
        write_message(
            &mut stream,
            &Message::Submit {
                fingerprint: fp,
                priority: Priority::Normal,
                deadline_ms: None,
                trace_id: None,
            },
        )
        .expect("submit");
        let job = match read_message(&mut stream, MAX_FRAME).expect("submit answered") {
            Message::SubmitAck { job } => job,
            other => panic!("expected SubmitAck, got {other:?}"),
        };
        write_message(&mut stream, &Message::Watch { job }).expect("watch");
        sockets.push(stream);
    }
    let setup = setup_start.elapsed();
    let threads_after = thread_count();
    // + 1: the prober's connection is also open.
    assert_eq!(
        server.active_connections(),
        conns + 1,
        "all watchers admitted"
    );
    assert_eq!(
        threads_after, threads_before,
        "{conns} live watches must not add threads"
    );

    // Cache-hit latency through the reactor while all watchers idle.
    let mut latencies: Vec<Duration> = (0..probes)
        .map(|_| {
            let t0 = Instant::now();
            let job = prober.submit(&warm_trace).expect("admitted");
            let output = prober.wait(job).expect("watch").expect("cache answers");
            assert!(output.from_cache, "probe must hit the cache");
            t0.elapsed()
        })
        .collect();
    latencies.sort();
    let (loaded_p50, loaded_p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    prober.close();

    // Release the worker and time the fan-out: reading sequentially
    // measures first-submission-to-last-Done wall clock, since reads of
    // already-delivered frames return immediately.
    let fanout_start = Instant::now();
    gate.released.store(true, Ordering::SeqCst);
    let _ = service.wait(gate_job);
    for stream in sockets.iter_mut() {
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        loop {
            match read_message(stream, MAX_FRAME).expect("event stream") {
                Message::Event { .. } => {}
                Message::Done { result, .. } => {
                    assert!(result.is_ok(), "watched job failed");
                    break;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    let fanout = fanout_start.elapsed();
    drop(sockets);
    server.shutdown(Duration::from_secs(10));
    ConnScalingCell {
        conns,
        setup,
        threads_before,
        threads_after,
        loaded_p50,
        loaded_p99,
        fanout,
    }
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "net_throughput",
        "beer-wire v1 over loopback: jobs/sec and cache-hit latency",
        "dedup decouples wire throughput from solver cost; remote cache hits stay sub-ms",
    );

    let k = scale.pick3(8, 8, 16);
    let pool = scale.pick3(2, 8, 16);
    let dedup_jobs_each = scale.pick3(4, 16, 48);
    let raw_jobs_each = scale.pick3(2, 4, 8);
    let cache_probes = scale.pick3(32, 256, 1024);
    let client_counts = [1usize, 8, 64];

    let codes = distinct_codes(pool, k, 0x5EE7);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
    println!(
        "k = {k}, {pool} distinct profiles, {dedup_jobs_each} dedup / {raw_jobs_each} raw jobs \
         per client\n"
    );

    let mut csv = CsvArtifact::new(
        "net_throughput",
        &[
            "mode",
            "clients",
            "jobs",
            "unique_profiles",
            "wall_ms",
            "jobs_per_sec",
            "solves",
            "coalesced",
            "cache_hits",
        ],
    );
    println!(
        "{:>6} | {:>8} {:>6} {:>9} {:>11} {:>7} {:>9} {:>10}",
        "mode", "clients", "jobs", "wall", "jobs/sec", "solves", "coalesced", "cache hits"
    );
    for &clients in &client_counts {
        for raw in [false, true] {
            let jobs_each = if raw { raw_jobs_each } else { dedup_jobs_each };
            // Raw mode: every (client, job) pair gets its own profile, so
            // nothing dedups and every submission pays upload + solve.
            let (cell_codes, cell_traces) = if raw {
                let codes = distinct_codes(clients * jobs_each, k, 0xC0DE + clients as u64);
                let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
                (codes, traces)
            } else {
                (codes.clone(), traces.clone())
            };
            // A fresh service + server per cell: cold caches, clean counters.
            let service = Arc::new(
                RecoveryService::start(
                    ServiceConfig::new().with_queue_capacity(clients * jobs_each + 16),
                )
                .expect("start service"),
            );
            let server = NetServer::bind(
                Arc::clone(&service),
                "127.0.0.1:0",
                NetServerConfig::new().with_max_connections(clients + 8),
            )
            .expect("bind server");
            let addr = server.local_addr().to_string();
            let stats = drive(
                &service,
                &addr,
                clients,
                jobs_each,
                &cell_codes,
                &cell_traces,
            );
            let mode = if raw { "raw" } else { "dedup" };
            let jobs_per_sec = stats.jobs as f64 / stats.wall.as_secs_f64();
            if !raw {
                assert_eq!(stats.solves, pool.min(stats.jobs), "one solve per profile");
            } else {
                assert_eq!(stats.solves, stats.jobs, "raw mode solves everything");
            }
            println!(
                "{:>6} | {:>8} {:>6} {:>9} {:>11.1} {:>7} {:>9} {:>10}",
                mode,
                clients,
                stats.jobs,
                fmt_duration(stats.wall),
                jobs_per_sec,
                stats.solves,
                stats.coalesced,
                stats.cache_hits,
            );
            csv.row_display(&[
                mode.to_string(),
                clients.to_string(),
                stats.jobs.to_string(),
                if raw { stats.jobs } else { pool }.to_string(),
                format!("{:.3}", stats.wall.as_secs_f64() * 1e3),
                format!("{jobs_per_sec:.1}"),
                stats.solves.to_string(),
                stats.coalesced.to_string(),
                stats.cache_hits.to_string(),
            ]);
            server.shutdown(Duration::from_secs(5));
        }
    }

    // Remote cache-hit latency: a warm server answering repeats from its
    // registry, one full submit→watch→done exchange per probe.
    let service = Arc::new(
        RecoveryService::start(ServiceConfig::new().with_queue_capacity(pool + 16))
            .expect("start warm service"),
    );
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new())
        .expect("bind warm server");
    let addr = server.local_addr().to_string();
    let _ = drive(&service, &addr, 1, pool, &codes, &traces); // warm every profile
    let mut prober = Client::connect(&addr, "prober", "").expect("prober connects");
    let mut latencies: Vec<Duration> = (0..cache_probes)
        .map(|i| {
            let t0 = Instant::now();
            let job = prober.submit(&traces[i % pool]).expect("admitted");
            let output = prober
                .wait(job)
                .expect("watch completes")
                .expect("cache answers");
            assert!(output.from_cache, "warm server must answer from cache");
            t0.elapsed()
        })
        .collect();
    prober.close();
    latencies.sort();
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    println!(
        "\nremote cache-hit latency over {cache_probes} probes: p50 = {}, p99 = {}",
        fmt_duration(p50),
        fmt_duration(p99)
    );
    csv.meta("cache_probes", cache_probes);
    csv.meta("hit_p50_us", p50.as_micros());
    csv.meta("hit_p99_us", p99.as_micros());
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();
    server.shutdown(Duration::from_secs(5));

    // Connection scaling: live watches by the hundreds or thousands on
    // one reactor, zero extra threads, flat cache-hit latency.
    let conn_counts: &[usize] = scale.pick3(&[256], &[256, 1024], &[256, 1024, 4096]);
    let conn_probes = scale.pick3(32, 128, 256);
    let _ = raise_nofile_limit();
    println!(
        "\nconnection scaling ({conn_probes} loaded cache probes per cell):\n\
         {:>6} | {:>9} {:>8} {:>12} {:>12} {:>9}",
        "conns", "setup", "threads", "loaded p50", "loaded p99", "fanout"
    );
    let mut conn_csv = CsvArtifact::new(
        "net_conn_scaling",
        &[
            "conns",
            "setup_ms",
            "threads_before",
            "threads_after",
            "loaded_hit_p50_us",
            "loaded_hit_p99_us",
            "fanout_ms",
        ],
    );
    for &conns in conn_counts {
        let cell = conn_scaling_cell(conns, conn_probes);
        println!(
            "{:>6} | {:>9} {:>8} {:>12} {:>12} {:>9}",
            cell.conns,
            fmt_duration(cell.setup),
            format!("+{}", cell.threads_after - cell.threads_before),
            fmt_duration(cell.loaded_p50),
            fmt_duration(cell.loaded_p99),
            fmt_duration(cell.fanout),
        );
        conn_csv.row_display(&[
            cell.conns.to_string(),
            format!("{:.3}", cell.setup.as_secs_f64() * 1e3),
            cell.threads_before.to_string(),
            cell.threads_after.to_string(),
            cell.loaded_p50.as_micros().to_string(),
            cell.loaded_p99.as_micros().to_string(),
            format!("{:.3}", cell.fanout.as_secs_f64() * 1e3),
        ]);
    }
    conn_csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    conn_csv.write();
    println!("\ntotal wall clock: {}", fmt_duration(start.elapsed()));
}
