//! Network scale proof: jobs/sec and cache-hit latency through the full
//! `beer-wire v1` stack — real TCP clients over loopback against one
//! `NetServer`-fronted service.
//!
//! Two modes per client count (1 / 8 / 64):
//!
//! * **dedup** — clients submit traces drawn from a small pool of
//!   distinct profiles (the paper's "manufacturers reuse a few ECC
//!   functions" scenario): in-flight duplicates coalesce server-side and
//!   completed ones hit the registry cache, so wire throughput decouples
//!   from solver cost. Repeat submissions are fingerprint-only exchanges
//!   (no re-upload).
//! * **raw** — every submission is a distinct profile (unique
//!   fingerprint): each pays a chunked upload and a full recovery,
//!   measuring the end-to-end solve path through the network edge.
//!
//! A final section times submit→done latency for pure cache hits over
//! the wire (p50 / p99): the remote answer path a restarted server
//! serves from its replayed registry.

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::collect::CollectionPlan;
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::PatternSet;
use beer_core::trace::ProfileTrace;
use beer_ecc::{equivalence, hamming, LinearCode};
use beer_net::{Client, NetServer, NetServerConfig};
use beer_service::{RecoveryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalence::equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

struct RunStats {
    jobs: usize,
    wall: Duration,
    solves: usize,
    coalesced: u64,
    cache_hits: u64,
}

/// Drives `clients` real TCP connections through `jobs_each` submissions
/// each and waits for every result; panics on any wrong answer.
fn drive(
    service: &Arc<RecoveryService>,
    addr: &str,
    clients: usize,
    jobs_each: usize,
    codes: &[LinearCode],
    traces: &[ProfileTrace],
) -> RunStats {
    let before = service.stats();
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let codes = codes.to_vec();
            let traces = traces.to_vec();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(&addr, format!("tenant-{c}"), "").expect("connect");
                // Pipeline: submit everything, then collect everything —
                // the same shape a batch-submitting tenant drives.
                let jobs: Vec<_> = (0..jobs_each)
                    .map(|j| {
                        // Disjoint slices per client: in raw mode (one
                        // trace per job overall) no index is shared, in
                        // dedup mode the small pool cycles.
                        let which = (c * jobs_each + j) % traces.len();
                        (which, client.submit(&traces[which]).expect("admitted"))
                    })
                    .collect();
                for (which, job) in jobs {
                    let output = client
                        .wait(job)
                        .expect("watch completes")
                        .expect("clean profile solves");
                    let code = output.outcome.unique_code().expect("unique recovery");
                    assert!(
                        equivalence::equivalent(code, &codes[which]),
                        "remote answer disagrees with the profiled code"
                    );
                }
                client.close();
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let wall = start.elapsed();
    let after = service.stats();
    RunStats {
        jobs: clients * jobs_each,
        wall,
        solves: (after.completed - before.completed) as usize
            - (after.coalesced - before.coalesced) as usize
            - (after.cache_hits - before.cache_hits) as usize,
        coalesced: after.coalesced - before.coalesced,
        cache_hits: after.cache_hits - before.cache_hits,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "net_throughput",
        "beer-wire v1 over loopback: jobs/sec and cache-hit latency",
        "dedup decouples wire throughput from solver cost; remote cache hits stay sub-ms",
    );

    let k = scale.pick3(8, 8, 16);
    let pool = scale.pick3(2, 8, 16);
    let dedup_jobs_each = scale.pick3(4, 16, 48);
    let raw_jobs_each = scale.pick3(2, 4, 8);
    let cache_probes = scale.pick3(32, 256, 1024);
    let client_counts = [1usize, 8, 64];

    let codes = distinct_codes(pool, k, 0x5EE7);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
    println!(
        "k = {k}, {pool} distinct profiles, {dedup_jobs_each} dedup / {raw_jobs_each} raw jobs \
         per client\n"
    );

    let mut csv = CsvArtifact::new(
        "net_throughput",
        &[
            "mode",
            "clients",
            "jobs",
            "unique_profiles",
            "wall_ms",
            "jobs_per_sec",
            "solves",
            "coalesced",
            "cache_hits",
        ],
    );
    println!(
        "{:>6} | {:>8} {:>6} {:>9} {:>11} {:>7} {:>9} {:>10}",
        "mode", "clients", "jobs", "wall", "jobs/sec", "solves", "coalesced", "cache hits"
    );
    for &clients in &client_counts {
        for raw in [false, true] {
            let jobs_each = if raw { raw_jobs_each } else { dedup_jobs_each };
            // Raw mode: every (client, job) pair gets its own profile, so
            // nothing dedups and every submission pays upload + solve.
            let (cell_codes, cell_traces) = if raw {
                let codes = distinct_codes(clients * jobs_each, k, 0xC0DE + clients as u64);
                let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
                (codes, traces)
            } else {
                (codes.clone(), traces.clone())
            };
            // A fresh service + server per cell: cold caches, clean counters.
            let service = Arc::new(
                RecoveryService::start(
                    ServiceConfig::new().with_queue_capacity(clients * jobs_each + 16),
                )
                .expect("start service"),
            );
            let server = NetServer::bind(
                Arc::clone(&service),
                "127.0.0.1:0",
                NetServerConfig::new().with_max_connections(clients + 8),
            )
            .expect("bind server");
            let addr = server.local_addr().to_string();
            let stats = drive(
                &service,
                &addr,
                clients,
                jobs_each,
                &cell_codes,
                &cell_traces,
            );
            let mode = if raw { "raw" } else { "dedup" };
            let jobs_per_sec = stats.jobs as f64 / stats.wall.as_secs_f64();
            if !raw {
                assert_eq!(stats.solves, pool.min(stats.jobs), "one solve per profile");
            } else {
                assert_eq!(stats.solves, stats.jobs, "raw mode solves everything");
            }
            println!(
                "{:>6} | {:>8} {:>6} {:>9} {:>11.1} {:>7} {:>9} {:>10}",
                mode,
                clients,
                stats.jobs,
                fmt_duration(stats.wall),
                jobs_per_sec,
                stats.solves,
                stats.coalesced,
                stats.cache_hits,
            );
            csv.row_display(&[
                mode.to_string(),
                clients.to_string(),
                stats.jobs.to_string(),
                if raw { stats.jobs } else { pool }.to_string(),
                format!("{:.3}", stats.wall.as_secs_f64() * 1e3),
                format!("{jobs_per_sec:.1}"),
                stats.solves.to_string(),
                stats.coalesced.to_string(),
                stats.cache_hits.to_string(),
            ]);
            server.shutdown(Duration::from_secs(5));
        }
    }

    // Remote cache-hit latency: a warm server answering repeats from its
    // registry, one full submit→watch→done exchange per probe.
    let service = Arc::new(
        RecoveryService::start(ServiceConfig::new().with_queue_capacity(pool + 16))
            .expect("start warm service"),
    );
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new())
        .expect("bind warm server");
    let addr = server.local_addr().to_string();
    let _ = drive(&service, &addr, 1, pool, &codes, &traces); // warm every profile
    let mut prober = Client::connect(&addr, "prober", "").expect("prober connects");
    let mut latencies: Vec<Duration> = (0..cache_probes)
        .map(|i| {
            let t0 = Instant::now();
            let job = prober.submit(&traces[i % pool]).expect("admitted");
            let output = prober
                .wait(job)
                .expect("watch completes")
                .expect("cache answers");
            assert!(output.from_cache, "warm server must answer from cache");
            t0.elapsed()
        })
        .collect();
    prober.close();
    latencies.sort();
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    println!(
        "\nremote cache-hit latency over {cache_probes} probes: p50 = {}, p99 = {}",
        fmt_duration(p50),
        fmt_duration(p99)
    );
    csv.meta("cache_probes", cache_probes);
    csv.meta("hit_p50_us", p50.as_micros());
    csv.meta("hit_p99_us", p99.as_micros());
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();
    server.shutdown(Duration::from_secs(5));
    println!("\ntotal wall clock: {}", fmt_duration(start.elapsed()));
}
