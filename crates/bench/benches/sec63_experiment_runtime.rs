//! §6.3: analytical experiment-runtime model.
//!
//! Expected numbers (paper): the 2–22-minute sweep costs a combined 4.2
//! hours per chip, dominated entirely by waiting for retention errors;
//! reading a 2 GiB LPDDR4-3200 chip takes ~168 ms; parallelizing across
//! same-model chips divides the runtime.

use beer_bench::{banner, fmt_duration, CsvArtifact};
use beer_core::runtime::{estimate_runtime, paper_sweep_schedule, BusModel};

fn main() {
    banner(
        "sec6.3",
        "analytical experiment runtime",
        "4.2 h retention wait for the 2-22 min sweep; ~168 ms per chip read",
    );
    let bus = BusModel::lpddr4_3200_2gib();
    println!(
        "chip I/O model: 2 GiB @ LPDDR4-3200, full sweep = {}\n",
        fmt_duration(bus.full_sweep())
    );

    let mut csv = CsvArtifact::new(
        "sec63_experiment_runtime",
        &[
            "schedule",
            "tests",
            "retention_wait_s",
            "chip_io_s",
            "total_s",
            "parallel_21_chips_s",
        ],
    );

    let schedules: Vec<(&str, Vec<f64>)> = vec![
        ("paper 2-22 min sweep", paper_sweep_schedule()),
        ("single 30 min probe x2 (5.1.1)", vec![1800.0, 1800.0]),
        (
            "10 s - 10 min layout sweep (5.1.2)",
            (0..8).map(|i| 10.0 * 1.8f64.powi(i)).collect(),
        ),
    ];
    println!(
        "{:<36} {:>6} {:>14} {:>10} {:>12} {:>14}",
        "schedule", "tests", "retention", "chip I/O", "total", "over 21 chips"
    );
    for (name, schedule) in &schedules {
        let rt = estimate_runtime(schedule, &bus);
        println!(
            "{name:<36} {:>6} {:>14} {:>10} {:>12} {:>14}",
            rt.tests,
            fmt_duration(rt.retention_wait),
            fmt_duration(rt.chip_io),
            fmt_duration(rt.total()),
            fmt_duration(rt.parallelized_over(21)),
        );
        csv.row_display(&[
            name.to_string(),
            rt.tests.to_string(),
            format!("{:.1}", rt.retention_wait.as_secs_f64()),
            format!("{:.3}", rt.chip_io.as_secs_f64()),
            format!("{:.1}", rt.total().as_secs_f64()),
            format!("{:.1}", rt.parallelized_over(21).as_secs_f64()),
        ]);
    }
    csv.write();

    let paper = estimate_runtime(&paper_sweep_schedule(), &bus);
    let hours = paper.retention_wait.as_secs_f64() / 3600.0;
    println!("\npaper sweep retention wait: {hours:.2} h (paper reports 4.2 h)");
    let io_ms = bus.full_sweep().as_secs_f64() * 1000.0;
    println!("full chip read: {io_ms:.0} ms (paper reports 168 ms)");
    let holds = (hours - 4.2).abs() < 0.01 && (io_ms - 168.0).abs() < 1.0;
    println!("\nshape {}", if holds { "HOLDS" } else { "VIOLATED" });
}
