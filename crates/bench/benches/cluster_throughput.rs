//! Cluster scale proof: unique-solve throughput across 1 / 2 / 4
//! fingerprint-sharded nodes over loopback, plus the cross-node dedup
//! guarantee.
//!
//! * **scaling** — a fixed batch of distinct profiles (unique
//!   fingerprints, so nothing dedups and every job pays a full
//!   recovery) is submitted through a ring-aware `ClusterClient` that
//!   routes each trace to its owning node. Each cell launches a fresh
//!   N-node cluster with the same per-node worker count, so the fleet's
//!   total solver capacity grows linearly with N and near-linear
//!   throughput scaling falls out wherever the machine has cores to
//!   back it.
//! * **duplicate** — the same profile submitted through *different*
//!   nodes (one ring-routed to the owner, one forwarded by a
//!   non-owner) must coalesce to exactly one solve with both clients
//!   receiving the identical terminal result.
//!
//! Scaling is a property of the machine as much as of the cluster: on
//! a single core, N loopback nodes share one CPU and parity is the
//! honest ceiling. The artifact therefore records `cpu_cores` and
//! reports **efficiency** — speedup normalized by `min(nodes,
//! cpu_cores)` — which `ci/check_cluster_scaling.py` gates against the
//! checked-in baseline: on a 1-core box it asserts sharding adds no
//! serialization penalty, on a multi-core runner it demands the real
//! near-linear win (see EXPERIMENTS.md §cluster_throughput).

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_cluster::{Cluster, ClusterClient, ClusterJob};
use beer_core::collect::CollectionPlan;
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::PatternSet;
use beer_core::trace::ProfileTrace;
use beer_ecc::{equivalence, hamming, LinearCode};
use beer_net::{Client, WireOutcome};
use beer_service::{RecoveryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn distinct_codes(count: usize, k: usize, seed: u64) -> Vec<LinearCode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes: Vec<LinearCode> = Vec::new();
    while codes.len() < count {
        let candidate = hamming::random_sec(k, &mut rng);
        if !codes.iter().any(|c| equivalence::equivalent(c, &candidate)) {
            codes.push(candidate);
        }
    }
    codes
}

fn record_trace(code: &LinearCode) -> ProfileTrace {
    let patterns = PatternSet::OneTwo.patterns(code.k());
    let mut backend = AnalyticBackend::new(code.clone());
    ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
}

fn start_services(nodes: usize, workers: usize) -> Vec<Arc<RecoveryService>> {
    (0..nodes)
        .map(|_| {
            Arc::new(
                RecoveryService::start(ServiceConfig::new().with_workers(workers))
                    .expect("start service"),
            )
        })
        .collect()
}

fn assert_unique(result: beer_net::WireResult, expected: &LinearCode) {
    let output = result.expect("job solves");
    match output.outcome {
        WireOutcome::Unique(code) => assert!(
            equivalence::equivalent(&code, expected),
            "remote answer disagrees with the profiled code"
        ),
        other => panic!("expected a unique recovery, got {other:?}"),
    }
}

struct ScalingCell {
    nodes: usize,
    jobs: usize,
    wall: Duration,
    solves: u64,
    forwarded: u64,
    balance: Vec<usize>,
}

/// One scaling cell: a fresh `nodes`-node cluster solves every trace
/// exactly once, with the client pipelining ring-routed submissions
/// (submit everything, then collect everything).
fn scaling_cell(
    nodes: usize,
    workers_per_node: usize,
    codes: &[LinearCode],
    traces: &[ProfileTrace],
) -> ScalingCell {
    let cluster = Cluster::launch(start_services(nodes, workers_per_node)).expect("launch");
    let mut balance = vec![0usize; nodes];
    for trace in traces {
        let owner = &cluster.ring().owner(trace.fingerprint()).name;
        let index: usize = owner
            .strip_prefix("node-")
            .and_then(|s| s.parse().ok())
            .expect("launch names nodes node-{i}");
        balance[index] += 1;
    }

    let mut client = ClusterClient::connect(cluster.addrs(), "bench", "").expect("connect");
    let start = Instant::now();
    let jobs: Vec<ClusterJob> = traces
        .iter()
        .map(|trace| client.submit(trace).expect("admitted"))
        .collect();
    for (job, code) in jobs.iter().zip(codes) {
        assert_unique(client.wait(job).expect("watch completes"), code);
    }
    let wall = start.elapsed();

    let (mut solves, mut forwarded) = (0u64, 0u64);
    for node in cluster.nodes() {
        let stats = node.service().stats();
        solves += stats.completed - stats.coalesced - stats.cache_hits;
        forwarded += stats.forwarded_jobs;
    }
    cluster.shutdown(Duration::from_secs(5));
    ScalingCell {
        nodes,
        jobs: traces.len(),
        wall,
        solves,
        forwarded,
        balance,
    }
}

struct DuplicateCell {
    wall: Duration,
    solves: u64,
    forwarded: u64,
}

/// The cross-node dedup guarantee: `pairs` profiles are each submitted
/// twice through *different* nodes — once ring-routed to the owner,
/// once staged on and forwarded by the non-owner — and every pair must
/// coalesce to one solve with both watchers answered.
fn duplicate_cell(workers_per_node: usize, pairs: usize, k: usize) -> DuplicateCell {
    let cluster = Cluster::launch(start_services(2, workers_per_node)).expect("launch");
    let codes = distinct_codes(pairs, k, 0xD0B1E);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();

    let mut direct = ClusterClient::connect(cluster.addrs(), "direct", "").expect("connect");
    // One plain client per node: the duplicate goes to whichever node
    // does *not* own the trace, so it always crosses the ring.
    let mut detour: Vec<Client> = cluster
        .addrs()
        .into_iter()
        .map(|addr| Client::connect(addr, "detour", "").expect("connect"))
        .collect();

    let start = Instant::now();
    let mut jobs = Vec::with_capacity(pairs);
    for trace in &traces {
        let owner = &cluster.ring().owner(trace.fingerprint()).name;
        let non_owner = usize::from(owner == "node-0");
        let a = direct.submit(trace).expect("owner submit");
        detour[non_owner].upload_trace(trace).expect("stage trace");
        let b = detour[non_owner]
            .submit(trace)
            .expect("forwarded duplicate");
        jobs.push((a, non_owner, b));
    }
    for ((a, non_owner, b), code) in jobs.into_iter().zip(&codes) {
        assert_unique(direct.wait(&a).expect("direct terminal result"), code);
        assert_unique(detour[non_owner].wait(b).expect("detour terminal"), code);
    }
    let wall = start.elapsed();

    let (mut solves, mut forwarded) = (0u64, 0u64);
    for node in cluster.nodes() {
        let stats = node.service().stats();
        solves += stats.completed - stats.coalesced - stats.cache_hits;
        forwarded += stats.forwarded_jobs;
        assert_eq!(stats.forward_errors, 0, "clean run forwards cleanly");
    }
    cluster.shutdown(Duration::from_secs(5));
    DuplicateCell {
        wall,
        solves,
        forwarded,
    }
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "cluster_throughput",
        "fingerprint-sharded cluster over loopback: unique-solve scaling + cross-node dedup",
        "per-trace work is embarrassingly partitionable; dedup survives sharding",
    );

    let cpu_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // k = 16 even at smoke scale keeps the cells solve-bound (not
    // wire-bound), so a multi-core runner shows real scaling.
    let k = scale.pick3(16, 16, 24);
    let jobs = scale.pick3(16, 64, 256);
    let workers_per_node = 2;
    let dup_pairs = scale.pick3(4, 16, 32);
    let node_counts = [1usize, 2, 4];

    let codes = distinct_codes(jobs, k, 0xC1A5);
    let traces: Vec<ProfileTrace> = codes.iter().map(record_trace).collect();
    println!(
        "k = {k}, {jobs} distinct profiles, {workers_per_node} workers/node, \
         {cpu_cores} cpu cores\n"
    );

    let mut csv = CsvArtifact::new(
        "cluster_throughput",
        &[
            "nodes",
            "jobs",
            "wall_ms",
            "jobs_per_sec",
            "solves",
            "forwarded",
            "speedup",
            "efficiency",
            "balance",
        ],
    );
    println!(
        "{:>5} | {:>6} {:>9} {:>11} {:>7} {:>9} {:>8} {:>10}  balance",
        "nodes", "jobs", "wall", "jobs/sec", "solves", "forwarded", "speedup", "efficiency"
    );
    let mut single_node_rate = None;
    let mut efficiencies = Vec::new();
    for &nodes in &node_counts {
        let cell = scaling_cell(nodes, workers_per_node, &codes, &traces);
        assert_eq!(
            cell.solves, cell.jobs as u64,
            "every unique profile solves once"
        );
        assert_eq!(
            cell.forwarded, 0,
            "a ring-aware client routes straight to owners"
        );
        let rate = cell.jobs as f64 / cell.wall.as_secs_f64();
        let base = *single_node_rate.get_or_insert(rate);
        let speedup = rate / base;
        // Normalize by the parallelism the machine can actually grant:
        // on one core N nodes can at best tie, on >= N cores near-linear
        // scaling is the claim under test.
        let efficiency = speedup / nodes.min(cpu_cores) as f64;
        efficiencies.push((nodes, speedup, efficiency));
        let balance = cell
            .balance
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:>5} | {:>6} {:>9} {:>11.1} {:>7} {:>9} {:>7.2}x {:>10.2}  {}",
            cell.nodes,
            cell.jobs,
            fmt_duration(cell.wall),
            rate,
            cell.solves,
            cell.forwarded,
            speedup,
            efficiency,
            balance,
        );
        csv.row(&[
            cell.nodes.to_string(),
            cell.jobs.to_string(),
            format!("{:.3}", cell.wall.as_secs_f64() * 1e3),
            format!("{rate:.1}"),
            cell.solves.to_string(),
            cell.forwarded.to_string(),
            format!("{speedup:.3}"),
            format!("{efficiency:.3}"),
            balance,
        ]);
    }

    // Cross-node duplicates: every pair coalesces to one solve, both
    // watchers get the terminal answer (asserted inside the cell).
    let dup = duplicate_cell(workers_per_node, dup_pairs, k);
    assert_eq!(
        dup.solves, dup_pairs as u64,
        "each duplicated profile solves exactly once"
    );
    assert_eq!(
        dup.forwarded, dup_pairs as u64,
        "every duplicate crossed the ring"
    );
    println!(
        "\ncross-node duplicates: {dup_pairs} pairs in {}, {} solves ({} forwarded) — \
         exactly one solve per profile, both watchers answered",
        fmt_duration(dup.wall),
        dup.solves,
        dup.forwarded,
    );

    csv.meta("cpu_cores", cpu_cores);
    csv.meta("workers_per_node", workers_per_node);
    for (nodes, speedup, efficiency) in &efficiencies {
        if *nodes > 1 {
            csv.meta(&format!("speedup_{nodes}node"), format!("{speedup:.3}"));
            csv.meta(
                &format!("efficiency_{nodes}node"),
                format!("{efficiency:.3}"),
            );
        }
    }
    csv.meta("duplicate_pairs", dup_pairs);
    csv.meta("duplicate_solves", dup.solves);
    csv.meta("duplicate_forwarded", dup.forwarded);
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();
    println!("\ntotal wall clock: {}", fmt_duration(start.elapsed()));
}
