//! Figure 4: distribution of per-bit miscorrection probability mass
//! (aggregated over all 1-CHARGED patterns) across the refresh-window
//! sweep, for a representative manufacturer-B chip — demonstrating that a
//! simple threshold separates real miscorrections from noise.
//!
//! Expected shape (paper): per-bit masses are bimodal — identically zero
//! or clearly nonzero with tight distributions across windows — so a 1e-3
//! threshold separates them with margin.

use beer_bench::{banner, CsvArtifact, Scale};
use beer_core::collect::{ChipKnowledge, CollectionPlan};
use beer_core::pattern::PatternSet;
use beer_core::{collect_with, ChipBackend, EngineOptions};
use beer_dram::{
    CellType, ChipConfig, DramInterface, Geometry, RetentionModel, SimChip, TransientNoise,
};
use beer_einsim::stats::Summary;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig4",
        "per-bit miscorrection probability mass across the tREFW sweep",
        "bimodal: zero vs clearly-nonzero, separable by a 1e-3 threshold",
    );
    let k_bytes = scale.pick(4, 16);
    let geometry = scale.pick(Geometry::new(1, 128, 256), Geometry::new(1, 512, 1024));
    let chip = SimChip::new(
        ChipConfig::lpddr4_like(beer_ecc::design::Manufacturer::B, 0, 0xF4)
            .with_geometry(geometry)
            .with_word_bytes(k_bytes)
            .with_noise(TransientNoise {
                flip_probability: 1e-7,
            }),
    );
    let k = chip.k();
    let knowledge = ChipKnowledge::uniform(
        chip.config().word_layout,
        CellType::True,
        chip.geometry().total_rows(),
    );
    let mut backend = ChipBackend::new(Box::new(chip), knowledge);
    let patterns = PatternSet::One.patterns(k);

    // One collection per refresh window: each contributes one sample of
    // the per-bit probability-mass vector (the distributions of Fig. 4).
    let model = RetentionModel::paper_calibrated(0);
    let ber_targets = [1e-3, 3e-3, 1e-2, 0.03, 0.1, 0.2, 0.3, 0.4, 0.499];
    let mut per_bit_samples: Vec<Vec<f64>> = vec![Vec::new(); k];
    for &ber in &ber_targets {
        let plan = CollectionPlan {
            trefw_schedule: vec![model.window_for_ber(ber, 80.0)],
            celsius: 80.0,
            trials_per_step: scale.pick(4, 8),
        };
        let profile = collect_with(&mut backend, &patterns, &plan, &EngineOptions::default());
        let mass = profile.per_bit_probability_mass();
        for (bit, &m) in mass.iter().enumerate() {
            per_bit_samples[bit].push(m);
        }
    }

    let threshold = 1e-3;
    let mut csv = CsvArtifact::new(
        "fig04_threshold_filter",
        &["bit", "min", "q1", "median", "q3", "max", "above_threshold"],
    );
    println!(
        "\n{:>4} {:>9} {:>9} {:>9} {:>9} {:>9}  class",
        "bit", "min", "q1", "median", "q3", "max"
    );
    let mut nonzero_min_median = f64::INFINITY;
    let mut zero_max: f64 = 0.0;
    for (bit, samples) in per_bit_samples.iter().enumerate() {
        let s = Summary::of(samples);
        let above = s.median >= threshold;
        println!(
            "{bit:>4} {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5}  {}",
            s.min,
            s.q1,
            s.median,
            s.q3,
            s.max,
            if above { "MISCORRECTION" } else { "-" }
        );
        csv.row_display(&[
            bit.to_string(),
            format!("{:.6}", s.min),
            format!("{:.6}", s.q1),
            format!("{:.6}", s.median),
            format!("{:.6}", s.q3),
            format!("{:.6}", s.max),
            above.to_string(),
        ]);
        if above {
            nonzero_min_median = nonzero_min_median.min(s.median);
        } else {
            zero_max = zero_max.max(s.max);
        }
    }
    csv.write();

    // Separation criterion: the *median* mass of every miscorrection-class
    // bit must clear both the threshold and everything the zero class ever
    // shows. (The per-window minimum of a real bit can be zero at the
    // lowest-BER window, where quick-scale sample counts are sparse — the
    // paper's million-word samples never get there; see EXPERIMENTS.md.)
    println!("\nthreshold: {threshold:e}");
    println!("smallest median among miscorrection-class bits: {nonzero_min_median:.5}");
    println!("largest mass ever seen among zero-class bits:   {zero_max:.5}");
    let separated = nonzero_min_median > zero_max && nonzero_min_median > threshold;
    println!(
        "\nshape {}: the two classes are {}",
        if separated { "HOLDS" } else { "UNCLEAR" },
        if separated {
            "distinctly separated — the threshold filter is robust"
        } else {
            "overlapping"
        }
    );
}
