//! Observation-encoding comparison: subset representatives (`2^{t−1}`
//! complement classes) versus the polynomial selector/dual-witness
//! circuit, on the same profiles.
//!
//! Expected shape: for the paper's low orders (t ≤ 3) the subset encoding
//! is smaller and at least as fast; past the crossover the subset CNF
//! grows exponentially in t while the polynomial encoding stays `O(p·t)`
//! per fact — and beyond [`MAX_SUBSET_ORDER`](beer_core::solve::MAX_SUBSET_ORDER)
//! only the polynomial encoding exists at all (the §5.2 RANDOM and
//! ALL-charged patterns at k = 128 are order ~64 and 128).

use beer_bench::{banner, fmt_duration, CsvArtifact, Scale};
use beer_core::engine::AnalyticBackend;
use beer_core::pattern::{random_t_charged, ChargedSet, PatternSet};
use beer_core::recovery::{RecoveryConfig, RecoveryError, RecoveryReport};
use beer_core::solve::{
    BeerSolverOptions, ObservationEncoding, SolveError, SolveReport, MAX_SUBSET_ORDER,
};
use beer_ecc::{hamming, LinearCode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn options(encoding: ObservationEncoding) -> BeerSolverOptions {
    BeerSolverOptions {
        max_solutions: 16,
        verify_solutions: false,
        encoding,
        // Isolate the observation encodings from the preprocessing pass.
        preprocess: false,
        ..BeerSolverOptions::default()
    }
}

/// One-shot recovery of `code` from `patterns` under the given encoding,
/// through a `RecoverySession` over the code's analytic backend.
fn session_solve(
    code: &LinearCode,
    patterns: &[ChargedSet],
    encoding: ObservationEncoding,
) -> Result<RecoveryReport, RecoveryError> {
    let mut backend = AnalyticBackend::new(code.clone());
    RecoveryConfig::new()
        .with_parity_bits(code.parity_bits())
        .with_batches(vec![patterns.to_vec()])
        .with_solver_options(options(encoding))
        .session(&mut backend)
        .run_to_completion()
}

fn check_of(report: RecoveryReport) -> SolveReport {
    report.last_check.expect("one round always runs")
}

fn main() {
    let start = Instant::now();
    let scale = Scale::from_env();
    banner(
        "solver_encodings",
        "subset-representative vs polynomial observation encodings",
        "subset wins at t <= 3; polynomial flat in t, sole option past t = 16",
    );

    let k = scale.pick3(10, 14, 20);
    let orders: Vec<usize> = scale.pick3(vec![2, 4, 6], vec![1, 2, 3, 4, 5, 6], {
        let mut v: Vec<usize> = (1..=8).collect();
        v.extend([10, 12]);
        v
    });
    let codes_per_order = scale.pick3(1, 3, 8);
    let patterns_per_order = scale.pick3(8, 16, 32);

    let mut csv = CsvArtifact::new(
        "solver_encodings",
        &[
            "t",
            "k",
            "subset_vars",
            "subset_clauses",
            "subset_us",
            "linear_vars",
            "linear_clauses",
            "linear_us",
            "agree",
        ],
    );
    println!("k = {k}, {codes_per_order} codes and {patterns_per_order} patterns per order\n");
    println!(
        "{:>3} | {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10} | {:>5}",
        "t", "sub vars", "sub cls", "sub time", "lin vars", "lin cls", "lin time", "agree"
    );

    for &t in &orders {
        let mut subset_stats = (0usize, 0usize, 0u128);
        let mut linear_stats = (0usize, 0usize, 0u128);
        let mut agree = true;
        for ci in 0..codes_per_order {
            let mut rng = StdRng::seed_from_u64(0x5E_0000 + (t * 100 + ci) as u64);
            let code = hamming::random_sec(k, &mut rng);
            // 1-CHARGED anchors the instance; the t-CHARGED patterns under
            // test supply the facts whose encodings we compare.
            let mut patterns = PatternSet::One.patterns(k);
            patterns.extend(random_t_charged(
                k,
                t,
                patterns_per_order,
                0xBEE5 + t as u64,
            ));

            let sub = check_of(
                session_solve(&code, &patterns, ObservationEncoding::SubsetReps)
                    .expect("t <= 16 encodes under subset representatives"),
            );
            let lin = check_of(
                session_solve(&code, &patterns, ObservationEncoding::Linear)
                    .expect("the polynomial encoding accepts any order"),
            );
            agree &= sub.solutions.len() == lin.solutions.len();
            subset_stats = (
                subset_stats.0.max(sub.num_vars),
                subset_stats.1.max(sub.num_clauses),
                subset_stats.2 + sub.total_time.as_micros(),
            );
            linear_stats = (
                linear_stats.0.max(lin.num_vars),
                linear_stats.1.max(lin.num_clauses),
                linear_stats.2 + lin.total_time.as_micros(),
            );
        }
        let sub_us = subset_stats.2 / codes_per_order as u128;
        let lin_us = linear_stats.2 / codes_per_order as u128;
        println!(
            "{t:>3} | {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10} | {:>5}",
            subset_stats.0,
            subset_stats.1,
            fmt_duration(std::time::Duration::from_micros(sub_us as u64)),
            linear_stats.0,
            linear_stats.1,
            fmt_duration(std::time::Duration::from_micros(lin_us as u64)),
            agree,
        );
        csv.row_display(&[
            t.to_string(),
            k.to_string(),
            subset_stats.0.to_string(),
            subset_stats.1.to_string(),
            sub_us.to_string(),
            linear_stats.0.to_string(),
            linear_stats.1.to_string(),
            lin_us.to_string(),
            agree.to_string(),
        ]);
        assert!(agree, "encodings disagreed at t = {t}");
    }
    csv.meta(
        "wall_clock_s",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );
    csv.write();

    // Orders only the polynomial encoding can express at all.
    println!("\nhigh orders (subset-representative encoding refuses, polynomial solves):");
    let high_orders = scale.pick3(vec![24], vec![24, 48], vec![24, 48, 96]);
    for t in high_orders {
        let k = (t + 4).max(k);
        let mut rng = StdRng::seed_from_u64(0x5EF_0000 + t as u64);
        let code = hamming::random_sec(k, &mut rng);
        let mut patterns = PatternSet::One.patterns(k);
        patterns.extend(random_t_charged(k, t, 4, 0xF00D + t as u64));
        let refused = session_solve(&code, &patterns, ObservationEncoding::SubsetReps);
        assert!(
            matches!(
                refused,
                Err(RecoveryError::Solve(SolveError::PatternOrderUnsupported { order, .. }))
                    if order == t
            ),
            "t = {t} must exceed MAX_SUBSET_ORDER = {MAX_SUBSET_ORDER}"
        );
        let solve_start = Instant::now();
        let lin = check_of(
            session_solve(&code, &patterns, ObservationEncoding::Linear)
                .expect("polynomial encoding"),
        );
        println!(
            "  t = {t:>3} (k = {k:>3}): subset -> typed error, linear -> {} solution(s), \
             {} vars / {} clauses in {}",
            lin.solutions.len(),
            lin.num_vars,
            lin.num_clauses,
            fmt_duration(solve_start.elapsed()),
        );
        assert!(!lin.solutions.is_empty(), "true code must be found");
    }
    println!("\ntotal wall clock: {}", fmt_duration(start.elapsed()));
}
