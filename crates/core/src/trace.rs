//! Recorded collection traces and the replay backend.
//!
//! A [`ProfileTrace`] captures everything a collection run observed —
//! per-unit miscorrection counts and trial totals — in a plain-text format
//! that can be saved, shipped, and replayed. [`ReplayBackend`] turns a
//! trace back into a [`ProfileSource`], so the whole pipeline (threshold
//! filtering, solving, BEEP) runs against archived experiments exactly as
//! it runs against live chips: profile a fleet once, re-analyze forever.

use crate::collect::CollectionPlan;
use crate::engine::ProfileSource;
use crate::pattern::ChargedSet;
use crate::profile::MiscorrectionProfile;
use std::sync::Arc;

/// The observations of one work unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitTrace {
    /// `(pattern index, bit, count)` miscorrection records.
    pub miscorrections: Vec<(usize, usize, u64)>,
    /// `(pattern index, trials)` records.
    pub trials: Vec<(usize, u64)>,
}

/// A complete recorded collection run (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileTrace {
    /// Dataword length.
    pub k: usize,
    /// The pattern list the trace was recorded over, in index order.
    pub patterns: Vec<ChargedSet>,
    /// Per-unit observations, in unit order.
    pub units: Vec<UnitTrace>,
}

impl ProfileTrace {
    /// Records a trace by running every unit of `source` serially.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or disagrees with `source.k()`.
    pub fn record(
        source: &mut dyn ProfileSource,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
    ) -> ProfileTrace {
        let k = crate::collect::validate_patterns(patterns);
        assert_eq!(k, source.k(), "pattern/source dataword mismatch");
        source.begin_collection();
        let num_units = source.num_units(patterns, plan);
        let mut units = Vec::with_capacity(num_units);
        for unit in 0..num_units {
            let mut scratch = MiscorrectionProfile::new(k, patterns.to_vec());
            source.run_unit(unit, patterns, plan, &mut scratch);
            let mut ut = UnitTrace::default();
            for pi in 0..patterns.len() {
                for bit in 0..k {
                    let c = scratch.count(pi, bit);
                    if c > 0 {
                        ut.miscorrections.push((pi, bit, c));
                    }
                }
                let t = scratch.trials(pi);
                if t > 0 {
                    ut.trials.push((pi, t));
                }
            }
            units.push(ut);
        }
        // A recording consumes the source's sampling stream exactly like a
        // collection does.
        source.finish_collection(num_units);
        ProfileTrace {
            k,
            patterns: patterns.to_vec(),
            units,
        }
    }

    /// Serializes the trace to its line-based text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "beer-profile-trace v1");
        let _ = writeln!(out, "k {}", self.k);
        for p in &self.patterns {
            let bits: Vec<String> = p.bits().iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "pattern {}", bits.join(" "));
        }
        for unit in &self.units {
            let _ = writeln!(out, "unit");
            for &(pi, bit, count) in &unit.miscorrections {
                let _ = writeln!(out, "m {pi} {bit} {count}");
            }
            for &(pi, trials) in &unit.trials {
                let _ = writeln!(out, "t {pi} {trials}");
            }
        }
        out
    }

    /// Parses a trace from its text format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<ProfileTrace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace")?;
        if header.trim() != "beer-profile-trace v1" {
            return Err(format!("unknown trace header {header:?}"));
        }
        let mut k: Option<usize> = None;
        let mut patterns: Vec<ChargedSet> = Vec::new();
        let mut units: Vec<UnitTrace> = Vec::new();
        for (ln, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let tag = fields.next().expect("non-empty line has a field");
            let parse = |s: &str| -> Result<usize, String> {
                s.parse()
                    .map_err(|_| format!("line {}: bad number {s:?}", ln + 1))
            };
            match tag {
                "k" => {
                    if k.is_some() {
                        // A second k line mid-file would silently rescope
                        // every later pattern; reject it.
                        return Err(format!("line {}: duplicate k line", ln + 1));
                    }
                    let v = fields.next().ok_or(format!("line {}: missing k", ln + 1))?;
                    k = Some(parse(v)?);
                }
                "pattern" => {
                    if !units.is_empty() {
                        // Unit records index into the pattern list; growing
                        // it afterwards would renumber nothing and hide
                        // corrupt files.
                        return Err(format!(
                            "line {}: pattern declared after unit records",
                            ln + 1
                        ));
                    }
                    let k = k.ok_or(format!("line {}: pattern before k", ln + 1))?;
                    let mut bits: Vec<usize> = fields.map(parse).collect::<Result<_, _>>()?;
                    // Validate here — `ChargedSet::new` asserts, and a
                    // malformed file must yield Err, not a panic.
                    bits.sort_unstable();
                    if bits.windows(2).any(|w| w[0] == w[1]) {
                        return Err(format!("line {}: duplicate charged bit", ln + 1));
                    }
                    if bits.last().is_some_and(|&b| b >= k) {
                        return Err(format!("line {}: charged bit out of range", ln + 1));
                    }
                    patterns.push(ChargedSet::new(bits, k));
                }
                "unit" => units.push(UnitTrace::default()),
                "m" | "t" => {
                    let unit = units
                        .last_mut()
                        .ok_or(format!("line {}: record before any unit", ln + 1))?;
                    let a = parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                    if tag == "m" {
                        let bit =
                            parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                        let count =
                            parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                        unit.miscorrections.push((a, bit, count as u64));
                    } else {
                        let trials =
                            parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                        unit.trials.push((a, trials as u64));
                    }
                }
                other => return Err(format!("line {}: unknown tag {other:?}", ln + 1)),
            }
        }
        let k = k.ok_or("trace has no k line")?;
        for u in &units {
            for &(pi, bit, _) in &u.miscorrections {
                if pi >= patterns.len() || bit >= k {
                    return Err(format!("record ({pi}, {bit}) out of range"));
                }
            }
            for &(pi, _) in &u.trials {
                if pi >= patterns.len() {
                    return Err(format!("trial record for pattern {pi} out of range"));
                }
            }
        }
        Ok(ProfileTrace { k, patterns, units })
    }

    /// Writes the text format to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed content maps to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<ProfileTrace> {
        let text = std::fs::read_to_string(path)?;
        ProfileTrace::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A [`ProfileSource`] replaying a recorded [`ProfileTrace`]. One unit of
/// the replay is one unit of the original run; forking is free (the trace
/// is shared), so replays parallelize like any other backend.
///
/// The replayed profile is bit-identical to the recorded run's profile —
/// the property the cross-backend equivalence tests pin down.
#[derive(Clone)]
pub struct ReplayBackend {
    trace: Arc<ProfileTrace>,
}

impl ReplayBackend {
    /// Wraps a trace for replay.
    pub fn new(trace: ProfileTrace) -> Self {
        ReplayBackend {
            trace: Arc::new(trace),
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &ProfileTrace {
        &self.trace
    }
}

impl ProfileSource for ReplayBackend {
    fn k(&self) -> usize {
        self.trace.k
    }

    fn label(&self) -> String {
        "replay".to_string()
    }

    fn num_units(&self, patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        assert_eq!(
            patterns,
            &self.trace.patterns[..],
            "replay pattern list differs from the recorded trace"
        );
        self.trace.units.len()
    }

    fn run_unit(
        &mut self,
        unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) {
        let ut = &self.trace.units[unit];
        for &(pi, bit, count) in &ut.miscorrections {
            profile.record_miscorrections(pi, bit, count);
        }
        for &(pi, trials) in &ut.trials {
            profile.record_trials(pi, trials);
        }
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{collect_with, AnalyticBackend, EngineOptions};
    use crate::pattern::PatternSet;
    use beer_ecc::hamming;

    fn sample_trace() -> (ProfileTrace, MiscorrectionProfile) {
        let code = hamming::shortened(8);
        let patterns = PatternSet::OneTwo.patterns(8);
        let plan = CollectionPlan::quick();
        let mut backend = AnalyticBackend::new(code);
        let profile = collect_with(&mut backend, &patterns, &plan, &EngineOptions::serial());
        let trace = ProfileTrace::record(&mut backend, &patterns, &plan);
        (trace, profile)
    }

    #[test]
    fn replay_reproduces_the_recorded_profile() {
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let mut replay = ReplayBackend::new(trace);
        let replayed = collect_with(
            &mut replay,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        for pi in 0..patterns.len() {
            assert_eq!(original.trials(pi), replayed.trials(pi));
            for j in 0..8 {
                assert_eq!(original.count(pi, j), replayed.count(pi, j));
            }
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let (trace, _) = sample_trace();
        let text = trace.to_text();
        let parsed = ProfileTrace::from_text(&text).expect("roundtrip parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ProfileTrace::from_text("").is_err());
        assert!(ProfileTrace::from_text("not-a-trace").is_err());
        assert!(ProfileTrace::from_text("beer-profile-trace v1\nbogus 1").is_err());
        assert!(ProfileTrace::from_text("beer-profile-trace v1\nk 4\nm 0 0 1").is_err());
        // Out-of-range record.
        assert!(
            ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 0\nunit\nm 5 0 1")
                .is_err()
        );
    }

    #[test]
    fn duplicate_k_line_is_rejected_with_line_number() {
        // Before the fix the second k silently rescoped later patterns.
        let err = ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 0\nk 8\npattern 7")
            .unwrap_err();
        assert!(err.contains("line 4"), "got {err:?}");
        assert!(err.contains("duplicate k"), "got {err:?}");
    }

    #[test]
    fn pattern_after_unit_records_is_rejected_with_line_number() {
        let err = ProfileTrace::from_text(
            "beer-profile-trace v1\nk 4\npattern 0\nunit\nt 0 3\npattern 1",
        )
        .unwrap_err();
        assert!(err.contains("line 6"), "got {err:?}");
        assert!(err.contains("after unit"), "got {err:?}");
    }

    #[test]
    fn file_roundtrip() {
        let (trace, _) = sample_trace();
        let path = std::env::temp_dir().join("beer_trace_test.txt");
        trace.save(&path).expect("save");
        let loaded = ProfileTrace::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, trace);
    }
}
