//! Recorded collection traces and the replay backend.
//!
//! A [`ProfileTrace`] captures everything a collection run observed —
//! per-unit miscorrection counts and trial totals — in a plain-text format
//! that can be saved, shipped, and replayed. [`ReplayBackend`] turns a
//! trace back into a [`ProfileSource`], so the whole pipeline (threshold
//! filtering, solving, BEEP) runs against archived experiments exactly as
//! it runs against live chips: profile a fleet once, re-analyze forever.

use crate::collect::CollectionPlan;
use crate::engine::{EngineError, EngineOptions, ProfileSource};
use crate::pattern::ChargedSet;
use crate::profile::MiscorrectionProfile;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The header line written by [`ProfileTrace::to_text`].
pub const TRACE_HEADER_V2: &str = "beer-trace v2";
/// The header line of the previous format version, still accepted.
pub const TRACE_HEADER_V1: &str = "beer-profile-trace v1";

/// A typed failure parsing the trace text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// The header names a format version this build does not understand —
    /// likely a trace written by a newer version of the tool. The body is
    /// not parsed at all: a future version may have changed any record.
    UnsupportedVersion {
        /// The header line as found.
        header: String,
    },
    /// A structural problem at a specific line (1-based).
    Malformed {
        /// 1-based line number of the first offending line.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::UnsupportedVersion { header } => write!(
                f,
                "unsupported trace format version {header:?} (this build reads \
                 {TRACE_HEADER_V2:?}, {TRACE_HEADER_V1:?}, and headerless traces)"
            ),
            TraceParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// A 128-bit content hash of a *normalized* trace — see
/// [`ProfileTrace::fingerprint`]. Two traces fingerprint identically iff
/// they carry the same evidence: same dataword length, same pattern set,
/// and the same per-pattern miscorrection counts and trial totals after
/// folding away the unit split and the pattern order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

impl std::str::FromStr for Fingerprint {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u128::from_str_radix(s, 16).map(Fingerprint)
    }
}

/// Incremental FNV-1a over 128 bits: cheap, dependency-free, and stable
/// across platforms and releases — the property the persistent registry
/// needs from a fingerprint.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u128::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

/// The observations of one work unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitTrace {
    /// `(pattern index, bit, count)` miscorrection records.
    pub miscorrections: Vec<(usize, usize, u64)>,
    /// `(pattern index, trials)` records.
    pub trials: Vec<(usize, u64)>,
}

impl UnitTrace {
    /// Extracts one unit's records from a scratch profile that accumulated
    /// exactly that unit.
    pub fn from_profile(scratch: &MiscorrectionProfile) -> UnitTrace {
        let mut ut = UnitTrace::default();
        for pi in 0..scratch.patterns().len() {
            for bit in 0..scratch.k() {
                let c = scratch.count(pi, bit);
                if c > 0 {
                    ut.miscorrections.push((pi, bit, c));
                }
            }
            let t = scratch.trials(pi);
            if t > 0 {
                ut.trials.push((pi, t));
            }
        }
        ut
    }

    /// Shifts every pattern index by `offset` — used when concatenating
    /// traces recorded over successive pattern batches.
    pub(crate) fn offset_patterns(&mut self, offset: usize) {
        for rec in &mut self.miscorrections {
            rec.0 += offset;
        }
        for rec in &mut self.trials {
            rec.0 += offset;
        }
    }
}

/// A complete recorded collection run (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileTrace {
    /// Dataword length.
    pub k: usize,
    /// The pattern list the trace was recorded over, in index order.
    pub patterns: Vec<ChargedSet>,
    /// Per-unit observations, in unit order.
    pub units: Vec<UnitTrace>,
}

impl ProfileTrace {
    /// Records a trace by running every unit of `source`, sharded across
    /// worker threads like any collection.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] under the conditions of
    /// [`crate::engine::try_collect_traced`].
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or disagrees with `source.k()`.
    pub fn try_record(
        source: &mut dyn ProfileSource,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
        options: &EngineOptions,
    ) -> Result<ProfileTrace, EngineError> {
        let (_, units) = crate::engine::try_collect_traced(source, patterns, plan, options)?;
        Ok(ProfileTrace {
            k: patterns[0].k(),
            patterns: patterns.to_vec(),
            units,
        })
    }

    /// The panicking, serial form of [`ProfileTrace::try_record`].
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or disagrees with `source.k()`, or if
    /// the source fails the collection.
    pub fn record(
        source: &mut dyn ProfileSource,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
    ) -> ProfileTrace {
        ProfileTrace::try_record(source, patterns, plan, &EngineOptions::serial())
            .unwrap_or_else(|e| panic!("trace recording failed: {e}"))
    }

    /// Merges every unit's records into one profile — the same profile a
    /// collection over the recorded patterns produces.
    pub fn to_profile(&self) -> MiscorrectionProfile {
        let mut profile = MiscorrectionProfile::new(self.k, self.patterns.clone());
        for unit in &self.units {
            for &(pi, bit, count) in &unit.miscorrections {
                profile.record_miscorrections(pi, bit, count);
            }
            for &(pi, trials) in &unit.trials {
                profile.record_trials(pi, trials);
            }
        }
        profile
    }

    /// The canonical content fingerprint of the trace's *evidence*.
    ///
    /// Normalization folds away everything that does not change what the
    /// solver would see: the per-unit split collapses into aggregate
    /// per-pattern counts, patterns are ordered canonically (by their
    /// charged-bit sets), and duplicate patterns merge their counts. A
    /// recording sharded across 8 workers therefore fingerprints the same
    /// as its serial twin, while any change to `k`, the pattern set, a
    /// miscorrection count, or a trial total produces a different value.
    ///
    /// This is the dedup key of `beer_service`: byte-different submissions
    /// of the same profile coalesce onto one recovery job.
    pub fn fingerprint(&self) -> Fingerprint {
        let profile = self.to_profile();
        // Merge by pattern value in canonical (sorted charged-set) order.
        let mut entries: BTreeMap<&[usize], (u64, Vec<u64>)> = BTreeMap::new();
        for (pi, pattern) in self.patterns.iter().enumerate() {
            let entry = entries
                .entry(pattern.bits())
                .or_insert_with(|| (0, vec![0; self.k]));
            entry.0 += profile.trials(pi);
            for (bit, count) in entry.1.iter_mut().enumerate() {
                *count += profile.count(pi, bit);
            }
        }
        let mut h = Fnv128::new();
        h.write_u64(self.k as u64);
        h.write_u64(entries.len() as u64);
        for (bits, (trials, counts)) in &entries {
            h.write_u64(bits.len() as u64);
            for &b in *bits {
                h.write_u64(b as u64);
            }
            h.write_u64(*trials);
            for &c in counts {
                h.write_u64(c);
            }
        }
        Fingerprint(h.finish())
    }

    /// Serializes the trace to its line-based text format (header
    /// [`TRACE_HEADER_V2`]).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{TRACE_HEADER_V2}");
        let _ = writeln!(out, "k {}", self.k);
        for p in &self.patterns {
            let bits: Vec<String> = p.bits().iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "pattern {}", bits.join(" "));
        }
        for unit in &self.units {
            let _ = writeln!(out, "unit");
            for &(pi, bit, count) in &unit.miscorrections {
                let _ = writeln!(out, "m {pi} {bit} {count}");
            }
            for &(pi, trials) in &unit.trials {
                let _ = writeln!(out, "t {pi} {trials}");
            }
        }
        out
    }

    /// Parses a trace from its text format.
    ///
    /// Accepts the current [`TRACE_HEADER_V2`] header, the previous
    /// [`TRACE_HEADER_V1`] header, and the legacy headerless form (body
    /// records starting directly at line 1). A header announcing a format
    /// version this build does not know is reported as
    /// [`TraceParseError::UnsupportedVersion`] — not as a generic parse
    /// failure of whatever its body happens to contain.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] locating the first problem.
    pub fn from_text(text: &str) -> Result<ProfileTrace, TraceParseError> {
        let malformed = |line: usize, message: String| TraceParseError::Malformed { line, message };
        let mut lines = text.lines().enumerate().peekable();
        let Some(&(_, first)) = lines.peek() else {
            return Err(malformed(1, "empty trace".to_string()));
        };
        let first = first.trim();
        if first == TRACE_HEADER_V2 || first == TRACE_HEADER_V1 {
            lines.next();
        } else if first.starts_with("beer-trace") || first.starts_with("beer-profile-trace") {
            // A recognizable header naming a version we do not read: a
            // future format may have changed any record, so refuse to
            // guess at the body.
            return Err(TraceParseError::UnsupportedVersion {
                header: first.to_string(),
            });
        }
        // Anything else is the legacy headerless body, parsed as-is.
        let mut k: Option<usize> = None;
        let mut patterns: Vec<ChargedSet> = Vec::new();
        let mut units: Vec<UnitTrace> = Vec::new();
        for (ln, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let tag = fields.next().expect("non-empty line has a field");
            let parse = |s: &str| -> Result<usize, TraceParseError> {
                s.parse()
                    .map_err(|_| malformed(ln + 1, format!("bad number {s:?}")))
            };
            let field = |fields: &mut std::str::SplitWhitespace| -> Result<usize, TraceParseError> {
                let s = fields
                    .next()
                    .ok_or_else(|| malformed(ln + 1, "truncated record".to_string()))?;
                parse(s)
            };
            match tag {
                "k" => {
                    if k.is_some() {
                        // A second k line mid-file would silently rescope
                        // every later pattern; reject it.
                        return Err(malformed(ln + 1, "duplicate k line".to_string()));
                    }
                    k = Some(field(&mut fields)?);
                }
                "pattern" => {
                    if !units.is_empty() {
                        // Unit records index into the pattern list; growing
                        // it afterwards would renumber nothing and hide
                        // corrupt files.
                        return Err(malformed(
                            ln + 1,
                            "pattern declared after unit records".to_string(),
                        ));
                    }
                    let k = k.ok_or_else(|| malformed(ln + 1, "pattern before k".to_string()))?;
                    let mut bits: Vec<usize> = fields.map(parse).collect::<Result<_, _>>()?;
                    // Validate here — `ChargedSet::new` asserts, and a
                    // malformed file must yield Err, not a panic.
                    bits.sort_unstable();
                    if bits.windows(2).any(|w| w[0] == w[1]) {
                        return Err(malformed(ln + 1, "duplicate charged bit".to_string()));
                    }
                    if bits.last().is_some_and(|&b| b >= k) {
                        return Err(malformed(ln + 1, "charged bit out of range".to_string()));
                    }
                    patterns.push(ChargedSet::new(bits, k));
                }
                "unit" => units.push(UnitTrace::default()),
                "m" | "t" => {
                    // The pattern list is final once units begin (enforced
                    // above), so records range-check inline.
                    let k = k.ok_or_else(|| malformed(ln + 1, "record before k".to_string()))?;
                    let unit = units
                        .last_mut()
                        .ok_or_else(|| malformed(ln + 1, "record before any unit".to_string()))?;
                    let pi = field(&mut fields)?;
                    if pi >= patterns.len() {
                        return Err(malformed(
                            ln + 1,
                            format!("pattern index {pi} out of range"),
                        ));
                    }
                    if tag == "m" {
                        let bit = field(&mut fields)?;
                        if bit >= k {
                            return Err(malformed(ln + 1, format!("bit {bit} out of range")));
                        }
                        let count = field(&mut fields)?;
                        unit.miscorrections.push((pi, bit, count as u64));
                    } else {
                        let trials = field(&mut fields)?;
                        unit.trials.push((pi, trials as u64));
                    }
                }
                other => {
                    return Err(malformed(ln + 1, format!("unknown tag {other:?}")));
                }
            }
        }
        let k = k.ok_or_else(|| malformed(1, "trace has no k line".to_string()))?;
        Ok(ProfileTrace { k, patterns, units })
    }

    /// Writes the text format to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed content maps to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<ProfileTrace> {
        let text = std::fs::read_to_string(path)?;
        ProfileTrace::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Splits the text serialization into chunks of at most `max_bytes`
    /// for transfer in bounded frames, returning the evidence
    /// [`fingerprint`](ProfileTrace::fingerprint) that keys the upload.
    /// Reassemble with a [`TraceAssembler`] seeded from the same
    /// fingerprint and chunk count.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero.
    pub fn to_chunks(&self, max_bytes: usize) -> (Fingerprint, Vec<Vec<u8>>) {
        assert!(max_bytes > 0, "chunk size must be positive");
        let text = self.to_text().into_bytes();
        let chunks = text.chunks(max_bytes).map(<[u8]>::to_vec).collect();
        (self.fingerprint(), chunks)
    }
}

/// A typed failure assembling a chunked trace upload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkError {
    /// The upload declares no chunks at all.
    Empty,
    /// The declared size exceeds the receiver's limit — rejected up front,
    /// before any buffering.
    Oversized {
        /// Declared total bytes.
        bytes: u64,
        /// The receiver's limit.
        limit: u64,
    },
    /// A chunk index at or past the declared chunk count.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// The declared chunk count.
        total: u32,
    },
    /// The same chunk index arrived twice.
    Duplicate {
        /// The repeated index.
        index: u32,
    },
    /// The assembled bytes disagree with the declared total size.
    SizeMismatch {
        /// Bytes actually received.
        received: u64,
        /// Bytes declared by the upload.
        declared: u64,
    },
    /// The assembled bytes are not UTF-8 text.
    NotText,
    /// The assembled text is not a parseable trace.
    Parse(TraceParseError),
    /// The assembled trace's evidence fingerprint disagrees with the one
    /// the upload was keyed by — a corrupt or mislabeled transfer.
    FingerprintMismatch {
        /// The fingerprint the upload declared.
        declared: Fingerprint,
        /// The fingerprint of what actually arrived.
        actual: Fingerprint,
    },
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Empty => write!(f, "upload declares zero chunks"),
            ChunkError::Oversized { bytes, limit } => {
                write!(
                    f,
                    "upload declares {bytes} bytes, over the limit of {limit}"
                )
            }
            ChunkError::IndexOutOfRange { index, total } => {
                write!(f, "chunk index {index} out of range (upload has {total})")
            }
            ChunkError::Duplicate { index } => write!(f, "chunk {index} received twice"),
            ChunkError::SizeMismatch { received, declared } => {
                write!(
                    f,
                    "received {received} bytes but the upload declared {declared}"
                )
            }
            ChunkError::NotText => write!(f, "assembled upload is not UTF-8 text"),
            ChunkError::Parse(e) => write!(f, "assembled upload is not a trace: {e}"),
            ChunkError::FingerprintMismatch { declared, actual } => write!(
                f,
                "assembled trace fingerprints as {actual}, not the declared {declared}"
            ),
        }
    }
}

impl std::error::Error for ChunkError {}

/// Reassembles a chunked trace upload produced by
/// [`ProfileTrace::to_chunks`], verifying size bounds up front and the
/// evidence fingerprint on completion. Chunks may arrive in any order.
#[derive(Debug)]
pub struct TraceAssembler {
    fingerprint: Fingerprint,
    declared_bytes: u64,
    chunks: Vec<Option<Vec<u8>>>,
    received: usize,
    received_bytes: u64,
}

impl TraceAssembler {
    /// Starts an assembly for `total_chunks` chunks of `total_bytes`
    /// declared bytes, keyed by the sender's `fingerprint`. Refuses
    /// declarations over `max_bytes` *before* buffering anything.
    ///
    /// # Errors
    ///
    /// [`ChunkError::Empty`] or [`ChunkError::Oversized`].
    pub fn new(
        fingerprint: Fingerprint,
        total_chunks: u32,
        total_bytes: u64,
        max_bytes: u64,
    ) -> Result<TraceAssembler, ChunkError> {
        if total_chunks == 0 {
            return Err(ChunkError::Empty);
        }
        if total_bytes > max_bytes {
            return Err(ChunkError::Oversized {
                bytes: total_bytes,
                limit: max_bytes,
            });
        }
        // The slot table is sized by the declared chunk count, so the
        // count itself must be consistent with the (already bounded)
        // byte declaration: more chunks than bytes means empty chunks,
        // which no sender produces — refuse before allocating the table.
        if u64::from(total_chunks) > total_bytes {
            return Err(ChunkError::SizeMismatch {
                received: u64::from(total_chunks),
                declared: total_bytes,
            });
        }
        Ok(TraceAssembler {
            fingerprint,
            declared_bytes: total_bytes,
            chunks: vec![None; total_chunks as usize],
            received: 0,
            received_bytes: 0,
        })
    }

    /// The fingerprint the upload is keyed by.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Chunks received so far out of the declared total.
    pub fn progress(&self) -> (usize, usize) {
        (self.received, self.chunks.len())
    }

    /// Accepts one chunk. Returns `Ok(Some(trace))` when the final chunk
    /// completes a verified trace, `Ok(None)` while chunks are missing.
    ///
    /// # Errors
    ///
    /// Any [`ChunkError`]; the assembly is unusable after an error and
    /// should be dropped (the sender restarts the upload).
    pub fn accept(
        &mut self,
        index: u32,
        data: Vec<u8>,
    ) -> Result<Option<ProfileTrace>, ChunkError> {
        let total = self.chunks.len() as u32;
        let slot = self
            .chunks
            .get_mut(index as usize)
            .ok_or(ChunkError::IndexOutOfRange { index, total })?;
        if slot.is_some() {
            return Err(ChunkError::Duplicate { index });
        }
        // Incremental size guard: a sender whose chunks outgrow its
        // declaration is refused at the first excess byte, not after
        // buffering everything it cares to stream.
        let received_bytes = self.received_bytes + data.len() as u64;
        if received_bytes > self.declared_bytes {
            return Err(ChunkError::SizeMismatch {
                received: received_bytes,
                declared: self.declared_bytes,
            });
        }
        self.received_bytes = received_bytes;
        *slot = Some(data);
        self.received += 1;
        if self.received < self.chunks.len() {
            return Ok(None);
        }
        let mut bytes: Vec<u8> = Vec::with_capacity(self.declared_bytes as usize);
        for chunk in &self.chunks {
            bytes.extend_from_slice(chunk.as_ref().expect("all chunks received"));
        }
        if bytes.len() as u64 != self.declared_bytes {
            return Err(ChunkError::SizeMismatch {
                received: bytes.len() as u64,
                declared: self.declared_bytes,
            });
        }
        let text = String::from_utf8(bytes).map_err(|_| ChunkError::NotText)?;
        let trace = ProfileTrace::from_text(&text).map_err(ChunkError::Parse)?;
        let actual = trace.fingerprint();
        if actual != self.fingerprint {
            return Err(ChunkError::FingerprintMismatch {
                declared: self.fingerprint,
                actual,
            });
        }
        Ok(Some(trace))
    }
}

/// A [`ProfileSource`] replaying a recorded [`ProfileTrace`]. One unit of
/// the replay is one unit of the original run; forking is free (the trace
/// is shared), so replays parallelize like any other backend.
///
/// A collection may request any *subset* of the recorded patterns, in any
/// order — the backend maps them onto the trace by value, so a session
/// that collects batch by batch replays a trace recorded across several
/// batches. Requesting a pattern the trace never recorded is a typed
/// [`EngineError::TraceMissingPattern`] (the recording is exhausted), not
/// a panic or a silently empty profile.
///
/// The replayed profile is bit-identical to the recorded run's profile —
/// the property the cross-backend equivalence tests pin down.
#[derive(Clone)]
pub struct ReplayBackend {
    trace: Arc<ProfileTrace>,
    /// Trace pattern index → requested pattern index for the collection in
    /// flight (built by `begin_collection`; `None` = not requested).
    mapping: Arc<Vec<Option<usize>>>,
    /// Trace units holding at least one mapped record — the replay's work
    /// units, so a batch only replays its own share of a long recording.
    active_units: Arc<Vec<usize>>,
}

impl ReplayBackend {
    /// Wraps a trace for replay.
    pub fn new(trace: ProfileTrace) -> Self {
        ReplayBackend {
            trace: Arc::new(trace),
            mapping: Arc::new(Vec::new()),
            active_units: Arc::new(Vec::new()),
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &ProfileTrace {
        &self.trace
    }
}

impl ProfileSource for ReplayBackend {
    fn k(&self) -> usize {
        self.trace.k
    }

    fn label(&self) -> String {
        "replay".to_string()
    }

    fn num_units(&self, patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        if self.mapping.is_empty() {
            // Driven through the raw unit protocol without
            // `begin_collection` (which builds the subset mapping): only
            // the identity replay is possible, and a mismatch must stay
            // loud rather than yield a silently empty collection.
            assert_eq!(
                patterns,
                &self.trace.patterns[..],
                "replay pattern list differs from the recorded trace \
                 (call begin_collection to replay a subset)"
            );
            self.trace.units.len()
        } else {
            self.active_units.len()
        }
    }

    fn begin_collection(
        &mut self,
        patterns: &[ChargedSet],
        _plan: &CollectionPlan,
    ) -> Result<(), EngineError> {
        let mut by_value: HashMap<&ChargedSet, usize> = HashMap::new();
        let mut duplicated: Vec<&ChargedSet> = Vec::new();
        for (ti, p) in self.trace.patterns.iter().enumerate() {
            if by_value.insert(p, ti).is_some() {
                duplicated.push(p);
            }
        }
        let mut mapping = vec![None; self.trace.patterns.len()];
        for (ri, pattern) in patterns.iter().enumerate() {
            // A pattern recorded (or requested) twice has no unambiguous
            // per-batch share of the recorded counts; silently picking one
            // occurrence would undercount, so refuse loudly instead.
            if duplicated.contains(&pattern) {
                return Err(EngineError::Backend {
                    backend: "replay".to_string(),
                    message: format!(
                        "pattern {pattern} was recorded more than once; replaying it is \
                         ambiguous (replay the trace batch by batch instead)"
                    ),
                });
            }
            match by_value.get(pattern) {
                Some(&ti) => {
                    if mapping[ti].replace(ri).is_some() {
                        return Err(EngineError::Backend {
                            backend: "replay".to_string(),
                            message: format!(
                                "pattern {pattern} requested more than once in one collection"
                            ),
                        });
                    }
                }
                None => {
                    return Err(EngineError::TraceMissingPattern {
                        pattern: pattern.to_string(),
                        recorded: self.trace.patterns.len(),
                    })
                }
            }
        }
        let active_units: Vec<usize> = self
            .trace
            .units
            .iter()
            .enumerate()
            .filter(|(_, ut)| {
                ut.miscorrections
                    .iter()
                    .any(|&(pi, _, _)| mapping[pi].is_some())
                    || ut.trials.iter().any(|&(pi, _)| mapping[pi].is_some())
            })
            .map(|(ui, _)| ui)
            .collect();
        self.mapping = Arc::new(mapping);
        self.active_units = Arc::new(active_units);
        Ok(())
    }

    fn run_unit(
        &mut self,
        unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        // Identity replay when the raw protocol skipped begin_collection
        // (num_units has already asserted the pattern lists match).
        let identity = self.mapping.is_empty();
        let map = |pi: usize| {
            if identity {
                Some(pi)
            } else {
                self.mapping.get(pi).copied().flatten()
            }
        };
        let ut = if identity {
            &self.trace.units[unit]
        } else {
            &self.trace.units[self.active_units[unit]]
        };
        for &(pi, bit, count) in &ut.miscorrections {
            if let Some(ri) = map(pi) {
                profile.record_miscorrections(ri, bit, count);
            }
        }
        for &(pi, trials) in &ut.trials {
            if let Some(ri) = map(pi) {
                profile.record_trials(ri, trials);
            }
        }
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{collect_with, AnalyticBackend, EngineOptions};
    use crate::pattern::PatternSet;
    use beer_ecc::hamming;

    fn sample_trace() -> (ProfileTrace, MiscorrectionProfile) {
        let code = hamming::shortened(8);
        let patterns = PatternSet::OneTwo.patterns(8);
        let plan = CollectionPlan::quick();
        let mut backend = AnalyticBackend::new(code);
        let profile = collect_with(&mut backend, &patterns, &plan, &EngineOptions::serial());
        let trace = ProfileTrace::record(&mut backend, &patterns, &plan);
        (trace, profile)
    }

    #[test]
    fn replay_reproduces_the_recorded_profile() {
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let mut replay = ReplayBackend::new(trace);
        let replayed = collect_with(
            &mut replay,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        for pi in 0..patterns.len() {
            assert_eq!(original.trials(pi), replayed.trials(pi));
            for j in 0..8 {
                assert_eq!(original.count(pi, j), replayed.count(pi, j));
            }
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let (trace, _) = sample_trace();
        let text = trace.to_text();
        let parsed = ProfileTrace::from_text(&text).expect("roundtrip parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ProfileTrace::from_text("").is_err());
        assert!(ProfileTrace::from_text("not-a-trace").is_err());
        assert!(ProfileTrace::from_text("beer-profile-trace v1\nbogus 1").is_err());
        assert!(ProfileTrace::from_text("beer-profile-trace v1\nk 4\nm 0 0 1").is_err());
        // Out-of-range record.
        assert!(
            ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 0\nunit\nm 5 0 1")
                .is_err()
        );
    }

    #[test]
    fn duplicate_k_line_is_rejected_with_line_number() {
        // Before the fix the second k silently rescoped later patterns.
        let err = ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 0\nk 8\npattern 7")
            .unwrap_err();
        assert!(
            matches!(err, TraceParseError::Malformed { line: 4, .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("duplicate k"), "got {err}");
    }

    #[test]
    fn pattern_after_unit_records_is_rejected_with_line_number() {
        let err = ProfileTrace::from_text(
            "beer-profile-trace v1\nk 4\npattern 0\nunit\nt 0 3\npattern 1",
        )
        .unwrap_err();
        assert!(
            matches!(err, TraceParseError::Malformed { line: 6, .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("after unit"), "got {err}");
    }

    #[test]
    fn all_known_header_forms_parse_identically() {
        let body = "k 4\npattern 0\nunit\nm 0 1 8\nt 0 8\n";
        let v2 = ProfileTrace::from_text(&format!("{TRACE_HEADER_V2}\n{body}")).expect("v2");
        let v1 = ProfileTrace::from_text(&format!("{TRACE_HEADER_V1}\n{body}")).expect("v1");
        let headerless = ProfileTrace::from_text(body).expect("legacy headerless");
        assert_eq!(v2, v1);
        assert_eq!(v2, headerless);
        // to_text writes the current header.
        assert!(v2.to_text().starts_with(TRACE_HEADER_V2));
    }

    #[test]
    fn unknown_future_versions_are_a_typed_error() {
        for header in ["beer-trace v3", "beer-profile-trace v9", "beer-trace"] {
            let err = ProfileTrace::from_text(&format!("{header}\nk 4\npattern 0\n"))
                .expect_err("future versions must not parse");
            assert_eq!(
                err,
                TraceParseError::UnsupportedVersion {
                    header: header.to_string()
                },
                "header {header:?}"
            );
            assert!(err.to_string().contains(header), "got {err}");
        }
    }

    #[test]
    fn fingerprint_is_invariant_under_unit_split_and_pattern_order() {
        let (trace, _) = sample_trace();
        let fp = trace.fingerprint();

        // Fold every unit into one: same evidence, different split.
        let folded = ProfileTrace {
            k: trace.k,
            patterns: trace.patterns.clone(),
            units: vec![UnitTrace::from_profile(&trace.to_profile())],
        };
        assert_ne!(folded.units.len(), trace.units.len());
        assert_eq!(folded.fingerprint(), fp, "unit split must not matter");

        // Reverse the pattern list (remapping every record's index).
        let n = trace.patterns.len();
        let reversed = ProfileTrace {
            k: trace.k,
            patterns: trace.patterns.iter().rev().cloned().collect(),
            units: trace
                .units
                .iter()
                .map(|u| UnitTrace {
                    miscorrections: u
                        .miscorrections
                        .iter()
                        .map(|&(pi, bit, c)| (n - 1 - pi, bit, c))
                        .collect(),
                    trials: u.trials.iter().map(|&(pi, t)| (n - 1 - pi, t)).collect(),
                })
                .collect(),
        };
        assert_eq!(reversed.fingerprint(), fp, "pattern order must not matter");
    }

    #[test]
    fn fingerprint_changes_with_the_evidence() {
        let (trace, _) = sample_trace();
        let fp = trace.fingerprint();

        let mut bumped = trace.clone();
        bumped.units[0].trials[0].1 += 1;
        assert_ne!(bumped.fingerprint(), fp, "trial totals are evidence");

        let mut grown = trace.clone();
        grown.patterns.push(ChargedSet::new(vec![0, 1, 2], 8));
        assert_ne!(grown.fingerprint(), fp, "the pattern set is evidence");
    }

    #[test]
    fn replay_serves_pattern_subsets_by_value() {
        // A session replaying a multi-batch trace asks for one batch at a
        // time; counts and trials must match the original per batch.
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let subset: Vec<ChargedSet> = patterns.iter().skip(3).cloned().collect();
        let mut replay = ReplayBackend::new(trace);
        let replayed = collect_with(
            &mut replay,
            &subset,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        for (si, pattern) in subset.iter().enumerate() {
            let oi = patterns.iter().position(|p| p == pattern).unwrap();
            assert_eq!(original.trials(oi), replayed.trials(si));
            for j in 0..8 {
                assert_eq!(original.count(oi, j), replayed.count(si, j));
            }
        }
    }

    #[test]
    fn replay_of_unrecorded_pattern_is_a_typed_error() {
        // Exhausting the recording must be an EngineError, not a panic or
        // a silent empty profile.
        let (trace, _) = sample_trace();
        let recorded = trace.patterns.len();
        let mut replay = ReplayBackend::new(trace);
        let missing = vec![ChargedSet::new(vec![0, 1, 2], 8)];
        let err = crate::engine::try_collect_with(
            &mut replay,
            &missing,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        )
        .expect_err("unrecorded pattern must not replay");
        assert_eq!(
            err,
            EngineError::TraceMissingPattern {
                pattern: missing[0].to_string(),
                recorded,
            }
        );
        assert!(err.to_string().contains("3-CHARGED"), "got {err}");
    }

    #[test]
    fn replay_of_duplicated_patterns_is_refused_not_undercounted() {
        // The same pattern recorded in two batches has no unambiguous
        // per-batch share; the backend must refuse rather than silently
        // drop one occurrence's counts.
        let text = "beer-profile-trace v1\nk 4\npattern 1\npattern 1\n\
                    unit\nt 0 3\nunit\nt 1 3\n";
        let trace = ProfileTrace::from_text(text).expect("well-formed");
        let request = vec![ChargedSet::new(vec![1], 4)];
        let mut replay = ReplayBackend::new(trace);
        let err = crate::engine::try_collect_with(
            &mut replay,
            &request,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        )
        .expect_err("duplicated recording must not replay");
        assert!(
            matches!(&err, EngineError::Backend { backend, .. } if backend == "replay"),
            "got {err:?}"
        );
        assert!(err.to_string().contains("more than once"), "got {err}");

        // Requesting the same pattern twice in one collection is refused
        // for the same reason.
        let trace = ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 1\nunit\nt 0 3\n")
            .expect("well-formed");
        let twice = vec![ChargedSet::new(vec![1], 4), ChargedSet::new(vec![1], 4)];
        let mut replay = ReplayBackend::new(trace);
        let err = crate::engine::try_collect_with(
            &mut replay,
            &twice,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        )
        .expect_err("duplicate request must not replay");
        assert!(
            err.to_string().contains("requested more than once"),
            "got {err}"
        );
    }

    #[test]
    fn raw_protocol_replay_without_begin_collection_is_identity_and_loud() {
        // Drivers of the bare unit protocol (no begin_collection) get the
        // identity replay with the full unit count — never a silently
        // empty collection.
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let plan = CollectionPlan::quick();
        let mut replay = ReplayBackend::new(trace);
        let n = replay.num_units(&patterns, &plan);
        assert!(n > 0, "raw protocol must see every recorded unit");
        let mut profile = MiscorrectionProfile::new(8, patterns.clone());
        for unit in 0..n {
            replay
                .run_unit(unit, &patterns, &plan, &mut profile)
                .expect("identity replay");
        }
        for pi in 0..patterns.len() {
            assert_eq!(original.trials(pi), profile.trials(pi));
        }
    }

    #[test]
    #[should_panic(expected = "differs from the recorded trace")]
    fn raw_protocol_replay_rejects_mismatched_patterns() {
        let (trace, _) = sample_trace();
        let replay = ReplayBackend::new(trace);
        let other = vec![ChargedSet::new(vec![0, 1, 2], 8)];
        let _ = replay.num_units(&other, &CollectionPlan::quick());
    }

    #[test]
    fn replay_skips_units_belonging_to_other_batches() {
        // A multi-batch trace: batch 1's replay must only execute batch
        // 1's units (no O(batches × units) re-scans).
        let text = "beer-profile-trace v1\nk 4\npattern 0\npattern 1\n\
                    unit\nt 0 5\nunit\nt 1 7\n";
        let trace = ProfileTrace::from_text(text).expect("well-formed");
        let batch1 = vec![ChargedSet::new(vec![0], 4)];
        let mut replay = ReplayBackend::new(trace);
        replay
            .begin_collection(&batch1, &CollectionPlan::quick())
            .expect("batch 1 is recorded");
        assert_eq!(
            replay.num_units(&batch1, &CollectionPlan::quick()),
            1,
            "only the unit carrying pattern 0's records is active"
        );
        let profile = collect_with(
            &mut replay,
            &batch1,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        assert_eq!(profile.trials(0), 5);
    }

    #[test]
    fn to_profile_matches_replayed_collection() {
        let (trace, original) = sample_trace();
        let folded = trace.to_profile();
        for pi in 0..trace.patterns.len() {
            assert_eq!(original.trials(pi), folded.trials(pi));
            for j in 0..8 {
                assert_eq!(original.count(pi, j), folded.count(pi, j));
            }
        }
    }

    #[test]
    fn chunked_upload_roundtrips_in_any_order() {
        let (trace, _) = sample_trace();
        let (fp, chunks) = trace.to_chunks(16);
        assert!(chunks.len() > 1, "sample trace must actually chunk");
        let total_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let mut asm =
            TraceAssembler::new(fp, chunks.len() as u32, total_bytes, 1 << 20).expect("fits");
        // Deliver out of order: last first.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        order.rotate_left(1);
        let mut done = None;
        for i in order {
            let got = asm
                .accept(i as u32, chunks[i].clone())
                .expect("clean chunk");
            assert_eq!(got.is_some(), asm.progress().0 == chunks.len());
            done = got.or(done);
        }
        assert_eq!(done.expect("assembled"), trace);
    }

    #[test]
    fn chunk_assembly_failures_are_typed() {
        let (trace, _) = sample_trace();
        let (fp, chunks) = trace.to_chunks(32);
        let total_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let total = chunks.len() as u32;

        assert_eq!(
            TraceAssembler::new(fp, 0, 1, 1 << 20).unwrap_err(),
            ChunkError::Empty
        );
        assert_eq!(
            TraceAssembler::new(fp, total, total_bytes, 4).unwrap_err(),
            ChunkError::Oversized {
                bytes: total_bytes,
                limit: 4
            }
        );

        let mut asm = TraceAssembler::new(fp, total, total_bytes, 1 << 20).expect("fits");
        assert_eq!(
            asm.accept(total, vec![]).unwrap_err(),
            ChunkError::IndexOutOfRange {
                index: total,
                total
            }
        );
        asm.accept(0, chunks[0].clone()).expect("first");
        assert_eq!(
            asm.accept(0, chunks[0].clone()).unwrap_err(),
            ChunkError::Duplicate { index: 0 }
        );

        // Declared size disagreeing with the delivered bytes — refused
        // at the first excess byte, before buffering more.
        let mut asm = TraceAssembler::new(fp, 1, 3, 1 << 20).expect("fits");
        assert_eq!(
            asm.accept(0, b"abcd".to_vec()).unwrap_err(),
            ChunkError::SizeMismatch {
                received: 4,
                declared: 3
            }
        );

        // A chunk count the declared bytes cannot fill is refused before
        // the slot table is allocated (no memory proportional to a lying
        // count), and mid-stream overflow is caught incrementally.
        assert_eq!(
            TraceAssembler::new(fp, u32::MAX, 16, 1 << 20).unwrap_err(),
            ChunkError::SizeMismatch {
                received: u64::from(u32::MAX),
                declared: 16
            }
        );
        let mut asm = TraceAssembler::new(fp, 4, 4, 1 << 20).expect("fits");
        asm.accept(0, b"ab".to_vec()).expect("within bounds");
        assert_eq!(
            asm.accept(1, b"cde".to_vec()).unwrap_err(),
            ChunkError::SizeMismatch {
                received: 5,
                declared: 4
            },
            "overflow must be refused at the offending chunk, not at completion"
        );

        // Well-formed trace bytes under the wrong fingerprint.
        let wrong = Fingerprint(fp.0 ^ 1);
        let mut asm = TraceAssembler::new(wrong, total, total_bytes, 1 << 20).expect("fits");
        let mut last = Ok(None);
        for (i, chunk) in chunks.iter().enumerate() {
            last = asm.accept(i as u32, chunk.clone());
        }
        assert_eq!(
            last.unwrap_err(),
            ChunkError::FingerprintMismatch {
                declared: wrong,
                actual: fp
            }
        );

        // Garbage payloads: non-UTF-8, then unparseable text.
        let mut asm = TraceAssembler::new(fp, 1, 2, 1 << 20).expect("fits");
        assert_eq!(
            asm.accept(0, vec![0xFF, 0xFE]).unwrap_err(),
            ChunkError::NotText
        );
        let mut asm = TraceAssembler::new(fp, 1, 9, 1 << 20).expect("fits");
        assert!(matches!(
            asm.accept(0, b"bogus 1 2".to_vec()).unwrap_err(),
            ChunkError::Parse(_)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let (trace, _) = sample_trace();
        let path = std::env::temp_dir().join("beer_trace_test.txt");
        trace.save(&path).expect("save");
        let loaded = ProfileTrace::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, trace);
    }
}
