//! Recorded collection traces and the replay backend.
//!
//! A [`ProfileTrace`] captures everything a collection run observed —
//! per-unit miscorrection counts and trial totals — in a plain-text format
//! that can be saved, shipped, and replayed. [`ReplayBackend`] turns a
//! trace back into a [`ProfileSource`], so the whole pipeline (threshold
//! filtering, solving, BEEP) runs against archived experiments exactly as
//! it runs against live chips: profile a fleet once, re-analyze forever.

use crate::collect::CollectionPlan;
use crate::engine::{EngineError, EngineOptions, ProfileSource};
use crate::pattern::ChargedSet;
use crate::profile::MiscorrectionProfile;
use std::collections::HashMap;
use std::sync::Arc;

/// The observations of one work unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitTrace {
    /// `(pattern index, bit, count)` miscorrection records.
    pub miscorrections: Vec<(usize, usize, u64)>,
    /// `(pattern index, trials)` records.
    pub trials: Vec<(usize, u64)>,
}

impl UnitTrace {
    /// Extracts one unit's records from a scratch profile that accumulated
    /// exactly that unit.
    pub fn from_profile(scratch: &MiscorrectionProfile) -> UnitTrace {
        let mut ut = UnitTrace::default();
        for pi in 0..scratch.patterns().len() {
            for bit in 0..scratch.k() {
                let c = scratch.count(pi, bit);
                if c > 0 {
                    ut.miscorrections.push((pi, bit, c));
                }
            }
            let t = scratch.trials(pi);
            if t > 0 {
                ut.trials.push((pi, t));
            }
        }
        ut
    }

    /// Shifts every pattern index by `offset` — used when concatenating
    /// traces recorded over successive pattern batches.
    pub(crate) fn offset_patterns(&mut self, offset: usize) {
        for rec in &mut self.miscorrections {
            rec.0 += offset;
        }
        for rec in &mut self.trials {
            rec.0 += offset;
        }
    }
}

/// A complete recorded collection run (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileTrace {
    /// Dataword length.
    pub k: usize,
    /// The pattern list the trace was recorded over, in index order.
    pub patterns: Vec<ChargedSet>,
    /// Per-unit observations, in unit order.
    pub units: Vec<UnitTrace>,
}

impl ProfileTrace {
    /// Records a trace by running every unit of `source`, sharded across
    /// worker threads like any collection.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] under the conditions of
    /// [`crate::engine::try_collect_traced`].
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or disagrees with `source.k()`.
    pub fn try_record(
        source: &mut dyn ProfileSource,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
        options: &EngineOptions,
    ) -> Result<ProfileTrace, EngineError> {
        let (_, units) = crate::engine::try_collect_traced(source, patterns, plan, options)?;
        Ok(ProfileTrace {
            k: patterns[0].k(),
            patterns: patterns.to_vec(),
            units,
        })
    }

    /// The panicking, serial form of [`ProfileTrace::try_record`].
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or disagrees with `source.k()`, or if
    /// the source fails the collection.
    pub fn record(
        source: &mut dyn ProfileSource,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
    ) -> ProfileTrace {
        ProfileTrace::try_record(source, patterns, plan, &EngineOptions::serial())
            .unwrap_or_else(|e| panic!("trace recording failed: {e}"))
    }

    /// Merges every unit's records into one profile — the same profile a
    /// collection over the recorded patterns produces.
    pub fn to_profile(&self) -> MiscorrectionProfile {
        let mut profile = MiscorrectionProfile::new(self.k, self.patterns.clone());
        for unit in &self.units {
            for &(pi, bit, count) in &unit.miscorrections {
                profile.record_miscorrections(pi, bit, count);
            }
            for &(pi, trials) in &unit.trials {
                profile.record_trials(pi, trials);
            }
        }
        profile
    }

    /// Serializes the trace to its line-based text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "beer-profile-trace v1");
        let _ = writeln!(out, "k {}", self.k);
        for p in &self.patterns {
            let bits: Vec<String> = p.bits().iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "pattern {}", bits.join(" "));
        }
        for unit in &self.units {
            let _ = writeln!(out, "unit");
            for &(pi, bit, count) in &unit.miscorrections {
                let _ = writeln!(out, "m {pi} {bit} {count}");
            }
            for &(pi, trials) in &unit.trials {
                let _ = writeln!(out, "t {pi} {trials}");
            }
        }
        out
    }

    /// Parses a trace from its text format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<ProfileTrace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace")?;
        if header.trim() != "beer-profile-trace v1" {
            return Err(format!("unknown trace header {header:?}"));
        }
        let mut k: Option<usize> = None;
        let mut patterns: Vec<ChargedSet> = Vec::new();
        let mut units: Vec<UnitTrace> = Vec::new();
        for (ln, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let tag = fields.next().expect("non-empty line has a field");
            let parse = |s: &str| -> Result<usize, String> {
                s.parse()
                    .map_err(|_| format!("line {}: bad number {s:?}", ln + 1))
            };
            match tag {
                "k" => {
                    if k.is_some() {
                        // A second k line mid-file would silently rescope
                        // every later pattern; reject it.
                        return Err(format!("line {}: duplicate k line", ln + 1));
                    }
                    let v = fields.next().ok_or(format!("line {}: missing k", ln + 1))?;
                    k = Some(parse(v)?);
                }
                "pattern" => {
                    if !units.is_empty() {
                        // Unit records index into the pattern list; growing
                        // it afterwards would renumber nothing and hide
                        // corrupt files.
                        return Err(format!(
                            "line {}: pattern declared after unit records",
                            ln + 1
                        ));
                    }
                    let k = k.ok_or(format!("line {}: pattern before k", ln + 1))?;
                    let mut bits: Vec<usize> = fields.map(parse).collect::<Result<_, _>>()?;
                    // Validate here — `ChargedSet::new` asserts, and a
                    // malformed file must yield Err, not a panic.
                    bits.sort_unstable();
                    if bits.windows(2).any(|w| w[0] == w[1]) {
                        return Err(format!("line {}: duplicate charged bit", ln + 1));
                    }
                    if bits.last().is_some_and(|&b| b >= k) {
                        return Err(format!("line {}: charged bit out of range", ln + 1));
                    }
                    patterns.push(ChargedSet::new(bits, k));
                }
                "unit" => units.push(UnitTrace::default()),
                "m" | "t" => {
                    let unit = units
                        .last_mut()
                        .ok_or(format!("line {}: record before any unit", ln + 1))?;
                    let a = parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                    if tag == "m" {
                        let bit =
                            parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                        let count =
                            parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                        unit.miscorrections.push((a, bit, count as u64));
                    } else {
                        let trials =
                            parse(fields.next().ok_or(format!("line {}: truncated", ln + 1))?)?;
                        unit.trials.push((a, trials as u64));
                    }
                }
                other => return Err(format!("line {}: unknown tag {other:?}", ln + 1)),
            }
        }
        let k = k.ok_or("trace has no k line")?;
        for u in &units {
            for &(pi, bit, _) in &u.miscorrections {
                if pi >= patterns.len() || bit >= k {
                    return Err(format!("record ({pi}, {bit}) out of range"));
                }
            }
            for &(pi, _) in &u.trials {
                if pi >= patterns.len() {
                    return Err(format!("trial record for pattern {pi} out of range"));
                }
            }
        }
        Ok(ProfileTrace { k, patterns, units })
    }

    /// Writes the text format to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed content maps to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<ProfileTrace> {
        let text = std::fs::read_to_string(path)?;
        ProfileTrace::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A [`ProfileSource`] replaying a recorded [`ProfileTrace`]. One unit of
/// the replay is one unit of the original run; forking is free (the trace
/// is shared), so replays parallelize like any other backend.
///
/// A collection may request any *subset* of the recorded patterns, in any
/// order — the backend maps them onto the trace by value, so a session
/// that collects batch by batch replays a trace recorded across several
/// batches. Requesting a pattern the trace never recorded is a typed
/// [`EngineError::TraceMissingPattern`] (the recording is exhausted), not
/// a panic or a silently empty profile.
///
/// The replayed profile is bit-identical to the recorded run's profile —
/// the property the cross-backend equivalence tests pin down.
#[derive(Clone)]
pub struct ReplayBackend {
    trace: Arc<ProfileTrace>,
    /// Trace pattern index → requested pattern index for the collection in
    /// flight (built by `begin_collection`; `None` = not requested).
    mapping: Arc<Vec<Option<usize>>>,
    /// Trace units holding at least one mapped record — the replay's work
    /// units, so a batch only replays its own share of a long recording.
    active_units: Arc<Vec<usize>>,
}

impl ReplayBackend {
    /// Wraps a trace for replay.
    pub fn new(trace: ProfileTrace) -> Self {
        ReplayBackend {
            trace: Arc::new(trace),
            mapping: Arc::new(Vec::new()),
            active_units: Arc::new(Vec::new()),
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &ProfileTrace {
        &self.trace
    }
}

impl ProfileSource for ReplayBackend {
    fn k(&self) -> usize {
        self.trace.k
    }

    fn label(&self) -> String {
        "replay".to_string()
    }

    fn num_units(&self, patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        if self.mapping.is_empty() {
            // Driven through the raw unit protocol without
            // `begin_collection` (which builds the subset mapping): only
            // the identity replay is possible, and a mismatch must stay
            // loud rather than yield a silently empty collection.
            assert_eq!(
                patterns,
                &self.trace.patterns[..],
                "replay pattern list differs from the recorded trace \
                 (call begin_collection to replay a subset)"
            );
            self.trace.units.len()
        } else {
            self.active_units.len()
        }
    }

    fn begin_collection(
        &mut self,
        patterns: &[ChargedSet],
        _plan: &CollectionPlan,
    ) -> Result<(), EngineError> {
        let mut by_value: HashMap<&ChargedSet, usize> = HashMap::new();
        let mut duplicated: Vec<&ChargedSet> = Vec::new();
        for (ti, p) in self.trace.patterns.iter().enumerate() {
            if by_value.insert(p, ti).is_some() {
                duplicated.push(p);
            }
        }
        let mut mapping = vec![None; self.trace.patterns.len()];
        for (ri, pattern) in patterns.iter().enumerate() {
            // A pattern recorded (or requested) twice has no unambiguous
            // per-batch share of the recorded counts; silently picking one
            // occurrence would undercount, so refuse loudly instead.
            if duplicated.contains(&pattern) {
                return Err(EngineError::Backend {
                    backend: "replay".to_string(),
                    message: format!(
                        "pattern {pattern} was recorded more than once; replaying it is \
                         ambiguous (replay the trace batch by batch instead)"
                    ),
                });
            }
            match by_value.get(pattern) {
                Some(&ti) => {
                    if mapping[ti].replace(ri).is_some() {
                        return Err(EngineError::Backend {
                            backend: "replay".to_string(),
                            message: format!(
                                "pattern {pattern} requested more than once in one collection"
                            ),
                        });
                    }
                }
                None => {
                    return Err(EngineError::TraceMissingPattern {
                        pattern: pattern.to_string(),
                        recorded: self.trace.patterns.len(),
                    })
                }
            }
        }
        let active_units: Vec<usize> = self
            .trace
            .units
            .iter()
            .enumerate()
            .filter(|(_, ut)| {
                ut.miscorrections
                    .iter()
                    .any(|&(pi, _, _)| mapping[pi].is_some())
                    || ut.trials.iter().any(|&(pi, _)| mapping[pi].is_some())
            })
            .map(|(ui, _)| ui)
            .collect();
        self.mapping = Arc::new(mapping);
        self.active_units = Arc::new(active_units);
        Ok(())
    }

    fn run_unit(
        &mut self,
        unit: usize,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        // Identity replay when the raw protocol skipped begin_collection
        // (num_units has already asserted the pattern lists match).
        let identity = self.mapping.is_empty();
        let map = |pi: usize| {
            if identity {
                Some(pi)
            } else {
                self.mapping.get(pi).copied().flatten()
            }
        };
        let ut = if identity {
            &self.trace.units[unit]
        } else {
            &self.trace.units[self.active_units[unit]]
        };
        for &(pi, bit, count) in &ut.miscorrections {
            if let Some(ri) = map(pi) {
                profile.record_miscorrections(ri, bit, count);
            }
        }
        for &(pi, trials) in &ut.trials {
            if let Some(ri) = map(pi) {
                profile.record_trials(ri, trials);
            }
        }
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{collect_with, AnalyticBackend, EngineOptions};
    use crate::pattern::PatternSet;
    use beer_ecc::hamming;

    fn sample_trace() -> (ProfileTrace, MiscorrectionProfile) {
        let code = hamming::shortened(8);
        let patterns = PatternSet::OneTwo.patterns(8);
        let plan = CollectionPlan::quick();
        let mut backend = AnalyticBackend::new(code);
        let profile = collect_with(&mut backend, &patterns, &plan, &EngineOptions::serial());
        let trace = ProfileTrace::record(&mut backend, &patterns, &plan);
        (trace, profile)
    }

    #[test]
    fn replay_reproduces_the_recorded_profile() {
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let mut replay = ReplayBackend::new(trace);
        let replayed = collect_with(
            &mut replay,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        for pi in 0..patterns.len() {
            assert_eq!(original.trials(pi), replayed.trials(pi));
            for j in 0..8 {
                assert_eq!(original.count(pi, j), replayed.count(pi, j));
            }
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let (trace, _) = sample_trace();
        let text = trace.to_text();
        let parsed = ProfileTrace::from_text(&text).expect("roundtrip parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ProfileTrace::from_text("").is_err());
        assert!(ProfileTrace::from_text("not-a-trace").is_err());
        assert!(ProfileTrace::from_text("beer-profile-trace v1\nbogus 1").is_err());
        assert!(ProfileTrace::from_text("beer-profile-trace v1\nk 4\nm 0 0 1").is_err());
        // Out-of-range record.
        assert!(
            ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 0\nunit\nm 5 0 1")
                .is_err()
        );
    }

    #[test]
    fn duplicate_k_line_is_rejected_with_line_number() {
        // Before the fix the second k silently rescoped later patterns.
        let err = ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 0\nk 8\npattern 7")
            .unwrap_err();
        assert!(err.contains("line 4"), "got {err:?}");
        assert!(err.contains("duplicate k"), "got {err:?}");
    }

    #[test]
    fn pattern_after_unit_records_is_rejected_with_line_number() {
        let err = ProfileTrace::from_text(
            "beer-profile-trace v1\nk 4\npattern 0\nunit\nt 0 3\npattern 1",
        )
        .unwrap_err();
        assert!(err.contains("line 6"), "got {err:?}");
        assert!(err.contains("after unit"), "got {err:?}");
    }

    #[test]
    fn replay_serves_pattern_subsets_by_value() {
        // A session replaying a multi-batch trace asks for one batch at a
        // time; counts and trials must match the original per batch.
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let subset: Vec<ChargedSet> = patterns.iter().skip(3).cloned().collect();
        let mut replay = ReplayBackend::new(trace);
        let replayed = collect_with(
            &mut replay,
            &subset,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        for (si, pattern) in subset.iter().enumerate() {
            let oi = patterns.iter().position(|p| p == pattern).unwrap();
            assert_eq!(original.trials(oi), replayed.trials(si));
            for j in 0..8 {
                assert_eq!(original.count(oi, j), replayed.count(si, j));
            }
        }
    }

    #[test]
    fn replay_of_unrecorded_pattern_is_a_typed_error() {
        // Exhausting the recording must be an EngineError, not a panic or
        // a silent empty profile.
        let (trace, _) = sample_trace();
        let recorded = trace.patterns.len();
        let mut replay = ReplayBackend::new(trace);
        let missing = vec![ChargedSet::new(vec![0, 1, 2], 8)];
        let err = crate::engine::try_collect_with(
            &mut replay,
            &missing,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        )
        .expect_err("unrecorded pattern must not replay");
        assert_eq!(
            err,
            EngineError::TraceMissingPattern {
                pattern: missing[0].to_string(),
                recorded,
            }
        );
        assert!(err.to_string().contains("3-CHARGED"), "got {err}");
    }

    #[test]
    fn replay_of_duplicated_patterns_is_refused_not_undercounted() {
        // The same pattern recorded in two batches has no unambiguous
        // per-batch share; the backend must refuse rather than silently
        // drop one occurrence's counts.
        let text = "beer-profile-trace v1\nk 4\npattern 1\npattern 1\n\
                    unit\nt 0 3\nunit\nt 1 3\n";
        let trace = ProfileTrace::from_text(text).expect("well-formed");
        let request = vec![ChargedSet::new(vec![1], 4)];
        let mut replay = ReplayBackend::new(trace);
        let err = crate::engine::try_collect_with(
            &mut replay,
            &request,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        )
        .expect_err("duplicated recording must not replay");
        assert!(
            matches!(&err, EngineError::Backend { backend, .. } if backend == "replay"),
            "got {err:?}"
        );
        assert!(err.to_string().contains("more than once"), "got {err}");

        // Requesting the same pattern twice in one collection is refused
        // for the same reason.
        let trace = ProfileTrace::from_text("beer-profile-trace v1\nk 4\npattern 1\nunit\nt 0 3\n")
            .expect("well-formed");
        let twice = vec![ChargedSet::new(vec![1], 4), ChargedSet::new(vec![1], 4)];
        let mut replay = ReplayBackend::new(trace);
        let err = crate::engine::try_collect_with(
            &mut replay,
            &twice,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        )
        .expect_err("duplicate request must not replay");
        assert!(
            err.to_string().contains("requested more than once"),
            "got {err}"
        );
    }

    #[test]
    fn raw_protocol_replay_without_begin_collection_is_identity_and_loud() {
        // Drivers of the bare unit protocol (no begin_collection) get the
        // identity replay with the full unit count — never a silently
        // empty collection.
        let (trace, original) = sample_trace();
        let patterns = trace.patterns.clone();
        let plan = CollectionPlan::quick();
        let mut replay = ReplayBackend::new(trace);
        let n = replay.num_units(&patterns, &plan);
        assert!(n > 0, "raw protocol must see every recorded unit");
        let mut profile = MiscorrectionProfile::new(8, patterns.clone());
        for unit in 0..n {
            replay
                .run_unit(unit, &patterns, &plan, &mut profile)
                .expect("identity replay");
        }
        for pi in 0..patterns.len() {
            assert_eq!(original.trials(pi), profile.trials(pi));
        }
    }

    #[test]
    #[should_panic(expected = "differs from the recorded trace")]
    fn raw_protocol_replay_rejects_mismatched_patterns() {
        let (trace, _) = sample_trace();
        let replay = ReplayBackend::new(trace);
        let other = vec![ChargedSet::new(vec![0, 1, 2], 8)];
        let _ = replay.num_units(&other, &CollectionPlan::quick());
    }

    #[test]
    fn replay_skips_units_belonging_to_other_batches() {
        // A multi-batch trace: batch 1's replay must only execute batch
        // 1's units (no O(batches × units) re-scans).
        let text = "beer-profile-trace v1\nk 4\npattern 0\npattern 1\n\
                    unit\nt 0 5\nunit\nt 1 7\n";
        let trace = ProfileTrace::from_text(text).expect("well-formed");
        let batch1 = vec![ChargedSet::new(vec![0], 4)];
        let mut replay = ReplayBackend::new(trace);
        replay
            .begin_collection(&batch1, &CollectionPlan::quick())
            .expect("batch 1 is recorded");
        assert_eq!(
            replay.num_units(&batch1, &CollectionPlan::quick()),
            1,
            "only the unit carrying pattern 0's records is active"
        );
        let profile = collect_with(
            &mut replay,
            &batch1,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        assert_eq!(profile.trials(0), 5);
    }

    #[test]
    fn to_profile_matches_replayed_collection() {
        let (trace, original) = sample_trace();
        let folded = trace.to_profile();
        for pi in 0..trace.patterns.len() {
            assert_eq!(original.trials(pi), folded.trials(pi));
            for j in 0..8 {
                assert_eq!(original.count(pi, j), folded.count(pi, j));
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let (trace, _) = sample_trace();
        let path = std::env::temp_dir().join("beer_trace_test.txt");
        trace.save(&path).expect("save");
        let loaded = ProfileTrace::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, trace);
    }
}
