//! Exact miscorrection profiles from known ECC functions.
//!
//! Used in two places, mirroring the paper:
//!
//! * the §6.1 correctness evaluation — generate the exact profile of a
//!   known code and check that BEER recovers that code from it, and
//! * the §5.1.3 EINSim cross-check — the analytic profile of a recovered
//!   function must reproduce the experimentally measured profile.

use crate::pattern::ChargedSet;
use crate::profile::{Observation, ProfileConstraints};
use beer_ecc::{miscorrection, LinearCode};

/// Computes the exact (noise-free, fully tested) profile of `code` for the
/// given test patterns, using the closed-form observable-miscorrection
/// predicate.
///
/// # Panics
///
/// Panics if a pattern's dataword length differs from `code.k()`.
pub fn analytic_profile(code: &LinearCode, patterns: &[ChargedSet]) -> ProfileConstraints {
    let k = code.k();
    let entries = patterns
        .iter()
        .map(|pattern| {
            assert_eq!(pattern.k(), k, "pattern length mismatch");
            let obs: Vec<Observation> = (0..k)
                .map(|j| {
                    if pattern.is_charged(j) {
                        Observation::Unknown
                    } else if miscorrection::miscorrection_possible_at(code, pattern.bits(), j) {
                        Observation::Miscorrection
                    } else {
                        Observation::NoMiscorrection
                    }
                })
                .collect();
            (pattern.clone(), obs)
        })
        .collect();
    ProfileConstraints { k, entries }
}

/// Checks whether `code` reproduces every definite fact in `constraints` —
/// the verification BEER applies to each SAT solution (§5.3) and the
/// EINSim-style sanity check of §5.1.3.
pub fn code_matches_constraints(code: &LinearCode, constraints: &ProfileConstraints) -> bool {
    if code.k() != constraints.k {
        return false;
    }
    for (pattern, obs) in &constraints.entries {
        for (j, &o) in obs.iter().enumerate() {
            if o == Observation::Unknown {
                continue;
            }
            let possible = miscorrection::miscorrection_possible_at(code, pattern.bits(), j);
            match o {
                Observation::Miscorrection if !possible => return false,
                Observation::NoMiscorrection if possible => return false,
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;
    use beer_ecc::{design, equivalence, hamming};

    #[test]
    fn eq1_analytic_profile_is_table2() {
        // Table 2: only 1-CHARGED pattern 0 yields miscorrections (bits
        // 1, 2, 3); patterns 1–3 yield none.
        let code = hamming::eq1_code();
        let prof = analytic_profile(&code, &PatternSet::One.patterns(4));
        let row0 = &prof.entries[0].1;
        assert_eq!(row0[0], Observation::Unknown);
        assert_eq!(row0[1], Observation::Miscorrection);
        assert_eq!(row0[2], Observation::Miscorrection);
        assert_eq!(row0[3], Observation::Miscorrection);
        for pi in 1..4 {
            let row = &prof.entries[pi].1;
            for (j, &o) in row.iter().enumerate() {
                if j == pi {
                    assert_eq!(o, Observation::Unknown);
                } else {
                    assert_eq!(o, Observation::NoMiscorrection, "pattern {pi} bit {j}");
                }
            }
        }
    }

    #[test]
    fn code_matches_its_own_profile() {
        let code = hamming::shortened(11);
        let prof = analytic_profile(&code, &PatternSet::OneTwo.patterns(11));
        assert!(code_matches_constraints(&code, &prof));
    }

    #[test]
    fn equivalent_codes_match_each_others_profiles() {
        let code = hamming::shortened(8);
        let permuted = equivalence::permute_parity_rows(&code, &[2, 0, 3, 1]);
        let prof = analytic_profile(&code, &PatternSet::OneTwo.patterns(8));
        assert!(code_matches_constraints(&permuted, &prof));
    }

    #[test]
    fn different_codes_usually_fail_the_check() {
        let b = design::vendor_code(design::Manufacturer::B, 11, 0);
        let c = design::vendor_code(design::Manufacturer::C, 11, 0);
        let prof = analytic_profile(&b, &PatternSet::OneTwo.patterns(11));
        assert!(!code_matches_constraints(&c, &prof));
    }

    #[test]
    fn unknown_entries_do_not_constrain() {
        let b = design::vendor_code(design::Manufacturer::B, 8, 0);
        let c = design::vendor_code(design::Manufacturer::C, 8, 0);
        let prof = analytic_profile(&b, &PatternSet::One.patterns(8));
        // Weakening everything to Unknown makes any code acceptable.
        let all_unknown = ProfileConstraints {
            k: prof.k,
            entries: prof
                .entries
                .iter()
                .map(|(p, obs)| (p.clone(), vec![Observation::Unknown; obs.len()]))
                .collect(),
        };
        assert!(code_matches_constraints(&c, &all_unknown));
    }

    #[test]
    fn mismatched_k_fails() {
        let code = hamming::eq1_code();
        let prof = analytic_profile(&hamming::shortened(8), &PatternSet::One.patterns(8));
        assert!(!code_matches_constraints(&code, &prof));
    }
}
