//! Solving for the ECC function (paper §5.3).
//!
//! The unknown is the `(n−k) × k` parity sub-matrix `P` (§4.2.1 fixes
//! standard form, so `H = [P | I]`). The SAT instance contains:
//!
//! 1. *Basic linear code properties*: every data column of `H` has weight
//!    ≥ 2 (distinct from the zero syndrome and the identity columns) and
//!    data columns are pairwise distinct — exactly what single-error
//!    correction requires.
//! 2. *Canonical form*: rows of `P` in non-decreasing lexicographic order.
//!    This is a complete symmetry break for the parity-bit relabeling
//!    freedom (see `beer_ecc::equivalence`), so each *equivalence class*
//!    of codes corresponds to exactly one SAT model and BEER's uniqueness
//!    check counts classes, as the paper intends.
//! 3. *The miscorrection profile*: for every pattern `A` and bit `j` with
//!    a definite observation, the closed-form predicate
//!    `∃x ⊆ A: supp(P_j ⊕ ⊕_{a∈x} P_a) ⊆ supp(⊕_{a∈A} P_a)`
//!    is asserted (observed) or refuted (not observed). Assignments `x`
//!    and their complements induce identical conditions, so only
//!    `2^{|A|−1}` representatives are encoded.
//!
//! Uniqueness checking enumerates models with blocking clauses until UNSAT
//! or a caller-set cap — "Check Uniqueness" in Figure 6.

use crate::profile::{Observation, ProfileConstraints};
use beer_ecc::LinearCode;
use beer_gf2::BitMatrix;
use beer_sat::{CnfBuilder, Lit, SatResult, Solver, SolverStats, Var};
use std::time::{Duration, Instant};

/// Options for [`solve_profile`].
#[derive(Clone, Copy, Debug)]
pub struct BeerSolverOptions {
    /// Stop after this many solutions (2 suffices to decide uniqueness;
    /// Figure 5 uses a larger cap to count ambiguity).
    pub max_solutions: usize,
    /// Canonical row ordering (on by default; turning it off makes every
    /// parity-bit relabeling appear as a separate solution).
    pub symmetry_breaking: bool,
    /// Re-verify each solution against the profile with the closed-form
    /// predicate (cheap, and guards the encoding against itself).
    pub verify_solutions: bool,
}

impl Default for BeerSolverOptions {
    fn default() -> Self {
        BeerSolverOptions {
            max_solutions: 2,
            symmetry_breaking: true,
            verify_solutions: true,
        }
    }
}

/// The result of a BEER solve.
#[derive(Debug)]
pub struct SolveReport {
    /// Every ECC function found (canonical representatives), up to the cap.
    pub solutions: Vec<LinearCode>,
    /// True if enumeration stopped at the cap (more solutions may exist).
    pub truncated: bool,
    /// Time to the first solution or UNSAT ("Determine Function").
    pub determine_time: Duration,
    /// Total time including uniqueness checking.
    pub total_time: Duration,
    /// CNF size: variables.
    pub num_vars: usize,
    /// CNF size: clauses.
    pub num_clauses: usize,
    /// Final solver statistics (includes the memory estimate).
    pub solver_stats: SolverStats,
}

impl SolveReport {
    /// True if exactly one ECC function (equivalence class) matches.
    pub fn is_unique(&self) -> bool {
        self.solutions.len() == 1 && !self.truncated
    }
}

/// The encoded instance: builder plus the `P`-matrix variables
/// (`vars[r * k + c]` is `P[r][c]`).
pub struct EncodedProblem {
    /// CNF under construction (callers may add constraints before solving).
    pub cnf: CnfBuilder,
    /// The matrix variables, row-major.
    pub p_vars: Vec<Var>,
    /// Parity bits (rows of `P`).
    pub parity_bits: usize,
    /// Data bits (columns of `P`).
    pub k: usize,
}

impl EncodedProblem {
    fn p_lit(&self, r: usize, c: usize) -> Lit {
        self.p_vars[r * self.k + c].positive()
    }
}

/// Builds the SAT instance for a profile (constraints 1–3 above).
///
/// # Panics
///
/// Panics if `parity_bits < 2`, `k == 0`, or the constraints' dataword
/// length differs from `k`.
pub fn encode_profile(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> EncodedProblem {
    assert!(k > 0, "k must be positive");
    assert!(parity_bits >= 2, "a SEC code needs at least 2 parity bits");
    assert_eq!(constraints.k, k, "constraint dataword length mismatch");

    let mut cnf = CnfBuilder::new();
    let p_vars: Vec<Var> = (0..parity_bits * k).map(|_| cnf.new_var()).collect();
    let mut problem = EncodedProblem {
        cnf,
        p_vars,
        parity_bits,
        k,
    };

    encode_code_validity(&mut problem);
    if options.symmetry_breaking {
        encode_row_order(&mut problem);
    }
    encode_observations(&mut problem, constraints);
    problem
}

/// Constraint 1: data columns have weight ≥ 2 and are pairwise distinct.
fn encode_code_validity(problem: &mut EncodedProblem) {
    let (p, k) = (problem.parity_bits, problem.k);
    for c in 0..k {
        let col: Vec<Lit> = (0..p).map(|r| problem.p_lit(r, c)).collect();
        // At least two set bits: at least one overall, and at least one in
        // every leave-one-out subset.
        problem.cnf.at_least_one(&col);
        for skip in 0..p {
            let rest: Vec<Lit> = (0..p)
                .filter(|&r| r != skip)
                .map(|r| problem.p_lit(r, c))
                .collect();
            problem.cnf.at_least_one(&rest);
        }
    }
    for c1 in 0..k {
        for c2 in (c1 + 1)..k {
            let diffs: Vec<Lit> = (0..p)
                .map(|r| {
                    let a = problem.p_lit(r, c1);
                    let b = problem.p_lit(r, c2);
                    problem.cnf.xor(a, b)
                })
                .collect();
            problem.cnf.at_least_one(&diffs);
        }
    }
}

/// Constraint 2: rows of `P` in non-decreasing lexicographic order
/// (bit 0 most significant, matching `BitVec::lex_cmp`).
fn encode_row_order(problem: &mut EncodedProblem) {
    let (p, k) = (problem.parity_bits, problem.k);
    for r in 0..p.saturating_sub(1) {
        let row_a: Vec<Lit> = (0..k).map(|c| problem.p_lit(r, c)).collect();
        let row_b: Vec<Lit> = (0..k).map(|c| problem.p_lit(r + 1, c)).collect();
        problem.cnf.lex_le(&row_a, &row_b);
    }
}

/// Constraint 3: the profile facts.
fn encode_observations(problem: &mut EncodedProblem, constraints: &ProfileConstraints) {
    let p = problem.parity_bits;
    for (pattern, observations) in &constraints.entries {
        let charged = pattern.bits();
        let t = charged.len();
        assert!(t >= 1 && t <= 16, "unsupported pattern order {t}");
        // Representatives of x modulo complement: fix x₀ = 0.
        let reps: Vec<u32> = if t == 1 {
            vec![0]
        } else {
            (0u32..(1 << t)).filter(|x| x & 1 == 0).collect()
        };

        // w_r = ⊕_{a∈A} P[r][a]: the CHARGED parity-bit indicator.
        let w: Vec<Lit> = (0..p)
            .map(|r| {
                let terms: Vec<Lit> = charged.iter().map(|&a| problem.p_lit(r, a)).collect();
                problem.cnf.xor_many(&terms)
            })
            .collect();

        for (j, &obs) in observations.iter().enumerate() {
            if obs == Observation::Unknown {
                continue;
            }
            // v^x_r = P[r][j] ⊕ ⊕_{x_i=1} P[r][a_i].
            let v_rows: Vec<Vec<Lit>> = reps
                .iter()
                .map(|&x| {
                    (0..p)
                        .map(|r| {
                            let mut terms = vec![problem.p_lit(r, j)];
                            for (i, &a) in charged.iter().enumerate() {
                                if x >> i & 1 == 1 {
                                    terms.push(problem.p_lit(r, a));
                                }
                            }
                            problem.cnf.xor_many(&terms)
                        })
                        .collect()
                })
                .collect();

            match obs {
                Observation::Miscorrection => {
                    if reps.len() == 1 {
                        // Directly: ∀r (v_r → w_r).
                        for r in 0..p {
                            problem.cnf.add_clause(&[!v_rows[0][r], w[r]]);
                        }
                    } else {
                        let mut guards = Vec::with_capacity(reps.len());
                        for v in &v_rows {
                            let g = problem.cnf.new_lit();
                            for r in 0..p {
                                problem.cnf.add_clause(&[!g, !v[r], w[r]]);
                            }
                            guards.push(g);
                        }
                        problem.cnf.at_least_one(&guards);
                    }
                }
                Observation::NoMiscorrection => {
                    // Every representative must fail: ∃r (v_r ∧ ¬w_r).
                    for v in &v_rows {
                        let mut witnesses = Vec::with_capacity(p);
                        for r in 0..p {
                            let h = problem.cnf.new_lit();
                            problem.cnf.add_clause(&[!h, v[r]]);
                            problem.cnf.add_clause(&[!h, !w[r]]);
                            witnesses.push(h);
                        }
                        problem.cnf.at_least_one(&witnesses);
                    }
                }
                Observation::Unknown => unreachable!(),
            }
        }
    }
}

/// Extracts the `P` matrix from a satisfying assignment.
fn extract_solution(solver: &Solver, problem: &EncodedProblem) -> LinearCode {
    let (p, k) = (problem.parity_bits, problem.k);
    let mut m = BitMatrix::zeros(p, k);
    for r in 0..p {
        for c in 0..k {
            if solver.value(problem.p_vars[r * k + c]) == Some(true) {
                m.set(r, c, true);
            }
        }
    }
    LinearCode::from_parity_submatrix(m)
        .expect("SAT constraints guarantee a valid SEC code")
}

/// Runs BEER's step 3 end to end: encode the profile, find every ECC
/// function consistent with it (up to `options.max_solutions`), and report
/// runtimes and solver statistics.
///
/// A report with exactly one solution means the profile uniquely
/// identifies the chip's ECC function up to parity-bit relabeling.
///
/// # Panics
///
/// Panics under the conditions of [`encode_profile`], or if a solution
/// fails re-verification (which would indicate an encoding bug).
pub fn solve_profile(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> SolveReport {
    let start = Instant::now();
    let EncodedProblem { cnf, p_vars, .. } = encode_profile(k, parity_bits, constraints, options);
    let num_vars = cnf.num_vars();
    let num_clauses = cnf.num_clauses();
    let mut solver = cnf.into_solver();

    let mut solutions = Vec::new();
    let mut truncated = false;
    let mut determine_time = Duration::ZERO;
    loop {
        let result = solver.solve();
        if solutions.is_empty() {
            determine_time = start.elapsed();
        }
        if result != SatResult::Sat {
            break;
        }
        let problem_view = EncodedProblem {
            cnf: CnfBuilder::new(),
            p_vars: p_vars.clone(),
            parity_bits,
            k,
        };
        let code = extract_solution(&solver, &problem_view);
        if options.verify_solutions {
            assert!(
                crate::analytic::code_matches_constraints(&code, constraints),
                "SAT solution violates the profile — encoding bug"
            );
        }
        solutions.push(code);
        if solutions.len() >= options.max_solutions {
            truncated = true;
            break;
        }
        // Block this model (projected onto the P variables).
        let block: Vec<Lit> = p_vars
            .iter()
            .map(|&v| v.lit(solver.value(v) != Some(true)))
            .collect();
        if !solver.add_clause(&block) {
            break;
        }
    }

    SolveReport {
        solutions,
        truncated,
        determine_time,
        total_time: start.elapsed(),
        num_vars,
        num_clauses,
        solver_stats: solver.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::PatternSet;
    use beer_ecc::{design, equivalence, hamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recover(
        code: &LinearCode,
        set: PatternSet,
        max_solutions: usize,
    ) -> SolveReport {
        let profile = analytic_profile(code, &set.patterns(code.k()));
        solve_profile(
            code.k(),
            code.parity_bits(),
            &profile,
            &BeerSolverOptions {
                max_solutions,
                ..BeerSolverOptions::default()
            },
        )
    }

    #[test]
    fn recovers_eq1_code_uniquely_from_1charged() {
        // Eq. 1 is full length, so 1-CHARGED alone must suffice (§4.2.4).
        let code = hamming::eq1_code();
        let report = recover(&code, PatternSet::One, 8);
        assert_eq!(report.solutions.len(), 1, "expected a unique solution");
        assert!(report.is_unique());
        assert!(equivalence::equivalent(&report.solutions[0], &code));
    }

    #[test]
    fn recovers_full_length_p4_code() {
        let code = hamming::full_length(4); // (15, 11)
        let report = recover(&code, PatternSet::One, 4);
        assert_eq!(report.solutions.len(), 1);
        assert!(equivalence::equivalent(&report.solutions[0], &code));
    }

    #[test]
    fn recovers_random_shortened_codes_with_12charged() {
        let mut rng = StdRng::seed_from_u64(2024);
        for k in [5usize, 8, 12, 16] {
            let code = hamming::random_sec(k, &mut rng);
            let report = recover(&code, PatternSet::OneTwo, 4);
            assert_eq!(
                report.solutions.len(),
                1,
                "k={k}: {{1,2}}-CHARGED must be unique (Fig. 5)"
            );
            assert!(
                equivalence::equivalent(&report.solutions[0], &code),
                "k={k}: wrong code recovered"
            );
        }
    }

    #[test]
    fn shortened_codes_may_be_ambiguous_under_1charged() {
        // Fig. 5: 1-CHARGED alone sometimes leaves multiple candidates for
        // shortened codes. Find a seed exhibiting ambiguity to demonstrate.
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_ambiguous = false;
        for _ in 0..30 {
            let code = hamming::random_sec(6, &mut rng);
            let report = recover(&code, PatternSet::One, 50);
            assert!(!report.solutions.is_empty());
            // The true code must always be among the solutions.
            assert!(
                report
                    .solutions
                    .iter()
                    .any(|s| equivalence::equivalent(s, &code)),
                "true code missing from solution set"
            );
            if report.solutions.len() > 1 {
                seen_ambiguous = true;
            }
        }
        assert!(
            seen_ambiguous,
            "no ambiguity in 30 shortened k=6 codes — unexpected for 1-CHARGED"
        );
    }

    #[test]
    fn vendor_codes_recover_uniquely() {
        for m in design::Manufacturer::ALL {
            let code = design::vendor_code(m, 11, 3);
            let report = recover(&code, PatternSet::OneTwo, 4);
            assert_eq!(report.solutions.len(), 1, "manufacturer {m}");
            assert!(equivalence::equivalent(&report.solutions[0], &code));
        }
    }

    #[test]
    fn without_symmetry_breaking_row_permutations_multiply() {
        let code = hamming::eq1_code();
        let profile = analytic_profile(&code, &PatternSet::One.patterns(4));
        let report = solve_profile(
            4,
            3,
            &profile,
            &BeerSolverOptions {
                max_solutions: 50,
                symmetry_breaking: false,
                verify_solutions: true,
            },
        );
        // All solutions must be equivalent to the original, and there must
        // be several of them (row permutations).
        assert!(report.solutions.len() > 1);
        for s in &report.solutions {
            assert!(equivalence::equivalent(s, &code));
        }
    }

    #[test]
    fn unknown_only_profile_is_wildly_ambiguous() {
        // With no facts, every valid SEC code matches. For k=4, p=3 all
        // four candidate columns {011,101,110,111} must be used; the 4! = 24
        // column assignments fall into 4 equivalence classes under the
        // row-permutation group (order 6), and the solver must find all of
        // them and no more.
        let profile = ProfileConstraints {
            k: 4,
            entries: vec![],
        };
        let report = solve_profile(4, 3, &profile, &BeerSolverOptions {
            max_solutions: 100,
            ..BeerSolverOptions::default()
        });
        assert_eq!(report.solutions.len(), 4);
        assert!(!report.truncated);
        // All solutions are pairwise inequivalent.
        for i in 0..report.solutions.len() {
            for j in (i + 1)..report.solutions.len() {
                assert!(!equivalence::equivalent(
                    &report.solutions[i],
                    &report.solutions[j]
                ));
            }
        }
    }

    #[test]
    fn contradictory_profile_is_unsat() {
        // Claim: every 1-CHARGED pattern miscorrects every other bit. For
        // k=4, p=3 that forces supp(P_j) ⊆ supp(P_a) for all pairs — i.e.
        // all supports equal — contradicting column distinctness together
        // with weight ≥ 2 in 3 rows... (columns within one support class
        // of size 3 can hold at most C(3,2)+1 = 4 columns of weight ≥ 2 but
        // all would need *equal* supports to contain each other both ways).
        let code = hamming::eq1_code();
        let base = analytic_profile(&code, &PatternSet::One.patterns(4));
        let all_miscorrect = ProfileConstraints {
            k: 4,
            entries: base
                .entries
                .iter()
                .map(|(p, obs)| {
                    let forced = obs
                        .iter()
                        .map(|&o| match o {
                            Observation::Unknown => Observation::Unknown,
                            _ => Observation::Miscorrection,
                        })
                        .collect();
                    (p.clone(), forced)
                })
                .collect(),
        };
        let report = solve_profile(4, 3, &all_miscorrect, &BeerSolverOptions::default());
        // All supports equal ⇒ only 1 distinct weight-2+ support set can
        // contain 4 distinct columns if |supp| = 3 (columns 111, 110, 101,
        // 011 — all contained in 111). That actually *is* satisfiable!
        // What matters here: the solver must terminate and any solution
        // must satisfy the forced profile.
        for s in &report.solutions {
            assert!(crate::analytic::code_matches_constraints(s, &all_miscorrect));
        }
    }

    #[test]
    fn report_metadata_is_populated() {
        let code = hamming::eq1_code();
        let report = recover(&code, PatternSet::One, 2);
        assert!(report.num_vars >= 12);
        assert!(report.num_clauses > 0);
        assert!(report.total_time >= report.determine_time);
        assert!(report.solver_stats.memory_bytes > 0);
    }
}
