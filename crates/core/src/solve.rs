//! Solving for the ECC function (paper §5.3).
//!
//! The unknown is the `(n−k) × k` parity sub-matrix `P` (§4.2.1 fixes
//! standard form, so `H = [P | I]`). The SAT instance contains:
//!
//! 1. *Basic linear code properties*: every data column of `H` has weight
//!    ≥ 2 (distinct from the zero syndrome and the identity columns) and
//!    data columns are pairwise distinct — exactly what single-error
//!    correction requires.
//! 2. *Canonical form*: rows of `P` in non-decreasing lexicographic order.
//!    This is a complete symmetry break for the parity-bit relabeling
//!    freedom (see `beer_ecc::equivalence`), so each *equivalence class*
//!    of codes corresponds to exactly one SAT model and BEER's uniqueness
//!    check counts classes, as the paper intends.
//! 3. *The miscorrection profile*: for every pattern `A` and bit `j` with
//!    a definite observation, the closed-form predicate
//!    `∃x ⊆ A: supp(P_j ⊕ ⊕_{a∈x} P_a) ⊆ supp(⊕_{a∈A} P_a)`
//!    is asserted (observed) or refuted (not observed). Assignments `x`
//!    and their complements induce identical conditions, so only
//!    `2^{|A|−1}` representatives are encoded.
//!
//! Uniqueness checking enumerates models with blocking clauses until UNSAT
//! or a caller-set cap — "Check Uniqueness" in Figure 6.

use crate::collect::CollectionPlan;
use crate::engine::{collect_with, EngineOptions, ProfileSource};
use crate::pattern::ChargedSet;
use crate::profile::{Observation, ProfileConstraints, ThresholdFilter};
use beer_ecc::LinearCode;
use beer_gf2::BitMatrix;
use beer_sat::{CnfBuilder, Lit, SatResult, Solver, SolverSession, SolverStats, Var};
use std::time::{Duration, Instant};

/// Options for [`solve_profile`].
#[derive(Clone, Copy, Debug)]
pub struct BeerSolverOptions {
    /// Stop after this many solutions (2 suffices to decide uniqueness;
    /// Figure 5 uses a larger cap to count ambiguity).
    pub max_solutions: usize,
    /// Canonical row ordering (on by default; turning it off makes every
    /// parity-bit relabeling appear as a separate solution).
    pub symmetry_breaking: bool,
    /// Re-verify each solution against the profile with the closed-form
    /// predicate (cheap, and guards the encoding against itself).
    pub verify_solutions: bool,
}

impl Default for BeerSolverOptions {
    fn default() -> Self {
        BeerSolverOptions {
            max_solutions: 2,
            symmetry_breaking: true,
            verify_solutions: true,
        }
    }
}

/// The result of a BEER solve.
#[derive(Debug)]
pub struct SolveReport {
    /// Every ECC function found (canonical representatives), up to the cap.
    pub solutions: Vec<LinearCode>,
    /// True if enumeration stopped at the cap (more solutions may exist).
    pub truncated: bool,
    /// Time to the first solution or UNSAT ("Determine Function").
    pub determine_time: Duration,
    /// Total time including uniqueness checking.
    pub total_time: Duration,
    /// CNF size: variables.
    pub num_vars: usize,
    /// CNF size: clauses.
    pub num_clauses: usize,
    /// Final solver statistics (includes the memory estimate).
    pub solver_stats: SolverStats,
}

impl SolveReport {
    /// True if exactly one ECC function (equivalence class) matches.
    pub fn is_unique(&self) -> bool {
        self.solutions.len() == 1 && !self.truncated
    }
}

/// The encoded instance: builder plus the `P`-matrix variables
/// (`vars[r * k + c]` is `P[r][c]`).
pub struct EncodedProblem {
    /// CNF under construction (callers may add constraints before solving).
    pub cnf: CnfBuilder,
    /// The matrix variables, row-major.
    pub p_vars: Vec<Var>,
    /// Parity bits (rows of `P`).
    pub parity_bits: usize,
    /// Data bits (columns of `P`).
    pub k: usize,
}

impl EncodedProblem {
    fn p_lit(&self, r: usize, c: usize) -> Lit {
        self.p_vars[r * self.k + c].positive()
    }
}

/// Builds the SAT instance for a profile (constraints 1–3 above).
///
/// # Panics
///
/// Panics if `parity_bits < 2`, `k == 0`, or the constraints' dataword
/// length differs from `k`.
pub fn encode_profile(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> EncodedProblem {
    assert!(k > 0, "k must be positive");
    assert!(parity_bits >= 2, "a SEC code needs at least 2 parity bits");
    assert_eq!(constraints.k, k, "constraint dataword length mismatch");

    let mut problem = encode_base(k, parity_bits, options);
    encode_observations(&mut problem, constraints);
    problem
}

/// Encodes the profile-independent part of the instance (constraints 1–2):
/// code validity and, if enabled, the canonical row order.
///
/// # Panics
///
/// Panics if `parity_bits < 2` or `k == 0`.
fn encode_base(k: usize, parity_bits: usize, options: &BeerSolverOptions) -> EncodedProblem {
    assert!(k > 0, "k must be positive");
    assert!(parity_bits >= 2, "a SEC code needs at least 2 parity bits");
    let mut cnf = CnfBuilder::new();
    let p_vars: Vec<Var> = (0..parity_bits * k).map(|_| cnf.new_var()).collect();
    let mut problem = EncodedProblem {
        cnf,
        p_vars,
        parity_bits,
        k,
    };
    encode_code_validity(&mut problem);
    if options.symmetry_breaking {
        encode_row_order(&mut problem);
    }
    problem
}

/// Constraint 1: data columns have weight ≥ 2 and are pairwise distinct.
fn encode_code_validity(problem: &mut EncodedProblem) {
    let (p, k) = (problem.parity_bits, problem.k);
    for c in 0..k {
        let col: Vec<Lit> = (0..p).map(|r| problem.p_lit(r, c)).collect();
        // At least two set bits: at least one overall, and at least one in
        // every leave-one-out subset.
        problem.cnf.at_least_one(&col);
        for skip in 0..p {
            let rest: Vec<Lit> = (0..p)
                .filter(|&r| r != skip)
                .map(|r| problem.p_lit(r, c))
                .collect();
            problem.cnf.at_least_one(&rest);
        }
    }
    for c1 in 0..k {
        for c2 in (c1 + 1)..k {
            let diffs: Vec<Lit> = (0..p)
                .map(|r| {
                    let a = problem.p_lit(r, c1);
                    let b = problem.p_lit(r, c2);
                    problem.cnf.xor(a, b)
                })
                .collect();
            problem.cnf.at_least_one(&diffs);
        }
    }
}

/// Constraint 2: rows of `P` in non-decreasing lexicographic order
/// (bit 0 most significant, matching `BitVec::lex_cmp`).
fn encode_row_order(problem: &mut EncodedProblem) {
    let (p, k) = (problem.parity_bits, problem.k);
    for r in 0..p.saturating_sub(1) {
        let row_a: Vec<Lit> = (0..k).map(|c| problem.p_lit(r, c)).collect();
        let row_b: Vec<Lit> = (0..k).map(|c| problem.p_lit(r + 1, c)).collect();
        problem.cnf.lex_le(&row_a, &row_b);
    }
}

/// Constraint 3: the profile facts.
fn encode_observations(problem: &mut EncodedProblem, constraints: &ProfileConstraints) {
    for (pattern, observations) in &constraints.entries {
        encode_observation_entry(problem, pattern, observations);
    }
}

/// Encodes one pattern's observations (the per-entry slice of constraint
/// 3) — the unit of incremental encoding used by [`ProgressiveSolver`].
fn encode_observation_entry(
    problem: &mut EncodedProblem,
    pattern: &ChargedSet,
    observations: &[Observation],
) {
    let p = problem.parity_bits;
    {
        let charged = pattern.bits();
        let t = charged.len();
        assert!((1..=16).contains(&t), "unsupported pattern order {t}");
        // Representatives of x modulo complement: fix x₀ = 0.
        let reps: Vec<u32> = if t == 1 {
            vec![0]
        } else {
            (0u32..(1 << t)).filter(|x| x & 1 == 0).collect()
        };

        // w_r = ⊕_{a∈A} P[r][a]: the CHARGED parity-bit indicator.
        let w: Vec<Lit> = (0..p)
            .map(|r| {
                let terms: Vec<Lit> = charged.iter().map(|&a| problem.p_lit(r, a)).collect();
                problem.cnf.xor_many(&terms)
            })
            .collect();

        for (j, &obs) in observations.iter().enumerate() {
            if obs == Observation::Unknown {
                continue;
            }
            // v^x_r = P[r][j] ⊕ ⊕_{x_i=1} P[r][a_i].
            let v_rows: Vec<Vec<Lit>> = reps
                .iter()
                .map(|&x| {
                    (0..p)
                        .map(|r| {
                            let mut terms = vec![problem.p_lit(r, j)];
                            for (i, &a) in charged.iter().enumerate() {
                                if x >> i & 1 == 1 {
                                    terms.push(problem.p_lit(r, a));
                                }
                            }
                            problem.cnf.xor_many(&terms)
                        })
                        .collect()
                })
                .collect();

            match obs {
                Observation::Miscorrection => {
                    if reps.len() == 1 {
                        // Directly: ∀r (v_r → w_r).
                        for r in 0..p {
                            problem.cnf.add_clause(&[!v_rows[0][r], w[r]]);
                        }
                    } else {
                        let mut guards = Vec::with_capacity(reps.len());
                        for v in &v_rows {
                            let g = problem.cnf.new_lit();
                            for r in 0..p {
                                problem.cnf.add_clause(&[!g, !v[r], w[r]]);
                            }
                            guards.push(g);
                        }
                        problem.cnf.at_least_one(&guards);
                    }
                }
                Observation::NoMiscorrection => {
                    // Every representative must fail: ∃r (v_r ∧ ¬w_r).
                    for v in &v_rows {
                        let mut witnesses = Vec::with_capacity(p);
                        for r in 0..p {
                            let h = problem.cnf.new_lit();
                            problem.cnf.add_clause(&[!h, v[r]]);
                            problem.cnf.add_clause(&[!h, !w[r]]);
                            witnesses.push(h);
                        }
                        problem.cnf.at_least_one(&witnesses);
                    }
                }
                Observation::Unknown => unreachable!(),
            }
        }
    }
}

/// Extracts the `P` matrix from a satisfying assignment.
fn extract_solution(solver: &Solver, problem: &EncodedProblem) -> LinearCode {
    let (p, k) = (problem.parity_bits, problem.k);
    let mut m = BitMatrix::zeros(p, k);
    for r in 0..p {
        for c in 0..k {
            if solver.value(problem.p_vars[r * k + c]) == Some(true) {
                m.set(r, c, true);
            }
        }
    }
    LinearCode::from_parity_submatrix(m).expect("SAT constraints guarantee a valid SEC code")
}

/// Runs BEER's step 3 end to end: encode the profile, find every ECC
/// function consistent with it (up to `options.max_solutions`), and report
/// runtimes and solver statistics.
///
/// A report with exactly one solution means the profile uniquely
/// identifies the chip's ECC function up to parity-bit relabeling.
///
/// # Panics
///
/// Panics under the conditions of [`encode_profile`], or if a solution
/// fails re-verification (which would indicate an encoding bug).
pub fn solve_profile(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> SolveReport {
    let start = Instant::now();
    let EncodedProblem { cnf, p_vars, .. } = encode_profile(k, parity_bits, constraints, options);
    let num_vars = cnf.num_vars();
    let num_clauses = cnf.num_clauses();
    let mut solver = cnf.into_solver();

    let mut solutions = Vec::new();
    let mut truncated = false;
    let mut determine_time = Duration::ZERO;
    loop {
        let result = solver.solve();
        if solutions.is_empty() {
            determine_time = start.elapsed();
        }
        if result != SatResult::Sat {
            break;
        }
        let problem_view = EncodedProblem {
            cnf: CnfBuilder::new(),
            p_vars: p_vars.clone(),
            parity_bits,
            k,
        };
        let code = extract_solution(&solver, &problem_view);
        if options.verify_solutions {
            assert!(
                crate::analytic::code_matches_constraints(&code, constraints),
                "SAT solution violates the profile — encoding bug"
            );
        }
        solutions.push(code);
        if solutions.len() >= options.max_solutions {
            truncated = true;
            break;
        }
        // Block this model (projected onto the P variables).
        let block: Vec<Lit> = p_vars
            .iter()
            .map(|&v| v.lit(solver.value(v) != Some(true)))
            .collect();
        if !solver.add_clause(&block) {
            break;
        }
    }

    SolveReport {
        solutions,
        truncated,
        determine_time,
        total_time: start.elapsed(),
        num_vars,
        num_clauses,
        solver_stats: solver.stats(),
    }
}

// ---------------------------------------------------------------------------
// Progressive solving
// ---------------------------------------------------------------------------

/// An incremental BEER solver: constraints stream in pattern by pattern and
/// are pushed into a live SAT session, so each uniqueness check reuses the
/// encoding *and* every clause the solver learned in earlier rounds,
/// instead of re-encoding from scratch (the paper's §6.3 runtime
/// optimization).
///
/// Blocking clauses from uniqueness checks live in an assumption scope that
/// is retracted after each check ([`beer_sat::SolverSession`]), so they
/// never leak into later rounds.
///
/// # Examples
///
/// ```
/// use beer_core::pattern::PatternSet;
/// use beer_core::solve::{BeerSolverOptions, ProgressiveSolver};
/// use beer_core::analytic::analytic_profile;
/// use beer_ecc::{equivalence, hamming};
///
/// let secret = hamming::eq1_code();
/// let profile = analytic_profile(&secret, &PatternSet::One.patterns(4));
/// let mut solver = ProgressiveSolver::new(4, 3, BeerSolverOptions::default());
/// solver.push_constraints(&profile);
/// let report = solver.check();
/// assert!(report.is_unique());
/// assert!(equivalence::equivalent(&report.solutions[0], &secret));
/// ```
pub struct ProgressiveSolver {
    problem: EncodedProblem,
    session: SolverSession,
    options: BeerSolverOptions,
    /// Every definite fact pushed so far (kept for solution verification).
    accumulated: ProfileConstraints,
    facts_encoded: usize,
    root_conflict: bool,
}

impl ProgressiveSolver {
    /// Creates a solver for `k` data bits and `parity_bits` parity bits,
    /// with the base constraints (code validity + canonical form) already
    /// encoded.
    ///
    /// # Panics
    ///
    /// Panics if `parity_bits < 2` or `k == 0`.
    pub fn new(k: usize, parity_bits: usize, options: BeerSolverOptions) -> Self {
        let mut problem = encode_base(k, parity_bits, &options);
        let mut session = SolverSession::new();
        let ok = problem.cnf.flush_into(session.solver_mut());
        ProgressiveSolver {
            problem,
            session,
            options,
            accumulated: ProfileConstraints {
                k,
                entries: Vec::new(),
            },
            facts_encoded: 0,
            root_conflict: !ok,
        }
    }

    /// Dataword length.
    pub fn k(&self) -> usize {
        self.problem.k
    }

    /// Number of definite facts encoded so far.
    pub fn facts_encoded(&self) -> usize {
        self.facts_encoded
    }

    /// Current CNF size as `(variables, clauses)`.
    pub fn cnf_size(&self) -> (usize, usize) {
        (self.problem.cnf.num_vars(), self.problem.cnf.num_clauses())
    }

    /// Streams new constraints into the live session. Patterns already
    /// pushed should not be pushed again (their clauses would be encoded
    /// twice — harmless but wasteful).
    ///
    /// # Panics
    ///
    /// Panics if the constraints' dataword length differs from `k`.
    pub fn push_constraints(&mut self, constraints: &ProfileConstraints) {
        assert_eq!(
            constraints.k, self.problem.k,
            "constraint dataword length mismatch"
        );
        for (pattern, observations) in &constraints.entries {
            encode_observation_entry(&mut self.problem, pattern, observations);
            self.facts_encoded += observations
                .iter()
                .filter(|&&o| o != Observation::Unknown)
                .count();
            self.accumulated
                .entries
                .push((pattern.clone(), observations.clone()));
        }
        if !self.problem.cnf.flush_into(self.session.solver_mut()) {
            self.root_conflict = true;
        }
    }

    /// Runs a uniqueness check over everything pushed so far: enumerates
    /// consistent ECC functions up to `options.max_solutions`, with the
    /// blocking clauses retracted afterwards so the session stays clean for
    /// the next round.
    ///
    /// # Panics
    ///
    /// Panics if `options.verify_solutions` is set and a solution violates
    /// the accumulated constraints (an encoding bug).
    pub fn check(&mut self) -> SolveReport {
        let start = Instant::now();
        let (num_vars, num_clauses) = self.cnf_size();
        let mut solutions: Vec<LinearCode> = Vec::new();
        let mut truncated = false;
        let mut determine_time = Duration::ZERO;

        if !self.root_conflict {
            // The guard comes from the *encoder's* variable space so future
            // constraint pushes can never collide with it.
            let guard = self.problem.cnf.new_var().positive();
            self.session
                .solver_mut()
                .reserve_vars(self.problem.cnf.num_vars());
            let scope = self.session.push_scope_with_guard(guard);
            loop {
                let result = self.session.solve();
                if solutions.is_empty() {
                    determine_time = start.elapsed();
                }
                if result != SatResult::Sat {
                    break;
                }
                let code = extract_solution(self.session.solver(), &self.problem);
                if self.options.verify_solutions {
                    assert!(
                        crate::analytic::code_matches_constraints(&code, &self.accumulated),
                        "SAT solution violates the profile — encoding bug"
                    );
                }
                solutions.push(code);
                if solutions.len() >= self.options.max_solutions {
                    truncated = true;
                    break;
                }
                let block: Vec<Lit> = self
                    .problem
                    .p_vars
                    .iter()
                    .map(|&v| v.lit(self.session.value(v) != Some(true)))
                    .collect();
                if !self.session.add_scoped_clause(scope, &block) {
                    break;
                }
            }
            self.session.pop_scope(scope);
        }

        SolveReport {
            solutions,
            truncated,
            determine_time,
            total_time: start.elapsed(),
            num_vars,
            num_clauses,
            solver_stats: self.session.stats(),
        }
    }
}

/// The outcome of a progressive collect-and-solve run.
#[derive(Debug)]
pub struct ProgressiveOutcome {
    /// The final uniqueness check's report.
    pub report: SolveReport,
    /// Collect→solve rounds executed.
    pub rounds: usize,
    /// Patterns actually collected and encoded.
    pub patterns_used: usize,
    /// Patterns the full schedule would have collected.
    pub patterns_available: usize,
    /// Definite facts encoded into the SAT session.
    pub facts_encoded: usize,
    /// Wall-clock total, collection included.
    pub total_time: Duration,
}

/// Interleaves collection and solving: collects one pattern batch at a
/// time from `source`, streams its thresholded constraints into a
/// [`ProgressiveSolver`], and stops at the first batch after which the
/// solution is unique — realizing the §6.3 observation that most patterns
/// are redundant once the profile pins the code down.
///
/// Returns after the first unique check, an UNSAT check (noise made the
/// profile contradictory), or the last batch.
///
/// # Panics
///
/// Panics if `batches` is empty or a batch's patterns disagree with
/// `source.k()`.
pub fn progressive_recover(
    source: &mut dyn ProfileSource,
    parity_bits: usize,
    batches: &[Vec<ChargedSet>],
    plan: &CollectionPlan,
    filter: &ThresholdFilter,
    solver_options: &BeerSolverOptions,
    engine_options: &EngineOptions,
) -> ProgressiveOutcome {
    assert!(!batches.is_empty(), "no pattern batches given");
    let start = Instant::now();
    let k = source.k();
    let patterns_available: usize = batches.iter().map(|b| b.len()).sum();
    let mut solver = ProgressiveSolver::new(k, parity_bits, *solver_options);
    let mut rounds = 0;
    let mut patterns_used = 0;
    let mut report = None;

    for batch in batches {
        let profile = collect_with(source, batch, plan, engine_options);
        solver.push_constraints(&profile.to_constraints(filter));
        rounds += 1;
        patterns_used += batch.len();
        let r = solver.check();
        let done = r.is_unique() || r.solutions.is_empty();
        report = Some(r);
        if done {
            break;
        }
    }

    ProgressiveOutcome {
        report: report.expect("at least one round ran"),
        rounds,
        patterns_used,
        patterns_available,
        facts_encoded: solver.facts_encoded(),
        total_time: start.elapsed(),
    }
}

/// The standard progressive batch schedule: all 1-CHARGED patterns first
/// (they carry the most information per pattern, §4.2.4), then 2-CHARGED
/// patterns in chunks of `chunk`.
///
/// # Panics
///
/// Panics if `k < 2` or `chunk == 0`.
pub fn progressive_batches(k: usize, chunk: usize) -> Vec<Vec<ChargedSet>> {
    assert!(chunk > 0, "chunk must be positive");
    let mut batches = vec![crate::pattern::one_charged(k)];
    for c in crate::pattern::two_charged(k).chunks(chunk) {
        batches.push(c.to_vec());
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::PatternSet;
    use beer_ecc::{design, equivalence, hamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recover(code: &LinearCode, set: PatternSet, max_solutions: usize) -> SolveReport {
        let profile = analytic_profile(code, &set.patterns(code.k()));
        solve_profile(
            code.k(),
            code.parity_bits(),
            &profile,
            &BeerSolverOptions {
                max_solutions,
                ..BeerSolverOptions::default()
            },
        )
    }

    #[test]
    fn recovers_eq1_code_uniquely_from_1charged() {
        // Eq. 1 is full length, so 1-CHARGED alone must suffice (§4.2.4).
        let code = hamming::eq1_code();
        let report = recover(&code, PatternSet::One, 8);
        assert_eq!(report.solutions.len(), 1, "expected a unique solution");
        assert!(report.is_unique());
        assert!(equivalence::equivalent(&report.solutions[0], &code));
    }

    #[test]
    fn recovers_full_length_p4_code() {
        let code = hamming::full_length(4); // (15, 11)
        let report = recover(&code, PatternSet::One, 4);
        assert_eq!(report.solutions.len(), 1);
        assert!(equivalence::equivalent(&report.solutions[0], &code));
    }

    #[test]
    fn recovers_random_shortened_codes_with_12charged() {
        let mut rng = StdRng::seed_from_u64(2024);
        for k in [5usize, 8, 12, 16] {
            let code = hamming::random_sec(k, &mut rng);
            let report = recover(&code, PatternSet::OneTwo, 4);
            assert_eq!(
                report.solutions.len(),
                1,
                "k={k}: {{1,2}}-CHARGED must be unique (Fig. 5)"
            );
            assert!(
                equivalence::equivalent(&report.solutions[0], &code),
                "k={k}: wrong code recovered"
            );
        }
    }

    #[test]
    fn shortened_codes_may_be_ambiguous_under_1charged() {
        // Fig. 5: 1-CHARGED alone sometimes leaves multiple candidates for
        // shortened codes. Find a seed exhibiting ambiguity to demonstrate.
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_ambiguous = false;
        for _ in 0..30 {
            let code = hamming::random_sec(6, &mut rng);
            let report = recover(&code, PatternSet::One, 50);
            assert!(!report.solutions.is_empty());
            // The true code must always be among the solutions.
            assert!(
                report
                    .solutions
                    .iter()
                    .any(|s| equivalence::equivalent(s, &code)),
                "true code missing from solution set"
            );
            if report.solutions.len() > 1 {
                seen_ambiguous = true;
            }
        }
        assert!(
            seen_ambiguous,
            "no ambiguity in 30 shortened k=6 codes — unexpected for 1-CHARGED"
        );
    }

    #[test]
    fn vendor_codes_recover_uniquely() {
        for m in design::Manufacturer::ALL {
            let code = design::vendor_code(m, 11, 3);
            let report = recover(&code, PatternSet::OneTwo, 4);
            assert_eq!(report.solutions.len(), 1, "manufacturer {m}");
            assert!(equivalence::equivalent(&report.solutions[0], &code));
        }
    }

    #[test]
    fn without_symmetry_breaking_row_permutations_multiply() {
        let code = hamming::eq1_code();
        let profile = analytic_profile(&code, &PatternSet::One.patterns(4));
        let report = solve_profile(
            4,
            3,
            &profile,
            &BeerSolverOptions {
                max_solutions: 50,
                symmetry_breaking: false,
                verify_solutions: true,
            },
        );
        // All solutions must be equivalent to the original, and there must
        // be several of them (row permutations).
        assert!(report.solutions.len() > 1);
        for s in &report.solutions {
            assert!(equivalence::equivalent(s, &code));
        }
    }

    #[test]
    fn unknown_only_profile_is_wildly_ambiguous() {
        // With no facts, every valid SEC code matches. For k=4, p=3 all
        // four candidate columns {011,101,110,111} must be used; the 4! = 24
        // column assignments fall into 4 equivalence classes under the
        // row-permutation group (order 6), and the solver must find all of
        // them and no more.
        let profile = ProfileConstraints {
            k: 4,
            entries: vec![],
        };
        let report = solve_profile(
            4,
            3,
            &profile,
            &BeerSolverOptions {
                max_solutions: 100,
                ..BeerSolverOptions::default()
            },
        );
        assert_eq!(report.solutions.len(), 4);
        assert!(!report.truncated);
        // All solutions are pairwise inequivalent.
        for i in 0..report.solutions.len() {
            for j in (i + 1)..report.solutions.len() {
                assert!(!equivalence::equivalent(
                    &report.solutions[i],
                    &report.solutions[j]
                ));
            }
        }
    }

    #[test]
    fn contradictory_profile_is_unsat() {
        // Claim: every 1-CHARGED pattern miscorrects every other bit. For
        // k=4, p=3 that forces supp(P_j) ⊆ supp(P_a) for all pairs — i.e.
        // all supports equal — contradicting column distinctness together
        // with weight ≥ 2 in 3 rows... (columns within one support class
        // of size 3 can hold at most C(3,2)+1 = 4 columns of weight ≥ 2 but
        // all would need *equal* supports to contain each other both ways).
        let code = hamming::eq1_code();
        let base = analytic_profile(&code, &PatternSet::One.patterns(4));
        let all_miscorrect = ProfileConstraints {
            k: 4,
            entries: base
                .entries
                .iter()
                .map(|(p, obs)| {
                    let forced = obs
                        .iter()
                        .map(|&o| match o {
                            Observation::Unknown => Observation::Unknown,
                            _ => Observation::Miscorrection,
                        })
                        .collect();
                    (p.clone(), forced)
                })
                .collect(),
        };
        let report = solve_profile(4, 3, &all_miscorrect, &BeerSolverOptions::default());
        // All supports equal ⇒ only 1 distinct weight-2+ support set can
        // contain 4 distinct columns if |supp| = 3 (columns 111, 110, 101,
        // 011 — all contained in 111). That actually *is* satisfiable!
        // What matters here: the solver must terminate and any solution
        // must satisfy the forced profile.
        for s in &report.solutions {
            assert!(crate::analytic::code_matches_constraints(
                s,
                &all_miscorrect
            ));
        }
    }

    #[test]
    fn report_metadata_is_populated() {
        let code = hamming::eq1_code();
        let report = recover(&code, PatternSet::One, 2);
        assert!(report.num_vars >= 12);
        assert!(report.num_clauses > 0);
        assert!(report.total_time >= report.determine_time);
        assert!(report.solver_stats.memory_bytes > 0);
    }

    #[test]
    fn progressive_checks_are_repeatable_and_monotone() {
        // Pushing the same profile in two halves: the intermediate check
        // may be ambiguous, the final one must match the one-shot result,
        // and blocking clauses must not leak between checks.
        let code = hamming::shortened(8);
        let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(8));
        let mid = profile.entries.len() / 2;

        let mut solver = ProgressiveSolver::new(
            8,
            code.parity_bits(),
            BeerSolverOptions {
                max_solutions: 16,
                ..BeerSolverOptions::default()
            },
        );
        solver.push_constraints(&ProfileConstraints {
            k: 8,
            entries: profile.entries[..mid].to_vec(),
        });
        let first = solver.check();
        assert!(
            !first.solutions.is_empty(),
            "half profile must be satisfiable"
        );
        // A second check over identical constraints re-finds the same count
        // (the previous round's blocking clauses were retracted).
        let again = solver.check();
        assert_eq!(first.solutions.len(), again.solutions.len());

        solver.push_constraints(&ProfileConstraints {
            k: 8,
            entries: profile.entries[mid..].to_vec(),
        });
        let last = solver.check();
        assert!(last.solutions.len() <= first.solutions.len());
        assert_eq!(last.solutions.len(), 1, "full profile must be unique");
        assert!(equivalence::equivalent(&last.solutions[0], &code));
    }

    #[test]
    fn progressive_agrees_with_one_shot_for_random_codes() {
        let mut rng = StdRng::seed_from_u64(515);
        for k in [5usize, 8, 11] {
            let code = hamming::random_sec(k, &mut rng);
            let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(k));
            let oneshot = solve_profile(
                k,
                code.parity_bits(),
                &profile,
                &BeerSolverOptions::default(),
            );

            let mut solver =
                ProgressiveSolver::new(k, code.parity_bits(), BeerSolverOptions::default());
            for entry in &profile.entries {
                solver.push_constraints(&ProfileConstraints {
                    k,
                    entries: vec![entry.clone()],
                });
            }
            let progressive = solver.check();
            assert_eq!(
                progressive.solutions.len(),
                oneshot.solutions.len(),
                "k={k}"
            );
            assert!(equivalence::equivalent(
                &progressive.solutions[0],
                &oneshot.solutions[0]
            ));
        }
    }

    #[test]
    fn progressive_recovery_stops_before_the_full_schedule() {
        use crate::engine::AnalyticBackend;

        let code = hamming::shortened(11);
        let mut backend = AnalyticBackend::new(code.clone());
        let outcome = progressive_recover(
            &mut backend,
            code.parity_bits(),
            &progressive_batches(11, 8),
            &crate::collect::CollectionPlan::quick(),
            &ThresholdFilter::default(),
            &BeerSolverOptions::default(),
            &EngineOptions::serial(),
        );
        assert!(outcome.report.is_unique());
        assert!(equivalence::equivalent(&outcome.report.solutions[0], &code));
        assert!(
            outcome.patterns_used < outcome.patterns_available,
            "progressive run used the whole schedule ({} of {})",
            outcome.patterns_used,
            outcome.patterns_available
        );
        assert!(outcome.rounds >= 1);
        assert!(outcome.facts_encoded > 0);
    }

    #[test]
    fn contradictory_push_reports_unsat_cleanly() {
        let mut solver = ProgressiveSolver::new(
            4,
            3,
            BeerSolverOptions {
                verify_solutions: false,
                ..BeerSolverOptions::default()
            },
        );
        // Pattern 1-CHARGED[0] with *every* other bit impossible conflicts
        // with 1-CHARGED[0] having every other bit possible once combined
        // with column distinctness over only 3 parity bits... build a
        // directly contradictory pair instead: same pattern observed both
        // ways at the same bit.
        let pattern = ChargedSet::new(vec![0], 4);
        let yes = vec![
            Observation::Unknown,
            Observation::Miscorrection,
            Observation::NoMiscorrection,
            Observation::NoMiscorrection,
        ];
        let mut no = yes.clone();
        no[1] = Observation::NoMiscorrection;
        solver.push_constraints(&ProfileConstraints {
            k: 4,
            entries: vec![(pattern.clone(), yes), (pattern, no)],
        });
        let report = solver.check();
        assert!(report.solutions.is_empty());
        assert!(!report.truncated);
    }
}
