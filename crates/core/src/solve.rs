//! Solving for the ECC function (paper §5.3).
//!
//! The unknown is the `(n−k) × k` parity sub-matrix `P` (§4.2.1 fixes
//! standard form, so `H = [P | I]`). The SAT instance contains:
//!
//! 1. *Basic linear code properties*: every data column of `H` has weight
//!    ≥ 2 (distinct from the zero syndrome and the identity columns) and
//!    data columns are pairwise distinct — exactly what single-error
//!    correction requires. Distinctness is encoded either eagerly (the
//!    classic `O(k²·p)` pairwise XOR grid) or *lazily*: models are checked
//!    for duplicate columns and only offending pairs get a constraint, a
//!    counterexample-guided loop that keeps the k = 128 encoding small.
//! 2. *Canonical form*: rows of `P` in non-decreasing lexicographic order.
//!    This is a complete symmetry break for the parity-bit relabeling
//!    freedom (see `beer_ecc::equivalence`), so each *equivalence class*
//!    of codes corresponds to exactly one SAT model and BEER's uniqueness
//!    check counts classes, as the paper intends.
//! 3. *The miscorrection profile*: for every pattern `A` and bit `j` with
//!    a definite observation, the closed-form predicate
//!    `∃x ⊆ A: supp(P_j ⊕ ⊕_{a∈x} P_a) ⊆ supp(⊕_{a∈A} P_a)`
//!    is asserted (observed) or refuted (not observed), via one of two
//!    [`ObservationEncoding`]s:
//!
//!    * **Subset representatives** — enumerate the `2^{|A|−1}`
//!      complement-classes of `x` explicitly. Compact for the paper's
//!      `|A| ≤ 3` patterns, exponential beyond.
//!    * **Linear (polynomial)** — the predicate only constrains rows
//!      outside `supp(w)`, so it asks whether `P_j`, masked to those rows,
//!      lies in the span of the masked charged columns. A positive fact is
//!      a selector circuit (the solver picks `x`); a negative fact asserts
//!      a GF(2) *dual witness* `y` orthogonal to every masked charged
//!      column but not to `P_j` — such a `y` exists iff `P_j` is outside
//!      the span. Both are `O(p·|A|)` and encode the §5.2 RANDOM and
//!      ALL-charged patterns at any order.
//!
//! Before any of this, an optional [`crate::preprocess`] pass mines the
//! 1-CHARGED facts for pinned `P` entries and per-column weight bounds;
//! pins are asserted as units and constant-folded out of the observation
//! circuits.
//!
//! Uniqueness checking enumerates models with blocking clauses until UNSAT
//! or a caller-set cap — "Check Uniqueness" in Figure 6.

use crate::collect::CollectionPlan;
use crate::engine::{EngineOptions, ProfileSource};
use crate::pattern::ChargedSet;
use crate::preprocess::{preprocess, Preprocessed};
use crate::profile::{Observation, ProfileConstraints, ThresholdFilter};
use beer_ecc::LinearCode;
use beer_gf2::BitMatrix;
use beer_sat::{CnfBuilder, Lit, SatResult, Solver, SolverSession, SolverStats, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Largest pattern order the subset-representative encoding accepts
/// (`2^{t−1}` representatives are materialized).
pub const MAX_SUBSET_ORDER: usize = 16;

/// A typed error from the solve entry points.
///
/// Pattern data reaches the encoder from the outside world (traces,
/// replayed experiments, caller-built constraint sets), so unsupported
/// inputs surface as values instead of panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The selected [`ObservationEncoding`] cannot express a pattern of
    /// this order (the subset-representative encoding is exponential and
    /// capped at [`MAX_SUBSET_ORDER`]).
    PatternOrderUnsupported {
        /// The offending pattern's order.
        order: usize,
        /// The largest order the selected encoding supports.
        max: usize,
    },
    /// The constraints' dataword length disagrees with the solver's.
    DatawordMismatch {
        /// The solver's dataword length.
        expected: usize,
        /// The constraints' dataword length.
        found: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::PatternOrderUnsupported { order, max } => write!(
                f,
                "pattern order {order} exceeds the selected encoding's maximum {max} \
                 (use ObservationEncoding::Linear for high-order patterns)"
            ),
            SolveError::DatawordMismatch { expected, found } => {
                write!(f, "constraint dataword length {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// How profile facts are turned into clauses (constraint 3 above).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ObservationEncoding {
    /// Per-order choice: subset representatives for the paper's low
    /// orders, the polynomial encoding beyond.
    #[default]
    Auto,
    /// Always enumerate `2^{t−1}` subset representatives (orders up to
    /// [`MAX_SUBSET_ORDER`] only).
    SubsetReps,
    /// Always use the polynomial selector/dual-witness encoding.
    Linear,
}

impl ObservationEncoding {
    /// Auto switches to the polynomial encoding above this order (the
    /// representative count `2^{t−1}` overtakes the `O(p·t)` circuit).
    const AUTO_SUBSET_MAX: usize = 3;

    fn effective(self, order: usize) -> ObservationEncoding {
        match self {
            ObservationEncoding::Auto => {
                if order <= Self::AUTO_SUBSET_MAX {
                    ObservationEncoding::SubsetReps
                } else {
                    ObservationEncoding::Linear
                }
            }
            other => other,
        }
    }
}

/// How pairwise column distinctness is enforced (constraint 1 above).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ColumnDistinctness {
    /// Lazily: solve, detect duplicate columns in the model, constrain
    /// only the offending pairs, repeat. Removes the `O(k²·p)` grid from
    /// the encoding; real profiles separate almost all columns anyway.
    #[default]
    Lazy,
    /// Eagerly: the full pairwise XOR grid, up front.
    Eager,
}

/// Options for [`solve_profile`].
#[derive(Clone, Copy, Debug)]
pub struct BeerSolverOptions {
    /// Stop after this many solutions (2 suffices to decide uniqueness;
    /// Figure 5 uses a larger cap to count ambiguity).
    pub max_solutions: usize,
    /// Canonical row ordering (on by default; turning it off makes every
    /// parity-bit relabeling appear as a separate solution).
    pub symmetry_breaking: bool,
    /// Re-verify each solution against the profile with the closed-form
    /// predicate (cheap, and guards the encoding against itself).
    pub verify_solutions: bool,
    /// Observation-to-clause translation.
    pub encoding: ObservationEncoding,
    /// Column-distinctness scheme.
    pub distinctness: ColumnDistinctness,
    /// Run the GF(2) propagation pass over 1-CHARGED facts and pin `P`
    /// variables before encoding (see [`crate::preprocess`]).
    pub preprocess: bool,
}

impl Default for BeerSolverOptions {
    fn default() -> Self {
        BeerSolverOptions {
            max_solutions: 2,
            symmetry_breaking: true,
            verify_solutions: true,
            encoding: ObservationEncoding::Auto,
            distinctness: ColumnDistinctness::Lazy,
            preprocess: true,
        }
    }
}

/// The result of a BEER solve.
#[derive(Debug)]
pub struct SolveReport {
    /// Every ECC function found (canonical representatives), up to the cap.
    pub solutions: Vec<LinearCode>,
    /// True if enumeration stopped at the cap (more solutions may exist).
    pub truncated: bool,
    /// Time to the first solution or UNSAT ("Determine Function").
    pub determine_time: Duration,
    /// Total time including uniqueness checking.
    pub total_time: Duration,
    /// CNF size: variables (including lazily added repair clauses' gates).
    pub num_vars: usize,
    /// CNF size: clauses.
    pub num_clauses: usize,
    /// Column pairs constrained by the lazy-distinctness repair loop
    /// during this solve (0 under the eager scheme).
    pub distinctness_repairs: usize,
    /// Simulated DRAM nanoseconds the collections feeding this check
    /// executed (`0` unless the profile came from a timed source through
    /// a recovery session) — the campaign-cost context the paper prices
    /// experiments in, next to the host-side `total_time`.
    pub sim_ns: u64,
    /// Final solver statistics (includes the memory estimate).
    pub solver_stats: SolverStats,
}

impl SolveReport {
    /// True if exactly one ECC function (equivalence class) matches.
    pub fn is_unique(&self) -> bool {
        self.solutions.len() == 1 && !self.truncated
    }
}

/// A literal with constant folding: pinned `P` entries become constants so
/// preprocessing prunes gates before the CNF ever sees them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FLit {
    Const(bool),
    Is(Lit),
}

impl FLit {
    fn negate(self) -> FLit {
        match self {
            FLit::Const(b) => FLit::Const(!b),
            FLit::Is(l) => FLit::Is(!l),
        }
    }
}

/// The encoded instance: builder plus the `P`-matrix variables
/// (`vars[r * k + c]` is `P[r][c]`).
pub struct EncodedProblem {
    /// CNF under construction (callers may add constraints before solving).
    pub cnf: CnfBuilder,
    /// The matrix variables, row-major.
    pub p_vars: Vec<Var>,
    /// Parity bits (rows of `P`).
    pub parity_bits: usize,
    /// Data bits (columns of `P`).
    pub k: usize,
    /// Preprocessing pins, row-major (`None` = free variable).
    pins: Vec<Option<bool>>,
    /// Weight lower bound already encoded per column.
    encoded_lb: Vec<usize>,
    /// Column pairs whose distinctness constraint has been emitted.
    distinct_done: HashSet<(usize, usize)>,
}

impl EncodedProblem {
    fn p_lit(&self, r: usize, c: usize) -> Lit {
        self.p_vars[r * self.k + c].positive()
    }

    /// The folded view of `P[r][c]`.
    fn f_p(&self, r: usize, c: usize) -> FLit {
        match self.pins[r * self.k + c] {
            Some(b) => FLit::Const(b),
            None => FLit::Is(self.p_lit(r, c)),
        }
    }

    /// Number of `P` variables pinned by preprocessing.
    pub fn pinned_vars(&self) -> usize {
        self.pins.iter().filter(|p| p.is_some()).count()
    }

    /// Asserts an always-false constraint (the instance is UNSAT).
    fn contradiction(&mut self) {
        let t = self.cnf.lit_true();
        self.cnf.add_clause(&[!t]);
    }

    /// XOR with constant folding.
    fn fxor(&mut self, terms: &[FLit]) -> FLit {
        let mut parity = false;
        let mut lits: Vec<Lit> = Vec::with_capacity(terms.len());
        for &t in terms {
            match t {
                FLit::Const(b) => parity ^= b,
                FLit::Is(l) => lits.push(l),
            }
        }
        if lits.is_empty() {
            return FLit::Const(parity);
        }
        let x = self.cnf.xor_many(&lits);
        FLit::Is(if parity { !x } else { x })
    }

    /// AND with constant folding.
    fn fand(&mut self, a: FLit, b: FLit) -> FLit {
        match (a, b) {
            (FLit::Const(false), _) | (_, FLit::Const(false)) => FLit::Const(false),
            (FLit::Const(true), x) | (x, FLit::Const(true)) => x,
            (FLit::Is(la), FLit::Is(lb)) => FLit::Is(self.cnf.and(&[la, lb])),
        }
    }

    /// Adds a clause with constant folding; an empty residue is a
    /// contradiction.
    fn fclause(&mut self, lits: &[FLit]) {
        let mut out: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match l {
                FLit::Const(true) => return,
                FLit::Const(false) => {}
                FLit::Is(l) => out.push(l),
            }
        }
        if out.is_empty() {
            self.contradiction();
        } else {
            self.cnf.add_clause(&out);
        }
    }

    /// Installs preprocessing output: unit-asserts new pins and tightens
    /// per-column weight bounds. Sound for any constraint stream because
    /// every pin/bound is implied by validity plus the observations.
    fn apply_preprocessing(&mut self, pre: &Preprocessed) {
        if pre.unsat {
            self.contradiction();
            return;
        }
        for idx in 0..self.pins.len() {
            if let (None, Some(v)) = (self.pins[idx], pre.pinned[idx]) {
                self.pins[idx] = Some(v);
                let lit = self.p_vars[idx].lit(v);
                self.cnf.assert_lit(lit);
            }
        }
        for c in 0..self.k {
            if pre.col_weight_lb[c] > self.encoded_lb[c] {
                let bound = pre.col_weight_lb[c];
                self.encode_column_weight(c, bound);
                self.encoded_lb[c] = bound;
            }
        }
    }

    /// Asserts weight ≥ `bound` for column `c`, folding pinned entries.
    fn encode_column_weight(&mut self, c: usize, bound: usize) {
        let p = self.parity_bits;
        let mut ones = 0usize;
        let mut free: Vec<Lit> = Vec::new();
        for r in 0..p {
            match self.f_p(r, c) {
                FLit::Const(true) => ones += 1,
                FLit::Const(false) => {}
                FLit::Is(l) => free.push(l),
            }
        }
        let need = bound.saturating_sub(ones);
        if need == 0 {
            return;
        }
        if need > free.len() {
            self.contradiction();
            return;
        }
        self.cnf.at_least_k(&free, need);
    }

    /// Emits the pairwise-distinctness constraint for one column pair
    /// (shared by the eager grid and the lazy repair loop). Pinned rows
    /// fold: a pinned disagreeing row discharges the pair entirely.
    fn encode_pair_distinct(&mut self, c1: usize, c2: usize) {
        let key = (c1.min(c2), c1.max(c2));
        if !self.distinct_done.insert(key) {
            return;
        }
        let p = self.parity_bits;
        let mut diffs: Vec<FLit> = Vec::with_capacity(p);
        for r in 0..p {
            let a = self.f_p(r, c1);
            let b = self.f_p(r, c2);
            let d = match (a, b) {
                (FLit::Const(x), FLit::Const(y)) => FLit::Const(x != y),
                (FLit::Const(x), FLit::Is(l)) | (FLit::Is(l), FLit::Const(x)) => {
                    FLit::Is(if x { !l } else { l })
                }
                (FLit::Is(la), FLit::Is(lb)) => FLit::Is(self.cnf.xor(la, lb)),
            };
            diffs.push(d);
        }
        self.fclause(&diffs);
    }
}

/// Builds the SAT instance for a profile (constraints 1–3 above).
///
/// # Errors
///
/// Returns a [`SolveError`] if the constraints' dataword length differs
/// from `k` or a pattern order is unsupported by the selected encoding.
///
/// # Panics
///
/// Panics if `parity_bits < 2` or `k == 0`.
pub fn encode_profile(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> Result<EncodedProblem, SolveError> {
    if constraints.k != k {
        return Err(SolveError::DatawordMismatch {
            expected: k,
            found: constraints.k,
        });
    }
    let mut problem = encode_base(k, parity_bits, options);
    if options.preprocess {
        let pre = preprocess(k, parity_bits, constraints);
        problem.apply_preprocessing(&pre);
    }
    encode_observations(&mut problem, constraints, options)?;
    Ok(problem)
}

/// Encodes the profile-independent part of the instance (constraints 1–2):
/// code validity and, if enabled, the canonical row order.
///
/// # Panics
///
/// Panics if `parity_bits < 2` or `k == 0`.
fn encode_base(k: usize, parity_bits: usize, options: &BeerSolverOptions) -> EncodedProblem {
    assert!(k > 0, "k must be positive");
    assert!(parity_bits >= 2, "a SEC code needs at least 2 parity bits");
    let mut cnf = CnfBuilder::new();
    let p_vars: Vec<Var> = (0..parity_bits * k).map(|_| cnf.new_var()).collect();
    let mut problem = EncodedProblem {
        cnf,
        p_vars,
        parity_bits,
        k,
        pins: vec![None; parity_bits * k],
        encoded_lb: vec![2; k],
        distinct_done: HashSet::new(),
    };
    encode_code_validity(&mut problem, options);
    if options.symmetry_breaking {
        encode_row_order(&mut problem);
    }
    problem
}

/// Constraint 1: data columns have weight ≥ 2 and are pairwise distinct
/// (the latter only when the eager scheme is selected; the lazy scheme
/// adds pairs from counterexamples during enumeration).
fn encode_code_validity(problem: &mut EncodedProblem, options: &BeerSolverOptions) {
    let (p, k) = (problem.parity_bits, problem.k);
    for c in 0..k {
        let col: Vec<Lit> = (0..p).map(|r| problem.p_lit(r, c)).collect();
        // At least two set bits: at least one overall, and at least one in
        // every leave-one-out subset.
        problem.cnf.at_least_one(&col);
        for skip in 0..p {
            let rest: Vec<Lit> = (0..p)
                .filter(|&r| r != skip)
                .map(|r| problem.p_lit(r, c))
                .collect();
            problem.cnf.at_least_one(&rest);
        }
    }
    if options.distinctness == ColumnDistinctness::Eager {
        for c1 in 0..k {
            for c2 in (c1 + 1)..k {
                problem.encode_pair_distinct(c1, c2);
            }
        }
    }
}

/// Constraint 2: rows of `P` in non-decreasing lexicographic order
/// (bit 0 most significant, matching `BitVec::lex_cmp`).
fn encode_row_order(problem: &mut EncodedProblem) {
    let (p, k) = (problem.parity_bits, problem.k);
    for r in 0..p.saturating_sub(1) {
        let row_a: Vec<Lit> = (0..k).map(|c| problem.p_lit(r, c)).collect();
        let row_b: Vec<Lit> = (0..k).map(|c| problem.p_lit(r + 1, c)).collect();
        problem.cnf.lex_le(&row_a, &row_b);
    }
}

/// Constraint 3: the profile facts.
fn encode_observations(
    problem: &mut EncodedProblem,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> Result<(), SolveError> {
    for (pattern, observations) in &constraints.entries {
        encode_observation_entry(problem, pattern, observations, options)?;
    }
    Ok(())
}

/// Encodes one pattern's observations (the per-entry slice of constraint
/// 3) — the unit of incremental encoding used by [`ProgressiveSolver`].
fn encode_observation_entry(
    problem: &mut EncodedProblem,
    pattern: &ChargedSet,
    observations: &[Observation],
    options: &BeerSolverOptions,
) -> Result<(), SolveError> {
    let p = problem.parity_bits;
    let charged = pattern.bits();
    let t = charged.len();
    if observations.iter().all(|&o| o == Observation::Unknown) {
        return Ok(());
    }
    if t == 0 {
        // An all-DISCHARGED pattern experiences no retention errors at
        // all, so the decoder never acts: a claimed miscorrection is
        // physically impossible (the instance is unsatisfiable), and a
        // NoMiscorrection fact is vacuous (weight ≥ 2 already forbids the
        // only matrix that could miscorrect, P_j = 0).
        if observations.contains(&Observation::Miscorrection) {
            problem.contradiction();
        }
        return Ok(());
    }
    let encoding = options.encoding.effective(t);
    if encoding == ObservationEncoding::SubsetReps && t > MAX_SUBSET_ORDER {
        return Err(SolveError::PatternOrderUnsupported {
            order: t,
            max: MAX_SUBSET_ORDER,
        });
    }

    // w_r = ⊕_{a∈A} P[r][a]: the CHARGED parity-bit indicator (shared by
    // every observation of the entry).
    let w: Vec<FLit> = (0..p)
        .map(|r| {
            let terms: Vec<FLit> = charged.iter().map(|&a| problem.f_p(r, a)).collect();
            problem.fxor(&terms)
        })
        .collect();

    for (j, &obs) in observations.iter().enumerate() {
        if obs == Observation::Unknown {
            continue;
        }
        match encoding {
            ObservationEncoding::SubsetReps => {
                encode_fact_subset_reps(problem, charged, &w, j, obs);
            }
            ObservationEncoding::Linear => {
                encode_fact_linear(problem, charged, &w, j, obs);
            }
            ObservationEncoding::Auto => unreachable!("effective() resolves Auto"),
        }
    }
    Ok(())
}

/// The subset-representative encoding of one (pattern, bit) fact.
///
/// Assignments `x` and their complements induce identical conditions, so
/// only `2^{|A|−1}` representatives (those with `x₀ = 0`) are encoded.
fn encode_fact_subset_reps(
    problem: &mut EncodedProblem,
    charged: &[usize],
    w: &[FLit],
    j: usize,
    obs: Observation,
) {
    let p = problem.parity_bits;
    let t = charged.len();
    let reps: Vec<u32> = if t == 1 {
        vec![0]
    } else {
        (0u32..(1 << t)).filter(|x| x & 1 == 0).collect()
    };
    // v^x_r = P[r][j] ⊕ ⊕_{x_i=1} P[r][a_i], folded.
    let v_for = |problem: &mut EncodedProblem, x: u32| -> Vec<FLit> {
        (0..p)
            .map(|r| {
                let mut terms = vec![problem.f_p(r, j)];
                for (i, &a) in charged.iter().enumerate() {
                    if x >> i & 1 == 1 {
                        terms.push(problem.f_p(r, a));
                    }
                }
                problem.fxor(&terms)
            })
            .collect()
    };

    match obs {
        Observation::Miscorrection => {
            // ∃ representative x with ∀r (v_r → w_r).
            let mut surviving: Vec<Vec<Vec<FLit>>> = Vec::new();
            for &x in &reps {
                let v = v_for(problem, x);
                let mut clauses: Vec<Vec<FLit>> = Vec::new();
                let mut dead = false;
                for r in 0..p {
                    match (v[r], w[r]) {
                        (FLit::Const(false), _) | (_, FLit::Const(true)) => {}
                        (FLit::Const(true), FLit::Const(false)) => {
                            dead = true;
                            break;
                        }
                        (vr, wr) => clauses.push(vec![vr.negate(), wr]),
                    }
                }
                if dead {
                    continue;
                }
                if clauses.is_empty() {
                    // This representative is unconditionally fine: the
                    // whole fact is already satisfied.
                    return;
                }
                surviving.push(clauses);
            }
            match surviving.len() {
                0 => problem.contradiction(),
                1 => {
                    for clause in &surviving[0] {
                        problem.fclause(clause);
                    }
                }
                _ => {
                    let mut guards = Vec::with_capacity(surviving.len());
                    for clauses in &surviving {
                        let g = problem.cnf.new_lit();
                        for clause in clauses {
                            let mut guarded = vec![FLit::Is(!g)];
                            guarded.extend_from_slice(clause);
                            problem.fclause(&guarded);
                        }
                        guards.push(g);
                    }
                    problem.cnf.at_least_one(&guards);
                }
            }
        }
        Observation::NoMiscorrection => {
            // Every representative must fail: ∃r (v_r ∧ ¬w_r).
            for &x in &reps {
                let v = v_for(problem, x);
                let mut witnesses: Vec<FLit> = Vec::with_capacity(p);
                let mut satisfied = false;
                for r in 0..p {
                    match (v[r], w[r]) {
                        (FLit::Const(true), FLit::Const(false)) => {
                            satisfied = true;
                            break;
                        }
                        (FLit::Const(false), _) | (_, FLit::Const(true)) => {}
                        (FLit::Const(true), wr) => witnesses.push(wr.negate()),
                        (vr, FLit::Const(false)) => witnesses.push(vr),
                        (FLit::Is(vl), FLit::Is(wl)) => {
                            let h = problem.cnf.new_lit();
                            problem.cnf.add_clause(&[!h, vl]);
                            problem.cnf.add_clause(&[!h, !wl]);
                            witnesses.push(FLit::Is(h));
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                problem.fclause(&witnesses);
            }
        }
        Observation::Unknown => unreachable!(),
    }
}

/// The polynomial encoding of one (pattern, bit) fact (`O(p·|A|)` gates).
///
/// `supp(v) ⊆ supp(w)` constrains `v` only where `w` is zero, so the
/// predicate is span membership of the masked columns:
///
/// * *Miscorrection*: selector bits `s_i` choose `x`; the accumulated
///   `v = P_j ⊕ ⊕ s_i·P_{a_i}` must vanish on every row where `w` is
///   false.
/// * *NoMiscorrection*: a dual witness `y` supported on `w`'s zero rows
///   with `y·P_a = 0` for every charged column and `y·P_j = 1` — over
///   GF(2) such a functional exists iff `P_j` is outside the span.
fn encode_fact_linear(
    problem: &mut EncodedProblem,
    charged: &[usize],
    w: &[FLit],
    j: usize,
    obs: Observation,
) {
    let p = problem.parity_bits;
    match obs {
        Observation::Miscorrection => {
            let sels: Vec<Lit> = charged.iter().map(|_| problem.cnf.new_lit()).collect();
            for (r, &wr) in w.iter().enumerate().take(p) {
                if wr == FLit::Const(true) {
                    continue;
                }
                let mut terms = vec![problem.f_p(r, j)];
                for (i, &a) in charged.iter().enumerate() {
                    let sel = FLit::Is(sels[i]);
                    let entry = problem.f_p(r, a);
                    let prod = problem.fand(sel, entry);
                    terms.push(prod);
                }
                let acc = problem.fxor(&terms);
                problem.fclause(&[wr, acc.negate()]);
            }
        }
        Observation::NoMiscorrection => {
            // y_r exists only on rows that can be outside supp(w).
            let ys: Vec<FLit> = (0..p)
                .map(|r| match w[r] {
                    FLit::Const(true) => FLit::Const(false),
                    FLit::Const(false) => FLit::Is(problem.cnf.new_lit()),
                    FLit::Is(wl) => {
                        let y = problem.cnf.new_lit();
                        problem.cnf.add_clause(&[!y, !wl]);
                        FLit::Is(y)
                    }
                })
                .collect();
            let dot = |problem: &mut EncodedProblem, col: usize| -> FLit {
                let mut terms: Vec<FLit> = Vec::with_capacity(p);
                for (r, &y) in ys.iter().enumerate() {
                    let entry = problem.f_p(r, col);
                    let prod = problem.fand(y, entry);
                    terms.push(prod);
                }
                problem.fxor(&terms)
            };
            for &a in charged {
                let parity = dot(problem, a);
                problem.fclause(&[parity.negate()]);
            }
            let parity = dot(problem, j);
            problem.fclause(&[parity]);
        }
        Observation::Unknown => unreachable!(),
    }
}

/// Extracts the raw `P` assignment from a satisfying model.
fn extract_matrix(
    value: impl Fn(Var) -> Option<bool>,
    p_vars: &[Var],
    parity_bits: usize,
    k: usize,
) -> BitMatrix {
    let mut m = BitMatrix::zeros(parity_bits, k);
    for r in 0..parity_bits {
        for c in 0..k {
            if value(p_vars[r * k + c]) == Some(true) {
                m.set(r, c, true);
            }
        }
    }
    m
}

/// Column pairs of `m` with identical values (one pair per duplicate,
/// anchored at the first occurrence) — the counterexamples the lazy
/// distinctness scheme repairs.
fn duplicate_column_pairs(m: &BitMatrix) -> Vec<(usize, usize)> {
    let mut first: HashMap<u64, usize> = HashMap::new();
    let mut dups = Vec::new();
    for c in 0..m.cols() {
        let mut value = 0u64;
        for r in 0..m.rows() {
            if m.get(r, c) {
                value |= 1 << r;
            }
        }
        match first.entry(value) {
            std::collections::hash_map::Entry::Occupied(e) => dups.push((*e.get(), c)),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(c);
            }
        }
    }
    dups
}

/// Runs BEER's step 3 end to end: encode the profile, find every ECC
/// function consistent with it (up to `options.max_solutions`), and report
/// runtimes and solver statistics.
///
/// A report with exactly one solution means the profile uniquely
/// identifies the chip's ECC function up to parity-bit relabeling.
///
/// # Errors
///
/// Returns a [`SolveError`] under the conditions of [`encode_profile`];
/// unsatisfiable or contradictory profiles are *not* errors — they yield
/// an empty solution list.
///
/// # Panics
///
/// Panics if `parity_bits < 2`, `k == 0`, or a solution fails
/// re-verification (which would indicate an encoding bug).
pub fn solve_profile(
    k: usize,
    parity_bits: usize,
    constraints: &ProfileConstraints,
    options: &BeerSolverOptions,
) -> Result<SolveReport, SolveError> {
    let start = Instant::now();
    let mut problem = encode_profile(k, parity_bits, constraints, options)?;
    let mut solver = Solver::new();
    let mut ok = problem.cnf.flush_into(&mut solver);

    let mut solutions: Vec<LinearCode> = Vec::new();
    let mut truncated = false;
    let mut determine_time = None;
    let mut repairs = 0usize;
    while ok {
        let result = solver.solve();
        if result != SatResult::Sat {
            break;
        }
        let m = extract_matrix(|v| solver.value(v), &problem.p_vars, parity_bits, k);
        let dups = duplicate_column_pairs(&m);
        if !dups.is_empty() {
            // Lazy distinctness: constrain the offending pairs and retry;
            // the model does not count as a solution.
            repairs += dups.len();
            for (c1, c2) in dups {
                problem.encode_pair_distinct(c1, c2);
            }
            ok = problem.cnf.flush_into(&mut solver);
            continue;
        }
        let code = LinearCode::from_parity_submatrix(m)
            .expect("SAT constraints guarantee a valid SEC code");
        if options.verify_solutions {
            assert!(
                crate::analytic::code_matches_constraints(&code, constraints),
                "SAT solution violates the profile — encoding bug"
            );
        }
        determine_time.get_or_insert_with(|| start.elapsed());
        solutions.push(code);
        if solutions.len() >= options.max_solutions {
            truncated = true;
            break;
        }
        // Block this model (projected onto the P variables).
        let block: Vec<Lit> = problem
            .p_vars
            .iter()
            .map(|&v| v.lit(solver.value(v) != Some(true)))
            .collect();
        if !solver.add_clause(&block) {
            break;
        }
    }

    Ok(SolveReport {
        solutions,
        truncated,
        determine_time: determine_time.unwrap_or_else(|| start.elapsed()),
        total_time: start.elapsed(),
        num_vars: problem.cnf.num_vars(),
        num_clauses: problem.cnf.num_clauses(),
        distinctness_repairs: repairs,
        sim_ns: 0,
        solver_stats: solver.stats(),
    })
}

// ---------------------------------------------------------------------------
// Progressive solving
// ---------------------------------------------------------------------------

/// An incremental BEER solver: constraints stream in pattern by pattern and
/// are pushed into a live SAT session, so each uniqueness check reuses the
/// encoding *and* every clause the solver learned in earlier rounds,
/// instead of re-encoding from scratch (the paper's §6.3 runtime
/// optimization).
///
/// Each push re-runs the GF(2) preprocessing pass over everything
/// accumulated (when enabled), asserting any newly derived pins so the SAT
/// search space shrinks as evidence accumulates.
///
/// Blocking clauses from uniqueness checks live in an assumption scope that
/// is retracted after each check ([`beer_sat::SolverSession`]), so they
/// never leak into later rounds. Lazily derived distinctness constraints
/// are permanent — they are implied by code validity.
///
/// # Examples
///
/// ```
/// use beer_core::pattern::PatternSet;
/// use beer_core::solve::{BeerSolverOptions, ProgressiveSolver};
/// use beer_core::analytic::analytic_profile;
/// use beer_ecc::{equivalence, hamming};
///
/// let secret = hamming::eq1_code();
/// let profile = analytic_profile(&secret, &PatternSet::One.patterns(4));
/// let mut solver = ProgressiveSolver::new(4, 3, BeerSolverOptions::default());
/// solver.push_constraints(&profile).unwrap();
/// let report = solver.check();
/// assert!(report.is_unique());
/// assert!(equivalence::equivalent(&report.solutions[0], &secret));
/// ```
pub struct ProgressiveSolver {
    problem: EncodedProblem,
    session: SolverSession,
    options: BeerSolverOptions,
    /// Every definite fact pushed so far (kept for solution verification
    /// and incremental preprocessing).
    accumulated: ProfileConstraints,
    facts_encoded: usize,
    root_conflict: bool,
    /// Wall-clock split of the most recent [`ProgressiveSolver::push_constraints`]:
    /// `(encode, preprocess)`. Surfaced per round through
    /// [`RecoveryEvent::CheckCompleted`](crate::recovery::RecoveryEvent).
    last_push_times: (Duration, Duration),
}

impl ProgressiveSolver {
    /// Creates a solver for `k` data bits and `parity_bits` parity bits,
    /// with the base constraints (code validity + canonical form) already
    /// encoded.
    ///
    /// # Panics
    ///
    /// Panics if `parity_bits < 2` or `k == 0`.
    pub fn new(k: usize, parity_bits: usize, options: BeerSolverOptions) -> Self {
        let mut problem = encode_base(k, parity_bits, &options);
        let mut session = SolverSession::new();
        let ok = problem.cnf.flush_into(session.solver_mut());
        ProgressiveSolver {
            problem,
            session,
            options,
            accumulated: ProfileConstraints {
                k,
                entries: Vec::new(),
            },
            facts_encoded: 0,
            root_conflict: !ok,
            last_push_times: (Duration::ZERO, Duration::ZERO),
        }
    }

    /// Dataword length.
    pub fn k(&self) -> usize {
        self.problem.k
    }

    /// Number of definite facts encoded so far.
    pub fn facts_encoded(&self) -> usize {
        self.facts_encoded
    }

    /// Number of `P` variables pinned by preprocessing so far.
    pub fn pinned_vars(&self) -> usize {
        self.problem.pinned_vars()
    }

    /// Current CNF size as `(variables, clauses)`.
    pub fn cnf_size(&self) -> (usize, usize) {
        (self.problem.cnf.num_vars(), self.problem.cnf.num_clauses())
    }

    /// Streams new constraints into the live session. Patterns already
    /// pushed should not be pushed again (their clauses would be encoded
    /// twice — harmless but wasteful).
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] if the constraints' dataword length
    /// differs from `k` or a pattern order is unsupported by the selected
    /// encoding. Entries before the offending one are already encoded
    /// (they remain valid constraints); the failed entry is untouched.
    pub fn push_constraints(&mut self, constraints: &ProfileConstraints) -> Result<(), SolveError> {
        if constraints.k != self.problem.k {
            return Err(SolveError::DatawordMismatch {
                expected: self.problem.k,
                found: constraints.k,
            });
        }
        let encode_start = Instant::now();
        for (pattern, observations) in &constraints.entries {
            encode_observation_entry(&mut self.problem, pattern, observations, &self.options)?;
            self.facts_encoded += observations
                .iter()
                .filter(|&&o| o != Observation::Unknown)
                .count();
            self.accumulated
                .entries
                .push((pattern.clone(), observations.clone()));
        }
        let encode_time = encode_start.elapsed();
        let preprocess_start = Instant::now();
        if self.options.preprocess {
            let pre = preprocess(self.problem.k, self.problem.parity_bits, &self.accumulated);
            self.problem.apply_preprocessing(&pre);
        }
        let preprocess_time = preprocess_start.elapsed();
        if !self.problem.cnf.flush_into(self.session.solver_mut()) {
            self.root_conflict = true;
        }
        self.last_push_times = (encode_time, preprocess_time);
        Ok(())
    }

    /// Wall-clock `(encode, preprocess)` split of the most recent
    /// [`ProgressiveSolver::push_constraints`] call.
    pub fn last_push_times(&self) -> (Duration, Duration) {
        self.last_push_times
    }

    /// Runs a uniqueness check over everything pushed so far: enumerates
    /// consistent ECC functions up to `options.max_solutions`, with the
    /// blocking clauses retracted afterwards so the session stays clean for
    /// the next round.
    ///
    /// # Panics
    ///
    /// Panics if `options.verify_solutions` is set and a solution violates
    /// the accumulated constraints (an encoding bug).
    pub fn check(&mut self) -> SolveReport {
        let start = Instant::now();
        let mut solutions: Vec<LinearCode> = Vec::new();
        let mut truncated = false;
        let mut determine_time = None;
        let mut repairs = 0usize;

        if !self.root_conflict {
            // The guard comes from the *encoder's* variable space so future
            // constraint pushes can never collide with it.
            let guard = self.problem.cnf.new_var().positive();
            self.session
                .solver_mut()
                .reserve_vars(self.problem.cnf.num_vars());
            let scope = self.session.push_scope_with_guard(guard);
            loop {
                let result = self.session.solve();
                if result != SatResult::Sat {
                    break;
                }
                let m = extract_matrix(
                    |v| self.session.value(v),
                    &self.problem.p_vars,
                    self.problem.parity_bits,
                    self.problem.k,
                );
                let dups = duplicate_column_pairs(&m);
                if !dups.is_empty() {
                    // Lazy distinctness repair: these constraints are
                    // implied by validity, so they go in permanently (not
                    // into the retractable scope).
                    repairs += dups.len();
                    for (c1, c2) in dups {
                        self.problem.encode_pair_distinct(c1, c2);
                    }
                    if !self.problem.cnf.flush_into(self.session.solver_mut()) {
                        self.root_conflict = true;
                        break;
                    }
                    continue;
                }
                let code = LinearCode::from_parity_submatrix(m)
                    .expect("SAT constraints guarantee a valid SEC code");
                if self.options.verify_solutions {
                    assert!(
                        crate::analytic::code_matches_constraints(&code, &self.accumulated),
                        "SAT solution violates the profile — encoding bug"
                    );
                }
                determine_time.get_or_insert_with(|| start.elapsed());
                solutions.push(code);
                if solutions.len() >= self.options.max_solutions {
                    truncated = true;
                    break;
                }
                let block: Vec<Lit> = self
                    .problem
                    .p_vars
                    .iter()
                    .map(|&v| v.lit(self.session.value(v) != Some(true)))
                    .collect();
                if !self.session.add_scoped_clause(scope, &block) {
                    break;
                }
            }
            self.session.pop_scope(scope);
        }

        let (num_vars, num_clauses) = self.cnf_size();
        SolveReport {
            solutions,
            truncated,
            determine_time: determine_time.unwrap_or_else(|| start.elapsed()),
            total_time: start.elapsed(),
            num_vars,
            num_clauses,
            distinctness_repairs: repairs,
            sim_ns: 0,
            solver_stats: self.session.stats(),
        }
    }
}

/// The outcome of a progressive collect-and-solve run.
#[derive(Debug)]
pub struct ProgressiveOutcome {
    /// The final uniqueness check's report.
    pub report: SolveReport,
    /// Collect→solve rounds executed.
    pub rounds: usize,
    /// Patterns actually collected and encoded.
    pub patterns_used: usize,
    /// Patterns the full schedule would have collected.
    pub patterns_available: usize,
    /// Definite facts encoded into the SAT session.
    pub facts_encoded: usize,
    /// `P` variables pinned by GF(2) preprocessing.
    pub pinned_vars: usize,
    /// Wall-clock total, collection included.
    pub total_time: Duration,
}

/// Interleaves collection and solving: collects one pattern batch at a
/// time from `source`, streams its thresholded constraints into an
/// incremental SAT session, and stops at the first batch after which the
/// solution is unique — realizing the §6.3 observation that most patterns
/// are redundant once the profile pins the code down.
///
/// Returns after the first unique check, an UNSAT check (noise made the
/// profile contradictory), or the last batch.
///
/// This is a documented low-level wrapper over
/// [`crate::recovery::RecoverySession`]; the session additionally offers
/// step-wise execution, cancellation, budgets, progress events, and trace
/// checkpointing.
///
/// # Errors
///
/// Returns a [`SolveError`] if a batch's patterns disagree with
/// `source.k()` or a pattern order is unsupported by the selected
/// encoding.
///
/// # Panics
///
/// Panics if `batches` is empty or the backend fails the collection (use
/// [`crate::recovery::RecoverySession`] for typed engine errors).
pub fn progressive_recover(
    source: &mut dyn ProfileSource,
    parity_bits: usize,
    batches: &[Vec<ChargedSet>],
    plan: &CollectionPlan,
    filter: &ThresholdFilter,
    solver_options: &BeerSolverOptions,
    engine_options: &EngineOptions,
) -> Result<ProgressiveOutcome, SolveError> {
    assert!(!batches.is_empty(), "no pattern batches given");
    let report = crate::recovery::RecoveryConfig::new()
        .with_parity_bits(parity_bits)
        .with_batches(batches.to_vec())
        .with_plan(plan.clone())
        .with_filter(*filter)
        .with_solver_options(*solver_options)
        .with_engine_options(*engine_options)
        .session(source)
        .run_to_completion()
        .map_err(|e| match e {
            crate::recovery::RecoveryError::Solve(e) => e,
            crate::recovery::RecoveryError::Engine(e) => panic!("collection failed: {e}"),
        })?;
    Ok(ProgressiveOutcome {
        report: report
            .last_check
            .expect("a non-empty schedule runs at least one round"),
        rounds: report.stats.rounds,
        patterns_used: report.stats.patterns_used,
        patterns_available: report.stats.patterns_available,
        facts_encoded: report.stats.facts_encoded,
        pinned_vars: report.stats.pinned_vars,
        total_time: report.stats.elapsed,
    })
}

/// The standard progressive batch schedule: all 1-CHARGED patterns first
/// (they carry the most information per pattern, §4.2.4), then 2-CHARGED
/// patterns in chunks of `chunk`.
///
/// # Panics
///
/// Panics if `k < 2` or `chunk == 0`.
pub fn progressive_batches(k: usize, chunk: usize) -> Vec<Vec<ChargedSet>> {
    assert!(chunk > 0, "chunk must be positive");
    let mut batches = vec![crate::pattern::one_charged(k)];
    for c in crate::pattern::two_charged(k).chunks(chunk) {
        batches.push(c.to_vec());
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::PatternSet;
    use beer_ecc::{design, equivalence, hamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recover(code: &LinearCode, set: PatternSet, max_solutions: usize) -> SolveReport {
        let profile = analytic_profile(code, &set.patterns(code.k()));
        solve_profile(
            code.k(),
            code.parity_bits(),
            &profile,
            &BeerSolverOptions {
                max_solutions,
                ..BeerSolverOptions::default()
            },
        )
        .expect("valid profile")
    }

    #[test]
    fn recovers_eq1_code_uniquely_from_1charged() {
        // Eq. 1 is full length, so 1-CHARGED alone must suffice (§4.2.4).
        let code = hamming::eq1_code();
        let report = recover(&code, PatternSet::One, 8);
        assert_eq!(report.solutions.len(), 1, "expected a unique solution");
        assert!(report.is_unique());
        assert!(equivalence::equivalent(&report.solutions[0], &code));
    }

    #[test]
    fn recovers_full_length_p4_code() {
        let code = hamming::full_length(4); // (15, 11)
        let report = recover(&code, PatternSet::One, 4);
        assert_eq!(report.solutions.len(), 1);
        assert!(equivalence::equivalent(&report.solutions[0], &code));
    }

    #[test]
    fn recovers_random_shortened_codes_with_12charged() {
        let mut rng = StdRng::seed_from_u64(2024);
        for k in [5usize, 8, 12, 16] {
            let code = hamming::random_sec(k, &mut rng);
            let report = recover(&code, PatternSet::OneTwo, 4);
            assert_eq!(
                report.solutions.len(),
                1,
                "k={k}: {{1,2}}-CHARGED must be unique (Fig. 5)"
            );
            assert!(
                equivalence::equivalent(&report.solutions[0], &code),
                "k={k}: wrong code recovered"
            );
        }
    }

    #[test]
    fn every_option_combination_agrees() {
        // The encodings, distinctness schemes, and preprocessing must all
        // accept exactly the same codes.
        let mut rng = StdRng::seed_from_u64(99);
        let code = hamming::random_sec(7, &mut rng);
        let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(7));
        let mut baseline: Option<Vec<BitMatrix>> = None;
        for encoding in [
            ObservationEncoding::Auto,
            ObservationEncoding::SubsetReps,
            ObservationEncoding::Linear,
        ] {
            for distinctness in [ColumnDistinctness::Lazy, ColumnDistinctness::Eager] {
                for preprocess in [true, false] {
                    let report = solve_profile(
                        7,
                        code.parity_bits(),
                        &profile,
                        &BeerSolverOptions {
                            max_solutions: 64,
                            encoding,
                            distinctness,
                            preprocess,
                            ..BeerSolverOptions::default()
                        },
                    )
                    .expect("valid profile");
                    let mut matrices: Vec<BitMatrix> = report
                        .solutions
                        .iter()
                        .map(|s| s.parity_submatrix().clone())
                        .collect();
                    matrices.sort_by_key(|m| format!("{m:?}"));
                    match &baseline {
                        None => baseline = Some(matrices),
                        Some(b) => assert_eq!(
                            b, &matrices,
                            "{encoding:?}/{distinctness:?}/pre={preprocess} disagrees"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn shortened_codes_may_be_ambiguous_under_1charged() {
        // Fig. 5: 1-CHARGED alone sometimes leaves multiple candidates for
        // shortened codes. Find a seed exhibiting ambiguity to demonstrate.
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_ambiguous = false;
        for _ in 0..30 {
            let code = hamming::random_sec(6, &mut rng);
            let report = recover(&code, PatternSet::One, 50);
            assert!(!report.solutions.is_empty());
            // The true code must always be among the solutions.
            assert!(
                report
                    .solutions
                    .iter()
                    .any(|s| equivalence::equivalent(s, &code)),
                "true code missing from solution set"
            );
            if report.solutions.len() > 1 {
                seen_ambiguous = true;
            }
        }
        assert!(
            seen_ambiguous,
            "no ambiguity in 30 shortened k=6 codes — unexpected for 1-CHARGED"
        );
    }

    #[test]
    fn vendor_codes_recover_uniquely() {
        for m in design::Manufacturer::ALL {
            let code = design::vendor_code(m, 11, 3);
            let report = recover(&code, PatternSet::OneTwo, 4);
            assert_eq!(report.solutions.len(), 1, "manufacturer {m}");
            assert!(equivalence::equivalent(&report.solutions[0], &code));
        }
    }

    #[test]
    fn without_symmetry_breaking_row_permutations_multiply() {
        let code = hamming::eq1_code();
        let profile = analytic_profile(&code, &PatternSet::One.patterns(4));
        let report = solve_profile(
            4,
            3,
            &profile,
            &BeerSolverOptions {
                max_solutions: 50,
                symmetry_breaking: false,
                ..BeerSolverOptions::default()
            },
        )
        .expect("valid profile");
        // All solutions must be equivalent to the original, and there must
        // be several of them (row permutations).
        assert!(report.solutions.len() > 1);
        for s in &report.solutions {
            assert!(equivalence::equivalent(s, &code));
        }
    }

    #[test]
    fn unknown_only_profile_is_wildly_ambiguous() {
        // With no facts, every valid SEC code matches. For k=4, p=3 all
        // four candidate columns {011,101,110,111} must be used; the 4! = 24
        // column assignments fall into 4 equivalence classes under the
        // row-permutation group (order 6), and the solver must find all of
        // them and no more.
        let profile = ProfileConstraints {
            k: 4,
            entries: vec![],
        };
        let report = solve_profile(
            4,
            3,
            &profile,
            &BeerSolverOptions {
                max_solutions: 100,
                ..BeerSolverOptions::default()
            },
        )
        .expect("valid profile");
        assert_eq!(report.solutions.len(), 4);
        assert!(!report.truncated);
        // All solutions are pairwise inequivalent.
        for i in 0..report.solutions.len() {
            for j in (i + 1)..report.solutions.len() {
                assert!(!equivalence::equivalent(
                    &report.solutions[i],
                    &report.solutions[j]
                ));
            }
        }
    }

    #[test]
    fn contradictory_profile_is_unsat() {
        // Claim: every 1-CHARGED pattern miscorrects every other bit. For
        // k=4, p=3 that forces supp(P_j) ⊆ supp(P_a) for all pairs — i.e.
        // all supports equal, contradicting column distinctness. The
        // preprocessing pass catches this before SAT; with it disabled the
        // solver must reach the same answer.
        let code = hamming::eq1_code();
        let base = analytic_profile(&code, &PatternSet::One.patterns(4));
        let all_miscorrect = ProfileConstraints {
            k: 4,
            entries: base
                .entries
                .iter()
                .map(|(p, obs)| {
                    let forced = obs
                        .iter()
                        .map(|&o| match o {
                            Observation::Unknown => Observation::Unknown,
                            _ => Observation::Miscorrection,
                        })
                        .collect();
                    (p.clone(), forced)
                })
                .collect(),
        };
        for preprocess in [true, false] {
            let report = solve_profile(
                4,
                3,
                &all_miscorrect,
                &BeerSolverOptions {
                    verify_solutions: false,
                    preprocess,
                    ..BeerSolverOptions::default()
                },
            )
            .expect("well-formed constraints");
            assert!(
                report.solutions.is_empty(),
                "mutual containment must be UNSAT (preprocess={preprocess})"
            );
        }
    }

    #[test]
    fn order_zero_patterns_are_handled_not_panicked() {
        // A 0-CHARGED pattern cannot produce any retention error, so its
        // NoMiscorrection facts are vacuous and a Miscorrection fact makes
        // the instance unsatisfiable. Neither may abort the process.
        let code = hamming::eq1_code();
        let empty = ChargedSet::new(vec![], 4);

        // Vacuous: the profile of the real code plus an all-NoMiscorrection
        // order-0 entry recovers the code as if the entry were absent.
        let mut profile = analytic_profile(&code, &PatternSet::One.patterns(4));
        profile
            .entries
            .push((empty.clone(), vec![Observation::NoMiscorrection; 4]));
        let report = solve_profile(
            4,
            3,
            &profile,
            &BeerSolverOptions {
                verify_solutions: false,
                ..BeerSolverOptions::default()
            },
        )
        .expect("order-0 must not error");
        assert_eq!(report.solutions.len(), 1);
        assert!(equivalence::equivalent(&report.solutions[0], &code));

        // Impossible: a claimed miscorrection under 0-CHARGED is UNSAT.
        let mut obs = vec![Observation::Unknown; 4];
        obs[1] = Observation::Miscorrection;
        let impossible = ProfileConstraints {
            k: 4,
            entries: vec![(empty, obs)],
        };
        let report = solve_profile(
            4,
            3,
            &impossible,
            &BeerSolverOptions {
                verify_solutions: false,
                ..BeerSolverOptions::default()
            },
        )
        .expect("order-0 must not error");
        assert!(report.solutions.is_empty());
    }

    #[test]
    fn oversized_orders_error_only_under_subset_reps() {
        let k = 24;
        let code = hamming::shortened(k);
        let big = ChargedSet::new((0..18).collect(), k);
        let profile = analytic_profile(&code, std::slice::from_ref(&big));
        let err = solve_profile(
            k,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions {
                encoding: ObservationEncoding::SubsetReps,
                ..BeerSolverOptions::default()
            },
        )
        .expect_err("order 18 exceeds the subset-representative cap");
        assert_eq!(
            err,
            SolveError::PatternOrderUnsupported {
                order: 18,
                max: MAX_SUBSET_ORDER
            }
        );
        assert!(err.to_string().contains("order 18"));
        // The default (Auto) encoding handles the same entry fine.
        let report = solve_profile(
            k,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions {
                verify_solutions: false,
                ..BeerSolverOptions::default()
            },
        )
        .expect("Auto must route high orders to the Linear encoding");
        assert!(!report.solutions.is_empty());
    }

    #[test]
    fn dataword_mismatch_is_a_typed_error() {
        let profile = ProfileConstraints {
            k: 5,
            entries: vec![],
        };
        let err =
            solve_profile(4, 3, &profile, &BeerSolverOptions::default()).expect_err("k mismatch");
        assert_eq!(
            err,
            SolveError::DatawordMismatch {
                expected: 4,
                found: 5
            }
        );
        let mut progressive = ProgressiveSolver::new(4, 3, BeerSolverOptions::default());
        assert!(progressive.push_constraints(&profile).is_err());
    }

    #[test]
    fn high_order_patterns_recover_codes_via_linear_encoding() {
        // RANDOM-t patterns with t far beyond the subset cap still solve,
        // and their facts genuinely constrain the instance.
        let mut rng = StdRng::seed_from_u64(515);
        let k = 12;
        let code = hamming::random_sec(k, &mut rng);
        let mut patterns = PatternSet::One.patterns(k);
        patterns.extend(crate::pattern::random_t_charged(k, 9, 8, 77));
        let profile = analytic_profile(&code, &patterns);
        let report = solve_profile(
            k,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions {
                max_solutions: 8,
                ..BeerSolverOptions::default()
            },
        )
        .expect("high orders must encode");
        assert!(report
            .solutions
            .iter()
            .any(|s| equivalence::equivalent(s, &code)));
    }

    #[test]
    fn report_metadata_is_populated() {
        let code = hamming::eq1_code();
        let report = recover(&code, PatternSet::One, 2);
        assert!(report.num_vars >= 12);
        assert!(report.num_clauses > 0);
        assert!(report.total_time >= report.determine_time);
        assert!(report.solver_stats.memory_bytes > 0);
    }

    #[test]
    fn progressive_checks_are_repeatable_and_monotone() {
        // Pushing the same profile in two halves: the intermediate check
        // may be ambiguous, the final one must match the one-shot result,
        // and blocking clauses must not leak between checks.
        let code = hamming::shortened(8);
        let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(8));
        let mid = profile.entries.len() / 2;

        let mut solver = ProgressiveSolver::new(
            8,
            code.parity_bits(),
            BeerSolverOptions {
                max_solutions: 16,
                ..BeerSolverOptions::default()
            },
        );
        solver
            .push_constraints(&ProfileConstraints {
                k: 8,
                entries: profile.entries[..mid].to_vec(),
            })
            .unwrap();
        let first = solver.check();
        assert!(
            !first.solutions.is_empty(),
            "half profile must be satisfiable"
        );
        // A second check over identical constraints re-finds the same count
        // (the previous round's blocking clauses were retracted).
        let again = solver.check();
        assert_eq!(first.solutions.len(), again.solutions.len());

        solver
            .push_constraints(&ProfileConstraints {
                k: 8,
                entries: profile.entries[mid..].to_vec(),
            })
            .unwrap();
        let last = solver.check();
        assert!(last.solutions.len() <= first.solutions.len());
        assert_eq!(last.solutions.len(), 1, "full profile must be unique");
        assert!(equivalence::equivalent(&last.solutions[0], &code));
    }

    #[test]
    fn progressive_agrees_with_one_shot_for_random_codes() {
        let mut rng = StdRng::seed_from_u64(515);
        for k in [5usize, 8, 11] {
            let code = hamming::random_sec(k, &mut rng);
            let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(k));
            let oneshot = solve_profile(
                k,
                code.parity_bits(),
                &profile,
                &BeerSolverOptions::default(),
            )
            .unwrap();

            let mut solver =
                ProgressiveSolver::new(k, code.parity_bits(), BeerSolverOptions::default());
            for entry in &profile.entries {
                solver
                    .push_constraints(&ProfileConstraints {
                        k,
                        entries: vec![entry.clone()],
                    })
                    .unwrap();
            }
            let progressive = solver.check();
            assert_eq!(
                progressive.solutions.len(),
                oneshot.solutions.len(),
                "k={k}"
            );
            assert!(equivalence::equivalent(
                &progressive.solutions[0],
                &oneshot.solutions[0]
            ));
        }
    }

    #[test]
    fn progressive_recovery_stops_before_the_full_schedule() {
        use crate::engine::AnalyticBackend;

        let code = hamming::shortened(11);
        let mut backend = AnalyticBackend::new(code.clone());
        let outcome = progressive_recover(
            &mut backend,
            code.parity_bits(),
            &progressive_batches(11, 8),
            &crate::collect::CollectionPlan::quick(),
            &ThresholdFilter::default(),
            &BeerSolverOptions::default(),
            &EngineOptions::serial(),
        )
        .expect("analytic batches are well-formed");
        assert!(outcome.report.is_unique());
        assert!(equivalence::equivalent(&outcome.report.solutions[0], &code));
        assert!(
            outcome.patterns_used < outcome.patterns_available,
            "progressive run used the whole schedule ({} of {})",
            outcome.patterns_used,
            outcome.patterns_available
        );
        assert!(outcome.rounds >= 1);
        assert!(outcome.facts_encoded > 0);
    }

    #[test]
    fn contradictory_push_reports_unsat_cleanly() {
        let mut solver = ProgressiveSolver::new(
            4,
            3,
            BeerSolverOptions {
                verify_solutions: false,
                ..BeerSolverOptions::default()
            },
        );
        // A directly contradictory pair: the same pattern observed both
        // ways at the same bit.
        let pattern = ChargedSet::new(vec![0], 4);
        let yes = vec![
            Observation::Unknown,
            Observation::Miscorrection,
            Observation::NoMiscorrection,
            Observation::NoMiscorrection,
        ];
        let mut no = yes.clone();
        no[1] = Observation::NoMiscorrection;
        solver
            .push_constraints(&ProfileConstraints {
                k: 4,
                entries: vec![(pattern.clone(), yes), (pattern, no)],
            })
            .unwrap();
        let report = solver.check();
        assert!(report.solutions.is_empty());
        assert!(!report.truncated);
    }

    #[test]
    fn preprocessing_reports_pinned_variables() {
        // Eq. 1's 1-CHARGED profile pins column 0 to all-ones.
        let code = hamming::eq1_code();
        let profile = analytic_profile(&code, &PatternSet::One.patterns(4));
        let mut solver = ProgressiveSolver::new(4, 3, BeerSolverOptions::default());
        assert_eq!(solver.pinned_vars(), 0);
        solver.push_constraints(&profile).unwrap();
        assert!(solver.pinned_vars() >= 3, "column 0 must be pinned");
        let report = solver.check();
        assert!(report.is_unique());
    }
}
