//! BEER: Bit-Exact ECC Recovery (Patel et al., MICRO 2020).
//!
//! BEER determines the full on-die ECC function of a DRAM chip — its
//! parity-check matrix — using only the chip's external data interface. It
//! needs no hardware tools, no knowledge of the chip internals, and no ECC
//! metadata. The three steps (paper §5):
//!
//! 1. **Induce miscorrections** ([`collect`], [`layout_probe`]): write
//!    carefully crafted CHARGED/DISCHARGED test patterns ([`pattern`]),
//!    pause DRAM refresh to induce uncorrectable data-retention errors,
//!    and record which data bits suffer *miscorrections* for each pattern.
//! 2. **Analyze post-correction errors** ([`profile`]): accumulate
//!    observations into a [`MiscorrectionProfile`] and apply a threshold
//!    filter to reject transient noise (§5.2).
//! 3. **Solve for the ECC function** ([`solve`]): encode the profile as a
//!    SAT instance over the unknown parity-check matrix and enumerate every
//!    consistent function; a unique solution identifies the chip's code up
//!    to parity-bit relabeling (§4.2.1).
//!
//! The three steps are tied together by the unified profiling [`engine`]:
//! any [`engine::ProfileSource`] backend — live chip, exact analytic
//! model, EINSim Monte-Carlo, or a recorded [`trace`] — feeds the same
//! parallel batched collection driver ([`engine::collect_with`]), and
//! [`solve::ProgressiveSolver`] streams the resulting constraints into an
//! incremental SAT session so collection and solving interleave, stopping
//! at the first unique solution (§6.3).
//!
//! [`analytic`] computes exact profiles from known codes (the simulation
//! methodology of §6.1), and [`runtime`] models experiment runtimes
//! (§6.3).
//!
//! # Examples
//!
//! Recovering a known code progressively from its analytic backend:
//!
//! ```
//! use beer_core::collect::CollectionPlan;
//! use beer_core::engine::{AnalyticBackend, EngineOptions};
//! use beer_core::pattern::PatternSet;
//! use beer_core::profile::ThresholdFilter;
//! use beer_core::solve::{progressive_batches, progressive_recover, BeerSolverOptions};
//! use beer_ecc::{equivalence, hamming};
//!
//! let secret = hamming::eq1_code();
//! let mut backend = AnalyticBackend::new(secret.clone());
//! let outcome = progressive_recover(
//!     &mut backend,
//!     secret.parity_bits(),
//!     &progressive_batches(secret.k(), 4),
//!     &CollectionPlan::quick(),
//!     &ThresholdFilter::default(),
//!     &BeerSolverOptions::default(),
//!     &EngineOptions::default(),
//! )
//! .expect("well-formed batches");
//! assert!(outcome.report.is_unique());
//! assert!(equivalence::equivalent(&outcome.report.solutions[0], &secret));
//! ```

pub mod analytic;
pub mod collect;
pub mod direct;
pub mod engine;
pub mod layout_probe;
pub mod pattern;
pub mod preprocess;
pub mod profile;
pub mod runtime;
pub mod solve;
pub mod trace;

pub use engine::{
    collect_with, AnalyticBackend, ChipBackend, EinsimBackend, EngineOptions, ProfileSource,
};
pub use pattern::{ChargedSet, PatternSet};
pub use profile::{MiscorrectionProfile, Observation, ProfileConstraints, ThresholdFilter};
pub use solve::{solve_profile, BeerSolverOptions, SolveReport};
pub use trace::{ProfileTrace, ReplayBackend};
