//! BEER: Bit-Exact ECC Recovery (Patel et al., MICRO 2020).
//!
//! BEER determines the full on-die ECC function of a DRAM chip — its
//! parity-check matrix — using only the chip's external data interface. It
//! needs no hardware tools, no knowledge of the chip internals, and no ECC
//! metadata. The three steps (paper §5):
//!
//! 1. **Induce miscorrections** ([`collect`], [`layout_probe`]): write
//!    carefully crafted CHARGED/DISCHARGED test patterns ([`pattern`]),
//!    pause DRAM refresh to induce uncorrectable data-retention errors,
//!    and record which data bits suffer *miscorrections* for each pattern.
//! 2. **Analyze post-correction errors** ([`profile`]): accumulate
//!    observations into a [`MiscorrectionProfile`] and apply a threshold
//!    filter to reject transient noise (§5.2).
//! 3. **Solve for the ECC function** ([`solve`]): encode the profile as a
//!    SAT instance over the unknown parity-check matrix and enumerate every
//!    consistent function; a unique solution identifies the chip's code up
//!    to parity-bit relabeling (§4.2.1).
//!
//! [`analytic`] computes exact profiles from known codes (the simulation
//! methodology of §6.1), and [`runtime`] models experiment runtimes
//! (§6.3).
//!
//! # Examples
//!
//! Recovering a known code from its analytic profile:
//!
//! ```
//! use beer_core::{analytic, pattern::PatternSet, solve};
//! use beer_ecc::{equivalence, hamming};
//!
//! let secret = hamming::eq1_code();
//! let profile = analytic::analytic_profile(&secret, &PatternSet::OneTwo.patterns(4));
//! let report = solve::solve_profile(4, 3, &profile, &solve::BeerSolverOptions::default());
//! assert_eq!(report.solutions.len(), 1);
//! assert!(equivalence::equivalent(&report.solutions[0], &secret));
//! ```

pub mod analytic;
pub mod collect;
pub mod direct;
pub mod layout_probe;
pub mod pattern;
pub mod profile;
pub mod runtime;
pub mod solve;

pub use pattern::{ChargedSet, PatternSet};
pub use profile::{MiscorrectionProfile, Observation, ProfileConstraints, ThresholdFilter};
pub use solve::{solve_profile, BeerSolverOptions, SolveReport};
