//! BEER: Bit-Exact ECC Recovery (Patel et al., MICRO 2020).
//!
//! BEER determines the full on-die ECC function of a DRAM chip — its
//! parity-check matrix — using only the chip's external data interface. It
//! needs no hardware tools, no knowledge of the chip internals, and no ECC
//! metadata. The three steps (paper §5):
//!
//! 1. **Induce miscorrections** ([`collect`], [`layout_probe`]): write
//!    carefully crafted CHARGED/DISCHARGED test patterns ([`pattern`]),
//!    pause DRAM refresh to induce uncorrectable data-retention errors,
//!    and record which data bits suffer *miscorrections* for each pattern.
//! 2. **Analyze post-correction errors** ([`profile`]): accumulate
//!    observations into a [`MiscorrectionProfile`] and apply a threshold
//!    filter to reject transient noise (§5.2).
//! 3. **Solve for the ECC function** ([`solve`]): encode the profile as a
//!    SAT instance over the unknown parity-check matrix and enumerate every
//!    consistent function; a unique solution identifies the chip's code up
//!    to parity-bit relabeling (§4.2.1).
//!
//! The three steps are tied together by the [`recovery`] session — the
//! typed entry point for the whole pipeline: a [`recovery::RecoveryConfig`]
//! owns every knob, and a [`recovery::RecoverySession`] drives any
//! [`engine::ProfileSource`] backend — live chip, exact analytic model,
//! EINSim Monte-Carlo, or a recorded [`trace`] — through parallel batched
//! collection and an incremental SAT session so collection and solving
//! interleave, stopping at the first unique solution (§6.3), with
//! cancellation, budgets, progress events, trace checkpointing, and a
//! [`recovery::RecoveryFleet`] batch runner on top.
//!
//! [`analytic`] computes exact profiles from known codes (the simulation
//! methodology of §6.1), and [`runtime`] models experiment runtimes
//! (§6.3).
//!
//! # Examples
//!
//! Recovering a known code progressively from its analytic backend:
//!
//! ```
//! use beer_core::engine::AnalyticBackend;
//! use beer_core::recovery::RecoveryConfig;
//! use beer_ecc::{equivalence, hamming};
//!
//! let secret = hamming::eq1_code();
//! let mut backend = AnalyticBackend::new(secret.clone());
//! let report = RecoveryConfig::new()
//!     .with_chunked_schedule(4)
//!     .session(&mut backend)
//!     .run_to_completion()
//!     .expect("analytic backends cannot fail");
//! let code = report.outcome.unique_code().expect("unique recovery");
//! assert!(equivalence::equivalent(code, &secret));
//! ```

pub mod analytic;
pub mod collect;
pub mod direct;
pub mod engine;
pub mod layout_probe;
pub mod pattern;
pub mod preprocess;
pub mod profile;
pub mod recovery;
pub mod runtime;
pub mod solve;
pub mod timed;
pub mod trace;

pub use engine::{
    collect_with, try_collect_traced, try_collect_with, AnalyticBackend, ChipBackend,
    EinsimBackend, EngineError, EngineOptions, ProfileSource,
};
pub use pattern::{ChargedSet, PatternSet};
pub use profile::{MiscorrectionProfile, Observation, ProfileConstraints, ThresholdFilter};
pub use recovery::{
    lock_unpoisoned, run_session_guarded, BudgetReason, CancelToken, FamilyCostEstimate, Fanout,
    FanoutNotify, FleetMember, FleetOutcome, PatternSchedule, RecoveryConfig, RecoveryError,
    RecoveryEvent, RecoveryFleet, RecoveryOutcome, RecoveryReport, RecoverySession, RecoveryStats,
    RoundPhases, ScheduleCostModel, ScheduleCostReport, SessionHooks, SessionStatus,
};
pub use solve::{solve_profile, BeerSolverOptions, SolveReport};
pub use timed::{TimedChipBackend, TimedCostModel};
pub use trace::{
    ChunkError, Fingerprint, ProfileTrace, ReplayBackend, TraceAssembler, TraceParseError,
};
