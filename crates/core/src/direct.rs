//! The §4.1 baseline: systematic parity-check extraction when syndromes
//! are visible.
//!
//! For rank-level ECC, Cojocar et al. [26] inject a 1-hot error at every
//! codeword position and read the reported syndrome, which *is* the
//! corresponding column of `H` (Equation 2). This module implements that
//! baseline so the reproduction can demonstrate both why it works in the
//! §4.1 setting and why BEER is needed for on-die ECC (no injection into
//! parity bits, no syndrome visibility — §4.2).

use beer_dram::RankLevelEcc;
use beer_ecc::{CodeError, LinearCode};
use beer_gf2::{BitMatrix, BitVec};

/// Extracts the full parity-check matrix of a visible-syndrome ECC by
/// 1-hot error injection (Equation 2), and reconstructs the code.
///
/// Unlike BEER, the result is exact — not merely up to parity-bit
/// relabeling — because parity positions are directly addressable on the
/// bus.
///
/// # Errors
///
/// Returns a [`CodeError`] if the observed columns do not form a valid SEC
/// code (which would indicate the device under test is not a systematic
/// SEC code in standard form).
pub fn extract_by_injection(dut: &RankLevelEcc) -> Result<LinearCode, CodeError> {
    let n = dut.code().n();
    let k = dut.code().k();
    let stored = dut.store(&BitVec::zeros(k));
    let mut columns: Vec<BitVec> = Vec::with_capacity(k);
    for pos in 0..k {
        let report = dut.load_with_injected_errors(&stored, &[pos]);
        columns.push(report.syndrome.to_bitvec());
    }
    // The parity positions k..n reveal the identity block; observing them
    // confirms standard form but adds no degrees of freedom.
    for pos in k..n {
        let report = dut.load_with_injected_errors(&stored, &[pos]);
        debug_assert_eq!(report.syndrome.weight(), 1, "parity column not 1-hot");
    }
    LinearCode::from_parity_submatrix(BitMatrix::from_cols(&columns))
}

/// Number of injection experiments [`extract_by_injection`] performs: one
/// per codeword bit (the paper's "testing across all 1-hot error
/// patterns").
pub fn injection_experiments(code_n: usize) -> usize {
    code_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::PatternSet;
    use crate::solve::{solve_profile, BeerSolverOptions};
    use beer_ecc::{equivalence, hamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn injection_recovers_the_exact_code() {
        let mut rng = StdRng::seed_from_u64(41);
        for k in [4usize, 11, 16, 32] {
            let code = hamming::random_sec(k, &mut rng);
            let dut = RankLevelEcc::new(code.clone());
            let extracted = extract_by_injection(&dut).expect("valid code");
            // Exact equality — not just equivalence.
            assert_eq!(
                extracted.parity_submatrix(),
                code.parity_submatrix(),
                "k={k}"
            );
        }
    }

    #[test]
    fn injection_and_beer_agree_up_to_equivalence() {
        // The same physical code seen through both methodologies: the §4.1
        // baseline nails the representation; BEER gets the equivalence
        // class. They must agree.
        let code = hamming::shortened(11);
        let dut = RankLevelEcc::new(code.clone());
        let injected = extract_by_injection(&dut).expect("valid code");

        let profile = analytic_profile(&code, &PatternSet::OneTwo.patterns(11));
        let report = solve_profile(
            11,
            code.parity_bits(),
            &profile,
            &BeerSolverOptions::default(),
        )
        .expect("valid profile");
        assert_eq!(report.solutions.len(), 1);
        assert!(equivalence::equivalent(&report.solutions[0], &injected));
    }

    #[test]
    fn experiment_count_is_linear_not_combinatorial() {
        // §4.1 needs n experiments; BEER's {1,2}-CHARGED needs k + C(k,2)
        // patterns (and cannot touch parity bits at all).
        assert_eq!(injection_experiments(136), 136);
        let beer_patterns = PatternSet::OneTwo.len(128);
        assert!(beer_patterns > injection_experiments(136));
    }
}
