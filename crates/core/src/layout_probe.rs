//! Reverse engineering chip layout (paper §5.1.1 and §5.1.2).
//!
//! Before BEER can craft CHARGED/DISCHARGED patterns it must learn, from
//! the data interface alone:
//!
//! 1. *which cells are true-cells and which are anti-cells* — determined by
//!    writing all-zeros and all-ones patterns and observing which rows
//!    decay under a long refresh pause (§5.1.1), and
//! 2. *how datawords map onto byte addresses* — determined by programming
//!    a single CHARGED cell per row and checking which candidate layout
//!    keeps all resulting miscorrections inside the CHARGED cell's own
//!    word (§5.1.2).

use beer_dram::{CellType, DramInterface, WordLayout};

/// Determines the cell type of every row (§5.1.1): write data '0' and data
/// '1' patterns, pause refresh for `trefw_seconds`, and attribute decay.
/// Rows where the all-ones pattern decays are true-cell rows; rows where
/// the all-zeros pattern decays are anti-cell rows. Rows showing no decay
/// under either pattern default to true-cells (harmless: they also show no
/// retention errors during profiling).
pub fn probe_cell_layout(chip: &mut dyn DramInterface, trefw_seconds: f64) -> Vec<CellType> {
    let geom = chip.geometry();
    let total = geom.total_bytes();
    let rows = geom.total_rows();
    let bytes_per_row = geom.bytes_per_row();

    let mut errors_under = |fill: u8| -> Vec<u64> {
        chip.write_bytes(0, &vec![fill; total]);
        chip.retention_test(trefw_seconds);
        let read = chip.read_bytes(0, total);
        let mut per_row = vec![0u64; rows];
        for (addr, &b) in read.iter().enumerate() {
            let diff = (b ^ fill).count_ones() as u64;
            if diff > 0 {
                per_row[addr / bytes_per_row] += diff;
            }
        }
        per_row
    };

    let zeros_errors = errors_under(0x00);
    let ones_errors = errors_under(0xFF);

    (0..rows)
        .map(|r| {
            if zeros_errors[r] > ones_errors[r] {
                CellType::Anti
            } else {
                CellType::True
            }
        })
        .collect()
}

/// The outcome of the §5.1.2 word-layout probe.
#[derive(Clone, Debug)]
pub struct WordLayoutProbe {
    /// The candidate layouts, in the order given.
    pub candidates: Vec<WordLayout>,
    /// Number of miscorrection observations that *violate* each candidate
    /// (land outside the probe cell's word under that layout).
    pub violations: Vec<u64>,
    /// Total miscorrection observations used.
    pub observations: u64,
}

impl WordLayoutProbe {
    /// The unique candidate with zero violations, if exactly one exists and
    /// at least one observation discriminates.
    pub fn decided(&self) -> Option<WordLayout> {
        if self.observations == 0 {
            return None;
        }
        let clean: Vec<usize> = self
            .violations
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0)
            .map(|(i, _)| i)
            .collect();
        if clean.len() == 1 {
            Some(self.candidates[clean[0]])
        } else {
            None
        }
    }
}

/// Determines the dataword layout (§5.1.2): one CHARGED cell per true-cell
/// row against a fully DISCHARGED background (all-zeros data in true
/// cells, whose codeword is entirely discharged and therefore immune), a
/// refresh-window sweep around `trefw_seconds`, and a consistency check of
/// observed miscorrection addresses against each candidate layout.
///
/// Only true-cell rows are probed: their all-zero background keeps every
/// other cell of the row DISCHARGED, so *any* error observed away from the
/// probe cell is a miscorrection in the probe cell's word.
pub fn probe_word_layout(
    chip: &mut dyn DramInterface,
    row_cell_types: &[CellType],
    candidates: &[WordLayout],
    trefw_seconds: f64,
) -> WordLayoutProbe {
    let geom = chip.geometry();
    let total = geom.total_bytes();
    let rows = geom.total_rows();
    let bytes_per_row = geom.bytes_per_row();
    assert_eq!(row_cell_types.len(), rows, "cell-type list length mismatch");

    let mut violations = vec![0u64; candidates.len()];
    let mut observations = 0u64;

    // Sweep a few windows around the requested one so the deterministic
    // per-cell retention model exposes different error combinations.
    let sweep = [0.5, 1.0, 2.0, 4.0].map(|m| m * trefw_seconds);
    for (trial, &trefw) in sweep.iter().enumerate() {
        // Background: all zeros (discharged codewords) on true rows; skip
        // anti rows entirely (their background cannot be made immune).
        let mut image = vec![0u8; total];
        let mut probes: Vec<(usize, usize)> = Vec::new(); // (row, probe addr)
        for (row, &cell_type) in row_cell_types.iter().enumerate().take(rows) {
            if cell_type != CellType::True {
                continue;
            }
            // Vary the probe byte across rows and trials to cover
            // different in-word bit positions.
            let offset = (row * 7 + trial * 13) % bytes_per_row;
            let addr = geom.addr_of_row(row) + offset;
            image[addr] = 1u8 << ((row + trial) % 8);
            probes.push((row, addr));
        }
        if probes.is_empty() {
            break;
        }
        chip.write_bytes(0, &image);
        chip.retention_test(trefw);
        let read = chip.read_bytes(0, total);

        for &(row, probe_addr) in &probes {
            let row_start = geom.addr_of_row(row);
            for a in row_start..row_start + bytes_per_row {
                let diff = read[a] ^ image[a];
                if diff == 0 {
                    continue;
                }
                if a == probe_addr {
                    continue; // the probe cell itself: ambiguous decay
                }
                // A miscorrection at address `a`. Under the true layout it
                // must share a word with the probe cell.
                observations += 1;
                for (ci, cand) in candidates.iter().enumerate() {
                    let (probe_word, _) = cand.locate(probe_addr);
                    let (obs_word, _) = cand.locate(a);
                    if probe_word != obs_word {
                        violations[ci] += 1;
                    }
                }
            }
        }
    }

    WordLayoutProbe {
        candidates: candidates.to_vec(),
        violations,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_dram::{CellLayout, ChipConfig, Geometry, SimChip};
    use beer_ecc::design::Manufacturer;

    #[test]
    fn cell_probe_identifies_all_true_chips() {
        let mut chip =
            SimChip::new(ChipConfig::small_test_chip(51).with_geometry(Geometry::new(1, 64, 128)));
        let types = probe_cell_layout(&mut chip, 4.0 * 3600.0);
        assert!(types.iter().all(|&t| t == CellType::True));
    }

    #[test]
    fn cell_probe_identifies_anti_blocks() {
        let config = ChipConfig {
            cell_layout: CellLayout::AlternatingBlocks {
                block_rows: vec![16],
            },
            ..ChipConfig::small_test_chip(52).with_geometry(Geometry::new(1, 64, 128))
        };
        let mut chip = SimChip::new(config);
        let types = probe_cell_layout(&mut chip, 4.0 * 3600.0);
        // Expect blocks of 16: true, anti, true, anti.
        let true_count = types.iter().filter(|&&t| t == CellType::True).count();
        assert!(
            (24..=40).contains(&true_count),
            "true rows {true_count}/64 — blocks not detected"
        );
        // Majority of each block classified correctly.
        let block0: Vec<_> = types[0..16].to_vec();
        let block1: Vec<_> = types[16..32].to_vec();
        assert!(block0.iter().filter(|&&t| t == CellType::True).count() >= 12);
        assert!(block1.iter().filter(|&&t| t == CellType::Anti).count() >= 12);
    }

    #[test]
    fn word_probe_identifies_interleaved_layout() {
        let mut chip =
            SimChip::new(ChipConfig::small_test_chip(53).with_geometry(Geometry::new(1, 128, 128)));
        let rows = chip.geometry().total_rows();
        let types = vec![CellType::True; rows];
        let candidates = [
            WordLayout::InterleavedPairs { word_bytes: 4 },
            WordLayout::Contiguous { word_bytes: 4 },
        ];
        let probe = probe_word_layout(&mut chip, &types, &candidates, 4800.0);
        assert!(probe.observations > 0, "no miscorrections observed");
        assert_eq!(
            probe.decided(),
            Some(WordLayout::InterleavedPairs { word_bytes: 4 }),
            "violations: {:?} of {} observations",
            probe.violations,
            probe.observations
        );
    }

    #[test]
    fn word_probe_identifies_contiguous_layout() {
        let config = ChipConfig::small_test_chip(54)
            .with_geometry(Geometry::new(1, 128, 128))
            .with_word_layout(WordLayout::Contiguous { word_bytes: 4 });
        let mut chip = SimChip::new(config);
        let rows = chip.geometry().total_rows();
        let types = vec![CellType::True; rows];
        let candidates = [
            WordLayout::InterleavedPairs { word_bytes: 4 },
            WordLayout::Contiguous { word_bytes: 4 },
        ];
        let probe = probe_word_layout(&mut chip, &types, &candidates, 4800.0);
        assert_eq!(
            probe.decided(),
            Some(WordLayout::Contiguous { word_bytes: 4 }),
            "violations: {:?} of {} observations",
            probe.violations,
            probe.observations
        );
    }

    #[test]
    fn full_knowledge_probe_works_on_manufacturer_c() {
        // Manufacturer C has anti-cell blocks; the probe must still find
        // the layout using its true-cell rows.
        let config = ChipConfig {
            cell_layout: CellLayout::AlternatingBlocks {
                block_rows: vec![32],
            },
            ..ChipConfig::lpddr4_like(Manufacturer::C, 0, 55)
                .with_geometry(Geometry::new(1, 128, 256))
                .with_word_bytes(4)
        };
        let mut chip = SimChip::new(config);
        let knowledge =
            crate::collect::ChipKnowledge::probe(&mut chip, 4, 4.0 * 3600.0).expect("probe failed");
        assert_eq!(
            knowledge.word_layout,
            WordLayout::InterleavedPairs { word_bytes: 4 }
        );
    }
}
