//! Analytical experiment-runtime model (paper §6.3).
//!
//! BEER's wall-clock time on a real chip is dominated by *waiting for
//! retention errors*: every tested refresh window must elapse at least
//! once, while interfacing with the chip (reading/writing the full array)
//! takes milliseconds. The paper's example: sweeping tREFW from 2 to 22
//! minutes in 1-minute steps costs a combined 4.2 hours per chip, and
//! reading a 2 GiB LPDDR4-3200 chip takes about 168 ms.

use std::time::Duration;

/// Runtime breakdown of a planned BEER experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentRuntime {
    /// Total time spent with refresh paused (the sum of refresh windows).
    pub retention_wait: Duration,
    /// Total chip I/O time (pattern writes + result reads).
    pub chip_io: Duration,
    /// Number of retention tests in the plan.
    pub tests: usize,
}

impl ExperimentRuntime {
    /// Total experiment runtime.
    pub fn total(&self) -> Duration {
        self.retention_wait + self.chip_io
    }

    /// Runtime if the schedule is parallelized over `chips` identical
    /// chips, each taking an equal share of the refresh windows (§6.3's
    /// latency-reduction observation for same-model chips).
    ///
    /// # Panics
    ///
    /// Panics if `chips == 0`.
    pub fn parallelized_over(&self, chips: usize) -> Duration {
        assert!(chips > 0, "need at least one chip");
        Duration::from_secs_f64(self.total().as_secs_f64() / chips as f64)
    }
}

/// Bus parameters for the chip I/O estimate.
#[derive(Clone, Copy, Debug)]
pub struct BusModel {
    /// Chip capacity in bytes.
    pub chip_bytes: u64,
    /// Sustainable bus throughput in bytes/second.
    pub bytes_per_second: f64,
}

impl BusModel {
    /// The paper's example device: a 2 GiB LPDDR4-3200 chip read in about
    /// 168 ms.
    pub fn lpddr4_3200_2gib() -> Self {
        BusModel {
            chip_bytes: 2 << 30,
            // 2 GiB / 168 ms ≈ 12.8 GB/s (x16 @ 3200 MT/s).
            bytes_per_second: (2u64 << 30) as f64 / 0.168,
        }
    }

    /// Time for one full-chip read or write.
    pub fn full_sweep(&self) -> Duration {
        Duration::from_secs_f64(self.chip_bytes as f64 / self.bytes_per_second)
    }
}

/// Estimates the runtime of a BEER experiment with one retention test per
/// scheduled refresh window; each test writes the full chip once and reads
/// it back once.
pub fn estimate_runtime(trefw_schedule_seconds: &[f64], bus: &BusModel) -> ExperimentRuntime {
    let retention: f64 = trefw_schedule_seconds.iter().sum();
    let io = 2.0 * bus.full_sweep().as_secs_f64() * trefw_schedule_seconds.len() as f64;
    ExperimentRuntime {
        retention_wait: Duration::from_secs_f64(retention),
        chip_io: Duration::from_secs_f64(io),
        tests: trefw_schedule_seconds.len(),
    }
}

/// The paper's §5.1.3 sweep: 2 to 22 minutes inclusive in 1-minute steps.
pub fn paper_sweep_schedule() -> Vec<f64> {
    (2..=22).map(|m| m as f64 * 60.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_totals_4_2_hours() {
        // Sum of 2..=22 minutes = 252 minutes = 4.2 hours (§6.3).
        let schedule = paper_sweep_schedule();
        assert_eq!(schedule.len(), 21);
        let rt = estimate_runtime(&schedule, &BusModel::lpddr4_3200_2gib());
        let hours = rt.retention_wait.as_secs_f64() / 3600.0;
        assert!((hours - 4.2).abs() < 1e-9, "got {hours} h");
    }

    #[test]
    fn chip_read_time_matches_paper_example() {
        let bus = BusModel::lpddr4_3200_2gib();
        let ms = bus.full_sweep().as_secs_f64() * 1000.0;
        assert!((ms - 168.0).abs() < 0.5, "got {ms} ms");
    }

    #[test]
    fn io_is_negligible_compared_to_retention_wait() {
        let rt = estimate_runtime(&paper_sweep_schedule(), &BusModel::lpddr4_3200_2gib());
        assert!(rt.chip_io.as_secs_f64() < 0.01 * rt.retention_wait.as_secs_f64());
        assert_eq!(rt.tests, 21);
    }

    #[test]
    fn parallelization_divides_runtime() {
        let rt = estimate_runtime(&paper_sweep_schedule(), &BusModel::lpddr4_3200_2gib());
        let solo = rt.total();
        let team = rt.parallelized_over(21);
        assert!((team.as_secs_f64() * 21.0 - solo.as_secs_f64()).abs() < 1e-6);
    }
}
