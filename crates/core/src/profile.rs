//! Miscorrection profiles: observation bookkeeping and noise filtering.
//!
//! A *miscorrection profile* (paper §5.1.3, Table 2) records, for each test
//! pattern, which data bits were observed to suffer miscorrections. Raw
//! experimental profiles carry observation *counts*, which a threshold
//! filter (§5.2, Figure 4) reduces to the binary can/cannot facts the SAT
//! solver consumes. Bits that could not be tested (the CHARGED bits of
//! each pattern, where retention errors and miscorrections are
//! indistinguishable) stay [`Observation::Unknown`].

use crate::pattern::ChargedSet;
use std::collections::HashMap;
use std::fmt;

/// Tri-state knowledge about one (pattern, bit) pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Observation {
    /// A miscorrection was reliably observed at this bit.
    Miscorrection,
    /// No miscorrection was observed despite sufficient testing.
    NoMiscorrection,
    /// The pair was not (or cannot be) tested; adds no SAT constraint.
    Unknown,
}

/// The threshold filter of §5.2: an observation counts as a real
/// miscorrection only if seen at least `min_count` times *and* carrying at
/// least `min_fraction` of the pattern's total observation mass.
///
/// Silence is only evidence when the pattern was actually exercised:
/// patterns with fewer than `min_trials` recorded trials yield
/// [`Observation::Unknown`] for every bit instead of asserting hard
/// `NoMiscorrection` facts. Without this guard a profile touched by a
/// single trial would poison the SAT instance with false negatives.
///
/// The defaults mirror the paper's example filter (Figure 4 uses a 10⁻³
/// probability-mass threshold).
#[derive(Clone, Copy, Debug)]
pub struct ThresholdFilter {
    /// Minimum absolute observation count.
    pub min_count: u64,
    /// Minimum share of the pattern's total observations.
    pub min_fraction: f64,
    /// Minimum trials before a pattern's silence counts as
    /// `NoMiscorrection` evidence (values below 1 behave as 1 — zero
    /// trials can never be evidence).
    pub min_trials: u64,
}

impl Default for ThresholdFilter {
    fn default() -> Self {
        ThresholdFilter {
            min_count: 2,
            min_fraction: 1e-3,
            min_trials: 2,
        }
    }
}

impl ThresholdFilter {
    /// A filter that trusts any tested pattern (the pre-guard behavior;
    /// useful for exhaustively simulated backends).
    pub fn trusting() -> Self {
        ThresholdFilter {
            min_trials: 1,
            ..ThresholdFilter::default()
        }
    }
}

/// Accumulated miscorrection observations for a set of test patterns.
///
/// # Examples
///
/// ```
/// use beer_core::{ChargedSet, MiscorrectionProfile, Observation, ThresholdFilter};
///
/// let patterns = vec![ChargedSet::new(vec![0], 4)];
/// let mut prof = MiscorrectionProfile::new(4, patterns);
/// for _ in 0..10 {
///     prof.record_miscorrection(0, 2);
/// }
/// prof.record_trials(0, 100);
/// let constraints = prof.to_constraints(&ThresholdFilter::default());
/// assert_eq!(constraints.entries[0].1[2], Observation::Miscorrection);
/// assert_eq!(constraints.entries[0].1[1], Observation::NoMiscorrection);
/// assert_eq!(constraints.entries[0].1[0], Observation::Unknown); // charged
/// ```
#[derive(Clone, Debug)]
pub struct MiscorrectionProfile {
    k: usize,
    patterns: Vec<ChargedSet>,
    /// Observation counts per pattern per data bit.
    counts: Vec<Vec<u64>>,
    /// Number of experiment trials (words × retention tests) per pattern.
    trials: Vec<u64>,
}

impl MiscorrectionProfile {
    /// Creates an empty profile for the given patterns.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's dataword length differs from `k`.
    pub fn new(k: usize, patterns: Vec<ChargedSet>) -> Self {
        for p in &patterns {
            assert_eq!(p.k(), k, "pattern length mismatch");
        }
        let counts = patterns.iter().map(|_| vec![0u64; k]).collect();
        let trials = vec![0u64; patterns.len()];
        MiscorrectionProfile {
            k,
            patterns,
            counts,
            trials,
        }
    }

    /// Dataword length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The test patterns, in index order.
    pub fn patterns(&self) -> &[ChargedSet] {
        &self.patterns
    }

    /// Records one observed miscorrection at `bit` under pattern
    /// `pattern_idx`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn record_miscorrection(&mut self, pattern_idx: usize, bit: usize) {
        self.record_miscorrections(pattern_idx, bit, 1);
    }

    /// Records `n` observed miscorrections at `bit` under pattern
    /// `pattern_idx` (bulk form for replay and simulation backends).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn record_miscorrections(&mut self, pattern_idx: usize, bit: usize, n: u64) {
        assert!(bit < self.k, "bit out of range");
        self.counts[pattern_idx][bit] += n;
    }

    /// Adds `n` experiment trials for pattern `pattern_idx` (used to
    /// normalize counts into probabilities).
    ///
    /// # Panics
    ///
    /// Panics if the pattern index is out of range.
    pub fn record_trials(&mut self, pattern_idx: usize, n: u64) {
        self.trials[pattern_idx] += n;
    }

    /// Observation count for a (pattern, bit) pair.
    pub fn count(&self, pattern_idx: usize, bit: usize) -> u64 {
        self.counts[pattern_idx][bit]
    }

    /// Trials recorded for a pattern.
    pub fn trials(&self, pattern_idx: usize) -> u64 {
        self.trials[pattern_idx]
    }

    /// Total miscorrection observations across all patterns for each bit
    /// (the aggregation plotted in Figure 4).
    pub fn per_bit_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.k];
        for row in &self.counts {
            for (t, &c) in totals.iter_mut().zip(row) {
                *t += c;
            }
        }
        totals
    }

    /// Per-bit miscorrection probability mass aggregated over all patterns:
    /// each bit's share of all observations (Figure 4's y-axis).
    pub fn per_bit_probability_mass(&self) -> Vec<f64> {
        let totals = self.per_bit_totals();
        let sum: u64 = totals.iter().sum();
        if sum == 0 {
            return vec![0.0; self.k];
        }
        totals.iter().map(|&t| t as f64 / sum as f64).collect()
    }

    /// Merges observations from another profile over the same patterns.
    ///
    /// # Panics
    ///
    /// Panics if the pattern lists differ.
    pub fn merge(&mut self, other: &MiscorrectionProfile) {
        assert_eq!(self.patterns, other.patterns, "pattern list mismatch");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        for (a, b) in self.trials.iter_mut().zip(&other.trials) {
            *a += b;
        }
    }

    /// Applies the threshold filter, producing the binary constraints the
    /// SAT solver consumes. CHARGED bits become [`Observation::Unknown`];
    /// patterns with fewer than `filter.min_trials` recorded trials become
    /// entirely `Unknown` (they are under-tested, so their silence is not
    /// evidence — see [`ThresholdFilter::min_trials`]).
    pub fn to_constraints(&self, filter: &ThresholdFilter) -> ProfileConstraints {
        let entries = self
            .patterns
            .iter()
            .enumerate()
            .map(|(pi, pattern)| {
                let total: u64 = self.counts[pi].iter().sum();
                let obs: Vec<Observation> = (0..self.k)
                    .map(|bit| {
                        if pattern.is_charged(bit) {
                            return Observation::Unknown;
                        }
                        if self.trials[pi] < filter.min_trials.max(1) {
                            return Observation::Unknown;
                        }
                        let c = self.counts[pi][bit];
                        let frac_ok = total > 0 && c as f64 / total as f64 >= filter.min_fraction;
                        if c >= filter.min_count && frac_ok {
                            Observation::Miscorrection
                        } else {
                            Observation::NoMiscorrection
                        }
                    })
                    .collect();
                (pattern.clone(), obs)
            })
            .collect();
        ProfileConstraints { k: self.k, entries }
    }
}

/// Binary per-(pattern, bit) facts for the SAT solver (the output of the
/// threshold filter, or of the exact analytic computation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileConstraints {
    /// Dataword length.
    pub k: usize,
    /// One entry per pattern: the pattern and the per-bit observations.
    pub entries: Vec<(ChargedSet, Vec<Observation>)>,
}

impl ProfileConstraints {
    /// Number of (pattern, bit) pairs with a definite observation.
    pub fn definite_facts(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, obs)| obs.iter().filter(|&&o| o != Observation::Unknown).count())
            .sum()
    }

    /// Number of definite miscorrection facts.
    pub fn miscorrection_facts(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, obs)| {
                obs.iter()
                    .filter(|&&o| o == Observation::Miscorrection)
                    .count()
            })
            .sum()
    }

    /// Drops every `NoMiscorrection` fact to `Unknown` — modeling an
    /// experiment that cannot rule miscorrections out (used in robustness
    /// studies).
    pub fn weaken_negatives(&self) -> ProfileConstraints {
        ProfileConstraints {
            k: self.k,
            entries: self
                .entries
                .iter()
                .map(|(p, obs)| {
                    let weakened = obs
                        .iter()
                        .map(|&o| match o {
                            Observation::NoMiscorrection => Observation::Unknown,
                            other => other,
                        })
                        .collect();
                    (p.clone(), weakened)
                })
                .collect(),
        }
    }

    /// Renders the profile like the paper's Table 2 ('1' = miscorrection
    /// possible, '–' = not possible, '?' = untestable/unknown).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (pattern, obs) in &self.entries {
            out.push_str(&format!("{pattern:>16}  ["));
            for &o in obs {
                out.push(match o {
                    Observation::Miscorrection => '1',
                    Observation::NoMiscorrection => '-',
                    Observation::Unknown => '?',
                });
                out.push(' ');
            }
            if self.k > 0 {
                out.pop();
            }
            out.push_str("]\n");
        }
        out
    }

    /// Compares two constraint sets on their definite facts only,
    /// returning the (pattern, bit) pairs where they disagree.
    pub fn disagreements(&self, other: &ProfileConstraints) -> Vec<(ChargedSet, usize)> {
        let map: HashMap<&ChargedSet, &Vec<Observation>> =
            other.entries.iter().map(|(p, o)| (p, o)).collect();
        let mut out = Vec::new();
        for (p, obs) in &self.entries {
            if let Some(their_obs) = map.get(p) {
                for (bit, (&a, &b)) in obs.iter().zip(their_obs.iter()).enumerate() {
                    if a != Observation::Unknown && b != Observation::Unknown && a != b {
                        out.push((p.clone(), bit));
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for ProfileConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_pattern_profile() -> MiscorrectionProfile {
        MiscorrectionProfile::new(4, vec![ChargedSet::new(vec![0], 4)])
    }

    #[test]
    fn counts_accumulate_and_merge() {
        let mut a = one_pattern_profile();
        a.record_miscorrection(0, 1);
        a.record_miscorrection(0, 1);
        a.record_trials(0, 10);
        let mut b = one_pattern_profile();
        b.record_miscorrection(0, 2);
        b.record_trials(0, 5);
        a.merge(&b);
        assert_eq!(a.count(0, 1), 2);
        assert_eq!(a.count(0, 2), 1);
        assert_eq!(a.trials(0), 15);
        assert_eq!(a.per_bit_totals(), vec![0, 2, 1, 0]);
    }

    #[test]
    fn threshold_rejects_rare_observations() {
        // 1000 observations at bit 1, a single transient blip at bit 2.
        let mut p = one_pattern_profile();
        for _ in 0..1000 {
            p.record_miscorrection(0, 1);
        }
        p.record_miscorrection(0, 2);
        p.record_trials(0, 10_000);
        let c = p.to_constraints(&ThresholdFilter::default());
        let obs = &c.entries[0].1;
        assert_eq!(obs[1], Observation::Miscorrection);
        assert_eq!(
            obs[2],
            Observation::NoMiscorrection,
            "blip must be filtered"
        );
        assert_eq!(obs[3], Observation::NoMiscorrection);
        assert_eq!(obs[0], Observation::Unknown, "charged bit untestable");
    }

    #[test]
    fn untested_patterns_are_unknown() {
        let p = one_pattern_profile(); // zero trials
        let c = p.to_constraints(&ThresholdFilter::default());
        assert!(c.entries[0].1.iter().all(|&o| o == Observation::Unknown));
        assert_eq!(c.definite_facts(), 0);
    }

    #[test]
    fn under_tested_patterns_yield_unknown_not_false_negatives() {
        // One trial, no observations: silence from an under-tested pattern
        // must not become a hard NoMiscorrection fact.
        let mut p = one_pattern_profile();
        p.record_trials(0, 1);
        let filter = ThresholdFilter::default();
        assert!(filter.min_trials >= 2, "default must guard under-testing");
        let c = p.to_constraints(&filter);
        assert!(
            c.entries[0].1.iter().all(|&o| o == Observation::Unknown),
            "1 trial < min_trials must yield Unknown everywhere"
        );
        // Meeting the threshold flips silence into evidence.
        p.record_trials(0, filter.min_trials - 1);
        let c = p.to_constraints(&filter);
        assert_eq!(c.entries[0].1[1], Observation::NoMiscorrection);
        // The trusting filter accepts a single trial.
        let mut q = one_pattern_profile();
        q.record_trials(0, 1);
        let c = q.to_constraints(&ThresholdFilter::trusting());
        assert_eq!(c.entries[0].1[1], Observation::NoMiscorrection);
        // min_trials = 0 still treats zero trials as no evidence.
        let zero = one_pattern_profile();
        let c = zero.to_constraints(&ThresholdFilter {
            min_trials: 0,
            ..ThresholdFilter::default()
        });
        assert!(c.entries[0].1.iter().all(|&o| o == Observation::Unknown));
    }

    #[test]
    fn probability_mass_sums_to_one() {
        let mut p = one_pattern_profile();
        for _ in 0..3 {
            p.record_miscorrection(0, 1);
        }
        p.record_miscorrection(0, 3);
        let mass = p.per_bit_probability_mass();
        assert!((mass.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(mass[1], 0.75);
    }

    #[test]
    fn fact_counting_and_weakening() {
        let mut p = one_pattern_profile();
        for _ in 0..10 {
            p.record_miscorrection(0, 1);
        }
        p.record_trials(0, 100);
        let c = p.to_constraints(&ThresholdFilter::default());
        assert_eq!(c.definite_facts(), 3); // bits 1,2,3 (bit 0 charged)
        assert_eq!(c.miscorrection_facts(), 1);
        let weak = c.weaken_negatives();
        assert_eq!(weak.definite_facts(), 1);
        assert_eq!(weak.miscorrection_facts(), 1);
    }

    #[test]
    fn table_rendering_marks_states() {
        let mut p = one_pattern_profile();
        for _ in 0..10 {
            p.record_miscorrection(0, 2);
        }
        p.record_trials(0, 100);
        let c = p.to_constraints(&ThresholdFilter::default());
        let table = c.to_table();
        assert!(table.contains('?'), "charged bit must render as ?");
        assert!(table.contains('1'), "miscorrection must render as 1");
        assert!(table.contains('-'), "negative must render as -");
    }

    #[test]
    fn disagreements_only_count_definite_conflicts() {
        let mut a = one_pattern_profile();
        for _ in 0..10 {
            a.record_miscorrection(0, 1);
        }
        a.record_trials(0, 100);
        let ca = a.to_constraints(&ThresholdFilter::default());

        let mut b = one_pattern_profile();
        b.record_trials(0, 100);
        let cb = b.to_constraints(&ThresholdFilter::default());

        let d = ca.disagreements(&cb);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, 1);
        // Unknown entries never disagree.
        let unknown = cb.weaken_negatives();
        assert!(ca.disagreements(&unknown).is_empty());
    }

    #[test]
    #[should_panic(expected = "pattern list mismatch")]
    fn merge_requires_same_patterns() {
        let mut a = one_pattern_profile();
        let b = MiscorrectionProfile::new(4, vec![ChargedSet::new(vec![1], 4)]);
        a.merge(&b);
    }
}
