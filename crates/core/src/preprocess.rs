//! GF(2) propagation preprocessing: pin `P`-matrix variables before SAT.
//!
//! The 1-CHARGED observations carry strong structure the SAT solver would
//! otherwise rediscover clause by clause: a `Miscorrection` fact for
//! pattern `{a}` at bit `j` says `supp(P_j) ⊆ supp(P_a)` (§4.2.2 reduces
//! the closed-form predicate to support containment for order 1). This
//! pass mines that structure *symbolically*:
//!
//! 1. **Containment closure.** Containment is transitive, so the observed
//!    relation is closed before anything else is derived.
//! 2. **Counting bounds.** Everything contained in `supp(P_a)` is a
//!    distinct weight-≥2 column, and a `w`-row support holds at most
//!    `2^w − w − 1` of those — a per-column weight lower bound. A bound of
//!    `p` rows pins the whole column to ones.
//! 3. **Row propagation.** Pinned entries flow through containment
//!    (`P[r][a] = 0 ⇒ P[r][j] = 0`, `P[r][j] = 1 ⇒ P[r][a] = 1`), weight
//!    bounds (`lb` remaining rows must all be ones), and `NoMiscorrection`
//!    facts whose violating row has become unique.
//! 4. **Elimination.** Every derived fact is a GF(2) linear equation over
//!    the `p·k` matrix variables; [`beer_gf2::BitMatrix::rref`] reduces
//!    the system, merging facts from different derivation paths, exposing
//!    the pinned variables, and detecting inconsistency (`0 = 1`).
//!
//! Every derivation is an implication of code validity (weight ≥ 2,
//! distinct columns) plus the observation facts, so the pass never changes
//! the solution set — the encoder asserts the pins as unit clauses and
//! constant-folds them out of the observation circuits.

use crate::profile::{Observation, ProfileConstraints};
use beer_gf2::{BitMatrix, BitVec};

/// One GF(2) linear fact over the `P`-matrix variables:
/// `⊕_{v ∈ vars} P[v] = rhs`, with variables indexed row-major
/// (`r * k + c`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearFact {
    /// Variable indices with coefficient 1.
    pub vars: Vec<usize>,
    /// Right-hand side.
    pub rhs: bool,
}

/// The result of [`preprocess`].
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Dataword length.
    pub k: usize,
    /// Parity bits.
    pub parity_bits: usize,
    /// Per-variable pins, row-major (`r * k + c`); `None` = free.
    pub pinned: Vec<Option<bool>>,
    /// Per-column Hamming-weight lower bounds (always ≥ 2).
    pub col_weight_lb: Vec<usize>,
    /// True if the facts contradict code validity: the instance has no
    /// solution and need not reach the solver at all.
    pub unsat: bool,
    /// Linear facts extracted (before elimination).
    pub facts_extracted: usize,
}

impl Preprocessed {
    /// Number of pinned variables.
    pub fn pinned_vars(&self) -> usize {
        self.pinned.iter().filter(|p| p.is_some()).count()
    }

    /// A no-op result (used when preprocessing is disabled).
    pub fn empty(k: usize, parity_bits: usize) -> Self {
        Preprocessed {
            k,
            parity_bits,
            pinned: vec![None; parity_bits * k],
            col_weight_lb: vec![2; k],
            unsat: false,
            facts_extracted: 0,
        }
    }
}

/// Smallest weight `w ≥ 2` whose support can contain `needed` distinct
/// weight-≥2 columns, or `None` if even `w = p` cannot.
fn weight_lower_bound(needed: usize, p: usize) -> Option<usize> {
    (2..=p).find(|&w| {
        let capacity = (1u128 << w) - w as u128 - 1;
        capacity >= needed as u128
    })
}

/// Reduces a system of [`LinearFact`]s with Gauss–Jordan elimination over
/// GF(2) and reads back the unit rows as variable pins.
///
/// Returns `(pins, inconsistent)`: a reduced row `0 = 1` marks the system
/// (and therefore the SAT instance it would feed) unsatisfiable.
pub fn eliminate_facts(num_vars: usize, facts: &[LinearFact]) -> (Vec<Option<bool>>, bool) {
    let mut pins = vec![None; num_vars];
    if facts.is_empty() {
        return (pins, false);
    }
    let rows: Vec<BitVec> = facts
        .iter()
        .map(|f| {
            let mut row = BitVec::zeros(num_vars + 1);
            for &v in &f.vars {
                // Coefficients cancel in pairs over GF(2).
                row.set(v, !row.get(v));
            }
            row.set(num_vars, f.rhs);
            row
        })
        .collect();
    let (rref, _, _) = BitMatrix::from_rows(&rows).rref();
    let mut inconsistent = false;
    for row in rref.iter_rows() {
        let mut vars = (0..num_vars).filter(|&v| row.get(v));
        match (vars.next(), vars.next()) {
            (None, _) => {
                if row.get(num_vars) {
                    inconsistent = true;
                }
            }
            (Some(v), None) => pins[v] = Some(row.get(num_vars)),
            // A residual multi-variable relation: sound to drop (it is
            // re-implied by the clauses that produced it), kept out of the
            // pin set.
            (Some(_), Some(_)) => {}
        }
    }
    (pins, inconsistent)
}

/// Runs the propagation pass over a constraint set (see the module docs).
///
/// Only 1-CHARGED entries contribute facts today; other orders pass
/// through untouched. The output is always sound: every pin and bound is
/// implied by code validity plus the definite observations, so encoding
/// them is a pure strengthening that preserves the solution set exactly.
///
/// # Panics
///
/// Panics if `constraints.k != k`.
pub fn preprocess(k: usize, parity_bits: usize, constraints: &ProfileConstraints) -> Preprocessed {
    assert_eq!(constraints.k, k, "constraint dataword length mismatch");
    let p = parity_bits;

    // -- Gather 1-CHARGED facts -------------------------------------------
    // contain[a] = bits j with supp(P_j) ⊆ supp(P_a) (Miscorrection facts).
    let mut contain: Vec<BitVec> = (0..k).map(|_| BitVec::zeros(k)).collect();
    let mut no_contain: Vec<(usize, usize)> = Vec::new();
    let mut unsat = false;
    for (pattern, obs) in &constraints.entries {
        if pattern.order() != 1 {
            continue;
        }
        let a = pattern.bits()[0];
        for (j, &o) in obs.iter().enumerate() {
            match o {
                Observation::Miscorrection => contain[a].set(j, true),
                Observation::NoMiscorrection => no_contain.push((a, j)),
                Observation::Unknown => {}
            }
        }
    }
    // Directly contradictory facts for the same (pattern, bit) pair.
    for &(a, j) in &no_contain {
        if contain[a].get(j) {
            unsat = true;
        }
    }

    // -- Transitive closure -----------------------------------------------
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..k {
            let mut merged = contain[a].clone();
            for j in contain[a].iter_ones().collect::<Vec<_>>() {
                merged |= &contain[j];
            }
            if merged != contain[a] {
                contain[a] = merged;
                changed = true;
            }
        }
    }
    // Mutual containment of distinct columns means equal columns —
    // impossible for a valid code.
    for a in 0..k {
        for j in contain[a].iter_ones() {
            if j != a && contain[j].get(a) {
                unsat = true;
            }
        }
        // A self-loop only arises through a mutual cycle, caught above.
    }

    // -- Counting bounds ---------------------------------------------------
    let mut col_weight_lb = vec![2usize; k];
    for c in 0..k {
        // Everything contained in supp(P_c), plus P_c itself, are distinct
        // weight-≥2 columns living inside that support.
        let needed = contain[c].iter_ones().filter(|&j| j != c).count() + 1;
        match weight_lower_bound(needed, p) {
            Some(w) => col_weight_lb[c] = w.max(2),
            None => {
                unsat = true;
                col_weight_lb[c] = p;
            }
        }
    }

    // -- Row propagation to fixpoint --------------------------------------
    let mut pin: Vec<Option<bool>> = vec![None; p * k];
    let mut facts: Vec<LinearFact> = Vec::new();
    // set() records every derivation as a linear fact — including ones
    // that conflict with an earlier pin, so the elimination stage sees the
    // contradiction as a reduced `0 = 1` row and is the authoritative
    // inconsistency check (the eager `unsat` flag just short-circuits the
    // fixpoint loop).
    let set = |pin: &mut Vec<Option<bool>>,
               facts: &mut Vec<LinearFact>,
               unsat: &mut bool,
               r: usize,
               c: usize,
               v: bool|
     -> bool {
        let idx = r * k + c;
        match pin[idx] {
            Some(existing) if existing == v => false,
            Some(_) => {
                facts.push(LinearFact {
                    vars: vec![idx],
                    rhs: v,
                });
                *unsat = true;
                false
            }
            None => {
                pin[idx] = Some(v);
                facts.push(LinearFact {
                    vars: vec![idx],
                    rhs: v,
                });
                true
            }
        }
    };

    let mut changed = true;
    while changed && !unsat {
        changed = false;
        // Weight bound p pins the column; tight bounds pin the remainder.
        for c in 0..k {
            let zeros = (0..p).filter(|&r| pin[r * k + c] == Some(false)).count();
            let possible = p - zeros;
            if possible < col_weight_lb[c] {
                unsat = true;
                break;
            }
            if possible == col_weight_lb[c] {
                for r in 0..p {
                    if pin[r * k + c].is_none() {
                        changed |= set(&mut pin, &mut facts, &mut unsat, r, c, true);
                    }
                }
            }
        }
        if unsat {
            break;
        }
        // Containment flows pins row-wise.
        for a in 0..k {
            for j in contain[a].iter_ones().collect::<Vec<_>>() {
                if j == a {
                    continue;
                }
                for r in 0..p {
                    if pin[r * k + a] == Some(false) && pin[r * k + j] != Some(false) {
                        changed |= set(&mut pin, &mut facts, &mut unsat, r, j, false);
                    }
                    if pin[r * k + j] == Some(true) && pin[r * k + a] != Some(true) {
                        changed |= set(&mut pin, &mut facts, &mut unsat, r, a, true);
                    }
                }
            }
        }
        // A NoMiscorrection fact needs a witness row with P[r][j] = 1 and
        // P[r][a] = 0; once only one candidate row remains, it is forced.
        for &(a, j) in &no_contain {
            let satisfied =
                (0..p).any(|r| pin[r * k + j] == Some(true) && pin[r * k + a] == Some(false));
            if satisfied {
                continue;
            }
            let candidates: Vec<usize> = (0..p)
                .filter(|&r| pin[r * k + j] != Some(false) && pin[r * k + a] != Some(true))
                .collect();
            match candidates.len() {
                0 => unsat = true,
                1 => {
                    let r = candidates[0];
                    changed |= set(&mut pin, &mut facts, &mut unsat, r, j, true);
                    changed |= set(&mut pin, &mut facts, &mut unsat, r, a, false);
                }
                _ => {}
            }
        }
    }

    // -- Elimination -------------------------------------------------------
    let facts_extracted = facts.len();
    let (pinned, inconsistent) = eliminate_facts(p * k, &facts);
    unsat |= inconsistent;
    // On consistent systems elimination must reproduce the propagation
    // pins exactly (conflicting systems reduce to `0 = 1` rows instead).
    debug_assert!(
        unsat || pinned == pin,
        "elimination disagrees with propagation"
    );

    Preprocessed {
        k,
        parity_bits: p,
        pinned,
        col_weight_lb,
        unsat,
        facts_extracted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::{ChargedSet, PatternSet};
    use beer_ecc::hamming;

    #[test]
    fn eq1_code_pins_its_all_ones_column() {
        // Table 2: pattern {0} miscorrects bits 1, 2, 3 — so supp(P_0)
        // holds 4 distinct weight-≥2 columns, forcing weight 3 = p and
        // pinning column 0 to all-ones (its true value in Eq. 1).
        let code = hamming::eq1_code();
        let prof = analytic_profile(&code, &PatternSet::One.patterns(4));
        let pre = preprocess(4, 3, &prof);
        assert!(!pre.unsat);
        assert_eq!(pre.col_weight_lb[0], 3);
        for r in 0..3 {
            assert_eq!(pre.pinned[r * 4], Some(true), "row {r} of column 0");
        }
        assert!(pre.facts_extracted >= 3);
        assert!(pre.pinned_vars() >= 3);
    }

    #[test]
    fn full_length_code_pins_only_the_all_ones_column() {
        let code = hamming::full_length(4); // (15, 11)
        let prof = analytic_profile(&code, &PatternSet::One.patterns(11));
        let pre = preprocess(11, 4, &prof);
        assert!(!pre.unsat);
        // Exactly one column of a full-length code has full support.
        let full_cols: Vec<usize> = (0..11)
            .filter(|&c| (0..4).all(|r| pre.pinned[r * 11 + c] == Some(true)))
            .collect();
        assert_eq!(full_cols.len(), 1);
        let c = full_cols[0];
        assert_eq!(code.data_column(c).weight(), 4);
    }

    #[test]
    fn pins_agree_with_the_true_code() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2025);
        for k in [8usize, 16, 32] {
            let code = hamming::random_sec(k, &mut rng);
            let p = code.parity_bits();
            let prof = analytic_profile(&code, &PatternSet::One.patterns(k));
            let pre = preprocess(k, p, &prof);
            assert!(!pre.unsat, "k={k}");
            // All-ones-column pins are row-permutation invariant, so they
            // must match the generating code directly.
            for c in 0..k {
                if (0..p).all(|r| pre.pinned[r * k + c] == Some(true)) {
                    assert_eq!(
                        code.data_column(c).weight() as usize,
                        p,
                        "k={k} column {c} wrongly pinned to all-ones"
                    );
                }
                assert!(
                    code.data_column(c).weight() as usize >= pre.col_weight_lb[c],
                    "k={k} column {c}: bound exceeds the true weight"
                );
            }
        }
    }

    #[test]
    fn mutual_containment_is_unsat() {
        // Patterns {0} and {1} each claiming a miscorrection at the other
        // bit force P_0 = P_1 — impossible for distinct columns.
        let mk = |a: usize, j: usize| {
            let mut obs = vec![Observation::Unknown; 4];
            obs[j] = Observation::Miscorrection;
            (ChargedSet::new(vec![a], 4), obs)
        };
        let constraints = ProfileConstraints {
            k: 4,
            entries: vec![mk(0, 1), mk(1, 0)],
        };
        let pre = preprocess(4, 3, &constraints);
        assert!(pre.unsat);
    }

    #[test]
    fn contradictory_observation_pair_is_unsat() {
        let pattern = ChargedSet::new(vec![0], 4);
        let mut yes = vec![Observation::Unknown; 4];
        yes[2] = Observation::Miscorrection;
        let mut no = vec![Observation::Unknown; 4];
        no[2] = Observation::NoMiscorrection;
        let constraints = ProfileConstraints {
            k: 4,
            entries: vec![(pattern.clone(), yes), (pattern, no)],
        };
        let pre = preprocess(4, 3, &constraints);
        assert!(pre.unsat);
    }

    #[test]
    fn overfull_containment_is_unsat() {
        // Pattern {0} claiming miscorrections at 5 other bits needs
        // 2^p − p − 1 ≥ 6 candidate columns inside supp(P_0); with p = 3
        // only 4 exist.
        let mut obs = vec![Observation::Miscorrection; 6];
        obs[0] = Observation::Unknown;
        let constraints = ProfileConstraints {
            k: 6,
            entries: vec![(ChargedSet::new(vec![0], 6), obs)],
        };
        let pre = preprocess(6, 3, &constraints);
        assert!(pre.unsat);
    }

    #[test]
    fn elimination_merges_and_detects_conflicts() {
        let facts = vec![
            LinearFact {
                vars: vec![0],
                rhs: true,
            },
            LinearFact {
                vars: vec![0, 1],
                rhs: true,
            },
        ];
        let (pins, bad) = eliminate_facts(3, &facts);
        assert!(!bad);
        assert_eq!(pins[0], Some(true));
        assert_eq!(pins[1], Some(false));
        assert_eq!(pins[2], None);

        let conflict = vec![
            LinearFact {
                vars: vec![2],
                rhs: true,
            },
            LinearFact {
                vars: vec![2],
                rhs: false,
            },
        ];
        let (_, bad) = eliminate_facts(3, &conflict);
        assert!(bad);
    }

    #[test]
    fn empty_constraints_pin_nothing() {
        let constraints = ProfileConstraints {
            k: 5,
            entries: vec![],
        };
        let pre = preprocess(5, 4, &constraints);
        assert!(!pre.unsat);
        assert_eq!(pre.pinned_vars(), 0);
        assert!(pre.col_weight_lb.iter().all(|&b| b == 2));
    }
}
