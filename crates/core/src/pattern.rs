//! CHARGED/DISCHARGED test patterns (paper §4.2.3).
//!
//! A BEER test pattern is described by the set of *data* bits programmed to
//! the CHARGED state; all other data bits are DISCHARGED. The parity bits'
//! states are chosen by the (unknown) encoder and cannot be controlled.
//! Because only CHARGED cells can suffer data-retention errors, any
//! post-correction error at a DISCHARGED data bit is unambiguously a
//! miscorrection.
//!
//! The paper proves the 1-CHARGED patterns suffice for full-length codes
//! and the {1,2}-CHARGED union suffices for the shortened codes it
//! evaluates (§4.2.4, Figure 5).

use beer_dram::CellType;
use beer_gf2::BitVec;

/// A test pattern: the sorted set of CHARGED data-bit positions.
///
/// # Examples
///
/// ```
/// use beer_core::ChargedSet;
/// use beer_dram::CellType;
///
/// let p = ChargedSet::new(vec![2], 4);
/// // In true cells, CHARGED = logical 1.
/// assert_eq!(p.to_dataword(CellType::True).to_string(), "0010");
/// // In anti cells, CHARGED = logical 0.
/// assert_eq!(p.to_dataword(CellType::Anti).to_string(), "1101");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ChargedSet {
    bits: Vec<usize>,
    k: usize,
}

impl ChargedSet {
    /// Creates a pattern over a `k`-bit dataword with the given CHARGED
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if a bit is out of range or duplicated.
    pub fn new(mut bits: Vec<usize>, k: usize) -> Self {
        bits.sort_unstable();
        for w in bits.windows(2) {
            assert!(w[0] != w[1], "duplicate charged bit {}", w[0]);
        }
        if let Some(&max) = bits.last() {
            assert!(max < k, "charged bit {max} out of dataword range {k}");
        }
        ChargedSet { bits, k }
    }

    /// The CHARGED data-bit positions, sorted.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }

    /// Dataword length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of CHARGED bits (the pattern's "order": 1-CHARGED, …).
    pub fn order(&self) -> usize {
        self.bits.len()
    }

    /// Is data bit `bit` CHARGED under this pattern?
    pub fn is_charged(&self, bit: usize) -> bool {
        self.bits.binary_search(&bit).is_ok()
    }

    /// The logical dataword that programs this charge pattern into cells of
    /// the given type (true cells: CHARGED = 1; anti cells: CHARGED = 0).
    pub fn to_dataword(&self, cell_type: CellType) -> BitVec {
        let mut v = BitVec::zeros(self.k);
        match cell_type {
            CellType::True => {
                for &b in &self.bits {
                    v.set(b, true);
                }
            }
            CellType::Anti => {
                v = BitVec::ones(self.k);
                for &b in &self.bits {
                    v.set(b, false);
                }
            }
        }
        v
    }

    /// Recovers the charge pattern a logical dataword programs into cells
    /// of the given type (inverse of [`ChargedSet::to_dataword`]).
    pub fn from_dataword(data: &BitVec, cell_type: CellType) -> Self {
        let bits: Vec<usize> = (0..data.len())
            .filter(|&i| cell_type.charge_of(data.get(i)))
            .collect();
        ChargedSet {
            bits,
            k: data.len(),
        }
    }
}

impl std::fmt::Display for ChargedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-CHARGED{:?}", self.order(), self.bits)
    }
}

/// The standard pattern families of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatternSet {
    /// All `k` patterns with exactly one CHARGED bit.
    One,
    /// All `C(k,2)` patterns with exactly two CHARGED bits.
    Two,
    /// All `C(k,3)` patterns with exactly three CHARGED bits.
    Three,
    /// The union of the 1- and 2-CHARGED patterns — the configuration the
    /// paper shows always uniquely identifies the ECC function (Fig. 5).
    OneTwo,
    /// `count` distinct uniformly random `t`-CHARGED patterns drawn
    /// deterministically from `seed` — the paper's §5.2 RANDOM data
    /// patterns (fewer patterns exist ⇒ all of them).
    RandomT {
        /// CHARGED bits per pattern.
        t: usize,
        /// Number of patterns requested.
        count: usize,
        /// Deterministic sampling seed.
        seed: u64,
    },
    /// The two alternating half-charged patterns (even bits CHARGED, then
    /// odd bits CHARGED) — the classic checkerboard stress pair.
    Checkered,
    /// The single pattern with every data bit CHARGED (the paper's
    /// ALL-charged / CHARGED pattern, §5.2).
    All,
}

impl PatternSet {
    /// Materializes the pattern family for a `k`-bit dataword.
    ///
    /// # Panics
    ///
    /// Panics if `k` is too small for the family (e.g. 2-CHARGED with
    /// `k < 2`).
    pub fn patterns(self, k: usize) -> Vec<ChargedSet> {
        match self {
            PatternSet::One => one_charged(k),
            PatternSet::Two => two_charged(k),
            PatternSet::Three => three_charged(k),
            PatternSet::OneTwo => {
                let mut v = one_charged(k);
                v.extend(two_charged(k));
                v
            }
            PatternSet::RandomT { t, count, seed } => random_t_charged(k, t, count, seed),
            PatternSet::Checkered => checkered(k),
            PatternSet::All => vec![all_charged(k)],
        }
    }

    /// Number of patterns in the family for a `k`-bit dataword.
    pub fn len(self, k: usize) -> usize {
        match self {
            PatternSet::One => k,
            PatternSet::Two => k * (k - 1) / 2,
            PatternSet::Three => k * (k - 1) * (k - 2) / 6,
            PatternSet::OneTwo => k + k * (k - 1) / 2,
            PatternSet::RandomT { t, count, .. } => binomial_capped(k, t, count),
            PatternSet::Checkered => 2,
            PatternSet::All => 1,
        }
    }
}

impl std::fmt::Display for PatternSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternSet::One => write!(f, "1-CHARGED"),
            PatternSet::Two => write!(f, "2-CHARGED"),
            PatternSet::Three => write!(f, "3-CHARGED"),
            PatternSet::OneTwo => write!(f, "{{1,2}}-CHARGED"),
            PatternSet::RandomT { t, count, .. } => write!(f, "RANDOM-{t}-CHARGED(x{count})"),
            PatternSet::Checkered => write!(f, "CHECKERED"),
            PatternSet::All => write!(f, "ALL-CHARGED"),
        }
    }
}

/// `min(C(k, t), cap)` without overflow (the binomial saturates at `cap`).
fn binomial_capped(k: usize, t: usize, cap: usize) -> usize {
    if t > k {
        return 0;
    }
    let t = t.min(k - t);
    let mut acc: u128 = 1;
    for i in 0..t {
        acc = acc * (k - i) as u128 / (i + 1) as u128;
        if acc >= cap as u128 {
            return cap;
        }
    }
    (acc as usize).min(cap)
}

/// All 1-CHARGED patterns for a `k`-bit dataword.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn one_charged(k: usize) -> Vec<ChargedSet> {
    assert!(k >= 1);
    (0..k).map(|a| ChargedSet::new(vec![a], k)).collect()
}

/// All 2-CHARGED patterns for a `k`-bit dataword.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn two_charged(k: usize) -> Vec<ChargedSet> {
    assert!(k >= 2);
    let mut v = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            v.push(ChargedSet::new(vec![a, b], k));
        }
    }
    v
}

/// `count` distinct uniformly random `t`-CHARGED patterns for a `k`-bit
/// dataword, deterministic in `seed`. If fewer than `count` such patterns
/// exist, every `t`-subset is returned (in enumeration order).
///
/// # Panics
///
/// Panics if `t > k` or `count == 0`.
pub fn random_t_charged(k: usize, t: usize, count: usize, seed: u64) -> Vec<ChargedSet> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(t <= k, "order {t} exceeds dataword length {k}");
    assert!(count > 0, "count must be positive");
    let target = binomial_capped(k, t, count);
    if target < count {
        // The whole family fits: enumerate instead of sampling.
        return all_t_subsets(k, t);
    }
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..k).collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        indices.shuffle(&mut rng);
        let mut bits: Vec<usize> = indices[..t].to_vec();
        bits.sort_unstable();
        if seen.insert(bits.clone()) {
            out.push(ChargedSet::new(bits, k));
        }
    }
    out
}

/// Every `t`-subset of `0..k`, in lexicographic order.
fn all_t_subsets(k: usize, t: usize) -> Vec<ChargedSet> {
    let mut out = Vec::new();
    let mut bits: Vec<usize> = (0..t).collect();
    loop {
        out.push(ChargedSet::new(bits.clone(), k));
        // Advance the combination: find the rightmost incrementable slot.
        let mut i = t;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if bits[i] < k - (t - i) {
                bits[i] += 1;
                for j in (i + 1)..t {
                    bits[j] = bits[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The two alternating half-charged patterns: even data bits CHARGED, then
/// odd data bits CHARGED.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn checkered(k: usize) -> Vec<ChargedSet> {
    assert!(k >= 2, "checkered patterns need at least 2 data bits");
    let even: Vec<usize> = (0..k).step_by(2).collect();
    let odd: Vec<usize> = (1..k).step_by(2).collect();
    vec![ChargedSet::new(even, k), ChargedSet::new(odd, k)]
}

/// The pattern with every data bit CHARGED.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn all_charged(k: usize) -> ChargedSet {
    assert!(k >= 1);
    ChargedSet::new((0..k).collect(), k)
}

/// All 3-CHARGED patterns for a `k`-bit dataword.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn three_charged(k: usize) -> Vec<ChargedSet> {
    assert!(k >= 3);
    let mut v = Vec::with_capacity(k * (k - 1) * (k - 2) / 6);
    for a in 0..k {
        for b in (a + 1)..k {
            for c in (b + 1)..k {
                v.push(ChargedSet::new(vec![a, b, c], k));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_counts_match_binomials() {
        // The paper's example: a 128-bit dataword yields 128 1-CHARGED and
        // 8128 2-CHARGED patterns (§5.1.3).
        assert_eq!(PatternSet::One.patterns(128).len(), 128);
        assert_eq!(PatternSet::Two.patterns(128).len(), 8128);
        assert_eq!(PatternSet::OneTwo.patterns(128).len(), 128 + 8128);
        assert_eq!(PatternSet::Three.patterns(10).len(), 120);
        for set in [
            PatternSet::One,
            PatternSet::Two,
            PatternSet::Three,
            PatternSet::OneTwo,
        ] {
            assert_eq!(set.patterns(10).len(), set.len(10));
        }
    }

    #[test]
    fn charged_bits_are_sorted_and_unique() {
        let p = ChargedSet::new(vec![7, 2], 8);
        assert_eq!(p.bits(), &[2, 7]);
        assert!(p.is_charged(2) && p.is_charged(7));
        assert!(!p.is_charged(3));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        ChargedSet::new(vec![1, 1], 4);
    }

    #[test]
    #[should_panic(expected = "out of dataword range")]
    fn out_of_range_rejected() {
        ChargedSet::new(vec![4], 4);
    }

    #[test]
    fn dataword_roundtrip_both_cell_types() {
        let p = ChargedSet::new(vec![0, 3], 6);
        for ct in [CellType::True, CellType::Anti] {
            let d = p.to_dataword(ct);
            assert_eq!(ChargedSet::from_dataword(&d, ct), p, "{ct:?}");
        }
    }

    #[test]
    fn anti_cells_invert_the_pattern() {
        let p = ChargedSet::new(vec![1], 4);
        assert_eq!(p.to_dataword(CellType::True).to_string(), "0100");
        assert_eq!(p.to_dataword(CellType::Anti).to_string(), "1011");
    }

    #[test]
    fn display_names() {
        assert_eq!(PatternSet::OneTwo.to_string(), "{1,2}-CHARGED");
        assert_eq!(ChargedSet::new(vec![3], 8).to_string(), "1-CHARGED[3]");
    }

    #[test]
    fn all_two_charged_patterns_are_distinct() {
        let pats = two_charged(9);
        let set: std::collections::HashSet<_> = pats.iter().cloned().collect();
        assert_eq!(set.len(), pats.len());
    }

    #[test]
    fn random_t_charged_is_deterministic_distinct_and_sized() {
        let a = random_t_charged(16, 5, 20, 42);
        let b = random_t_charged(16, 5, 20, 42);
        assert_eq!(a, b, "same seed must reproduce the same family");
        assert_eq!(a.len(), 20);
        let set: std::collections::HashSet<_> = a.iter().cloned().collect();
        assert_eq!(set.len(), 20, "patterns must be distinct");
        assert!(a.iter().all(|p| p.order() == 5 && p.k() == 16));
        let c = random_t_charged(16, 5, 20, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_t_charged_saturates_to_full_enumeration() {
        // C(5,2) = 10 < 64: the whole family comes back.
        let pats = random_t_charged(5, 2, 64, 1);
        assert_eq!(pats.len(), 10);
        assert_eq!(pats, two_charged(5));
        assert_eq!(
            PatternSet::RandomT {
                t: 2,
                count: 64,
                seed: 1
            }
            .len(5),
            10
        );
    }

    #[test]
    fn checkered_and_all_charged_shapes() {
        let ck = checkered(7);
        assert_eq!(ck[0].bits(), &[0, 2, 4, 6]);
        assert_eq!(ck[1].bits(), &[1, 3, 5]);
        let all = all_charged(4);
        assert_eq!(all.order(), 4);
        assert_eq!(all.to_dataword(CellType::True).to_string(), "1111");
        assert_eq!(PatternSet::All.patterns(4), vec![all]);
        assert_eq!(PatternSet::Checkered.len(7), 2);
    }

    #[test]
    fn new_family_display_names() {
        assert_eq!(
            PatternSet::RandomT {
                t: 3,
                count: 16,
                seed: 0
            }
            .to_string(),
            "RANDOM-3-CHARGED(x16)"
        );
        assert_eq!(PatternSet::Checkered.to_string(), "CHECKERED");
        assert_eq!(PatternSet::All.to_string(), "ALL-CHARGED");
    }

    #[test]
    fn new_families_report_their_own_lengths() {
        for set in [
            PatternSet::RandomT {
                t: 4,
                count: 12,
                seed: 9,
            },
            PatternSet::Checkered,
            PatternSet::All,
        ] {
            assert_eq!(set.patterns(10).len(), set.len(10), "{set}");
        }
    }

    #[test]
    fn binomial_capped_saturates_without_overflow() {
        assert_eq!(binomial_capped(128, 64, 10_000), 10_000);
        assert_eq!(binomial_capped(5, 2, 100), 10);
        assert_eq!(binomial_capped(4, 5, 100), 0);
        assert_eq!(binomial_capped(6, 0, 9), 1);
    }
}
