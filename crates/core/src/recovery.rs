//! The unified recovery session: one typed entry point for the whole BEER
//! pipeline.
//!
//! The paper's methodology is a single conceptual loop — craft patterns,
//! profile retention miscorrections, solve for the consistent ECC
//! functions, act on the recovered code — and this module packages it as
//! one: a [`RecoveryConfig`] builder owns every knob the pipeline has
//! (backend-agnostic pattern schedule, collection plan, threshold filter,
//! solver options, thread budget, wall-clock/fact/pattern budgets), and a
//! [`RecoverySession`] drives any [`ProfileSource`] from the first batch
//! to a typed terminal [`RecoveryOutcome`]:
//!
//! * **Step-wise execution.** [`RecoverySession::advance`] runs one
//!   collect → push → check round, exactly the interleaving of the §6.3
//!   progressive optimization; [`RecoverySession::run_to_completion`]
//!   loops it to the end.
//! * **Cancellation and budgets.** A wall-clock deadline, a fact budget, a
//!   pattern budget, and a shareable [`CancelToken`] all terminate the
//!   session with [`RecoveryOutcome::BudgetExhausted`] carrying the
//!   partial candidate set — deadline and cancellation are honored
//!   *mid-batch* (the engine checks between collection units).
//! * **Observability.** A [`RecoveryEvent`] observer replaces ad-hoc
//!   progress printing: batch collected, facts pushed, distinctness
//!   counterexamples repaired, check completed.
//! * **Checkpointing.** With [`RecoveryConfig::with_trace_recording`],
//!   the session accumulates every collected unit into a
//!   [`ProfileTrace`]; replaying it through
//!   [`crate::trace::ReplayBackend`] reproduces the outcome bit for bit.
//! * **Fleet execution.** [`RecoveryFleet`] runs N independent sessions —
//!   one per chip of a population — concurrently over a shared thread
//!   budget, returning per-member reports in deterministic member order.
//!
//! The original free functions ([`crate::engine::collect_with`],
//! [`crate::solve::solve_profile`], [`crate::solve::progressive_recover`])
//! remain as documented low-level entry points; `progressive_recover` is a
//! thin wrapper over a session.
//!
//! # Examples
//!
//! ```
//! use beer_core::engine::AnalyticBackend;
//! use beer_core::recovery::{RecoveryConfig, RecoveryOutcome};
//! use beer_ecc::{equivalence, hamming};
//!
//! let secret = hamming::shortened(11);
//! let mut backend = AnalyticBackend::new(secret.clone());
//! let report = RecoveryConfig::new()
//!     .with_chunked_schedule(8)
//!     .session(&mut backend)
//!     .run_to_completion()
//!     .expect("analytic backends cannot fail");
//! match report.outcome {
//!     RecoveryOutcome::Unique(code) => {
//!         assert!(equivalence::equivalent(&code, &secret));
//!     }
//!     other => panic!("expected a unique recovery, got {other:?}"),
//! }
//! ```

use crate::collect::CollectionPlan;
use crate::engine::{collect_inner, EngineError, EngineOptions, ProfileSource};
use crate::pattern::{ChargedSet, PatternSet};
use crate::profile::ThresholdFilter;
use crate::solve::{
    progressive_batches, BeerSolverOptions, ColumnDistinctness, ObservationEncoding,
    ProgressiveSolver, SolveError, SolveReport,
};
use crate::trace::{ProfileTrace, UnitTrace};
use beer_ecc::{hamming, LinearCode};
use beer_sat::SolverStats;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning.
///
/// Every shared structure of the fleet and of `beer_service` holds plain
/// counting/slot state that is valid after any partial update, and member
/// panics are already surfaced as typed per-member errors — so a poisoned
/// lock must not cascade into aborting unrelated members.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Errors, outcomes, events
// ---------------------------------------------------------------------------

/// A typed error from a recovery session: either the collection engine
/// failed (worker panic, exhausted trace) or the solver rejected the
/// constraints (unsupported pattern order, dataword mismatch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The collection engine failed.
    Engine(EngineError),
    /// The SAT encoding rejected the constraints.
    Solve(SolveError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Engine(e) => write!(f, "collection failed: {e}"),
            RecoveryError::Solve(e) => write!(f, "solving failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<EngineError> for RecoveryError {
    fn from(e: EngineError) -> Self {
        RecoveryError::Engine(e)
    }
}

impl From<SolveError> for RecoveryError {
    fn from(e: SolveError) -> Self {
        RecoveryError::Solve(e)
    }
}

/// Which budget terminated a session early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The session's [`CancelToken`] was cancelled.
    Cancelled,
    /// The fact budget ([`RecoveryConfig::with_max_facts`]) was reached.
    MaxFacts,
    /// The pattern budget ([`RecoveryConfig::with_max_patterns`]) was
    /// reached.
    MaxPatterns,
}

/// The terminal state of a recovery session.
#[derive(Clone, Debug)]
pub enum RecoveryOutcome {
    /// Exactly one ECC function (equivalence class) is consistent with
    /// everything collected — BEER's success case.
    Unique(LinearCode),
    /// The full schedule ran and several functions remain consistent
    /// (expected for shortened codes under 1-CHARGED only, Figure 5).
    Ambiguous {
        /// Number of witnesses found; a lower bound when `truncated`.
        count: usize,
        /// True if enumeration stopped at the solver's solution cap.
        truncated: bool,
        /// The consistent functions, as enumerated.
        witnesses: Vec<LinearCode>,
    },
    /// No function is consistent — noise (or a corrupt trace) made the
    /// profile contradictory.
    Inconsistent,
    /// A budget terminated the session before the schedule decided.
    BudgetExhausted {
        /// Which budget fired.
        reason: BudgetReason,
        /// The candidates consistent with everything collected so far
        /// (empty if no check completed).
        partial: Vec<LinearCode>,
    },
}

impl RecoveryOutcome {
    /// The uniquely recovered code, if the session succeeded.
    pub fn unique_code(&self) -> Option<&LinearCode> {
        match self {
            RecoveryOutcome::Unique(code) => Some(code),
            _ => None,
        }
    }

    /// True for [`RecoveryOutcome::Unique`].
    pub fn is_unique(&self) -> bool {
        matches!(self, RecoveryOutcome::Unique(_))
    }
}

/// Progress notifications emitted by a session (see the module docs).
#[derive(Clone, Debug)]
pub enum RecoveryEvent {
    /// A pattern batch finished collecting.
    BatchCollected {
        /// 1-based round number.
        round: usize,
        /// Patterns in the batch.
        patterns: usize,
        /// Raw miscorrection observations in the batch.
        observations: u64,
        /// Trials recorded across the batch's patterns.
        trials: u64,
    },
    /// The batch's thresholded facts entered the live SAT session.
    FactsPushed {
        /// 1-based round number.
        round: usize,
        /// Definite facts this batch contributed.
        new_facts: usize,
        /// Definite facts encoded so far.
        total_facts: usize,
        /// `P` variables pinned by GF(2) preprocessing so far.
        pinned_vars: usize,
    },
    /// The lazy column-distinctness loop repaired counterexamples during
    /// the round's check.
    CounterexampleRepaired {
        /// 1-based round number.
        round: usize,
        /// Column pairs constrained.
        pairs: usize,
    },
    /// A uniqueness check finished.
    CheckCompleted {
        /// 1-based round number.
        round: usize,
        /// Consistent functions found (up to the solver's cap).
        solutions: usize,
        /// True if enumeration stopped at the cap.
        truncated: bool,
        /// Wall-clock time of the check.
        elapsed: Duration,
        /// Per-phase wall-clock breakdown of the whole round (the
        /// paper's Fig. 6 stage split, live).
        phases: RoundPhases,
        /// Simulated DRAM nanoseconds the round's collection executed
        /// (`0` for sources that do not model time) — the campaign-cost
        /// counterpart of `phases.collect`, which is host time.
        sim_ns: u64,
        /// Solver statistics after the check (vars/clauses/learnts,
        /// conflicts, decisions, propagations).
        solver: SolverStats,
    },
}

/// The wall-clock breakdown of one collect → push → check round,
/// carried on [`RecoveryEvent::CheckCompleted`]. `solve` is the same
/// duration as the event's `elapsed`; the other three cover the round's
/// earlier phases, so `collect + preprocess + encode + solve` is the
/// round's total pipeline time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundPhases {
    /// Collecting the batch's miscorrection profile from the backend.
    pub collect: Duration,
    /// GF(2) preprocessing (variable pinning) over the accumulated facts.
    pub preprocess: Duration,
    /// Encoding the thresholded facts into CNF.
    pub encode: Duration,
    /// The SAT uniqueness check (enumeration + lazy repairs).
    pub solve: Duration,
}

/// Cooperative cancellation handle: clone it, hand it to another thread,
/// and [`CancelToken::cancel`] terminates the session at the next unit
/// boundary with [`BudgetReason::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cloneable broadcast channel: every value published is delivered to
/// every live subscriber, and subscribers whose receiver was dropped are
/// pruned on the next publish.
///
/// This is the event fan-out under session observability: a session's
/// single observer callback publishes into a `Fanout<RecoveryEvent>`
/// (see [`Fanout::observer`]) and any number of consumers subscribe;
/// `beer_service` uses the same type to stream its per-job events to
/// tenants.
/// A wakeup callback attached to a [`Fanout`] subscriber: invoked after
/// each value lands in that subscriber's queue, from the publishing
/// thread. Keep it cheap and non-blocking — its job is to *signal* (wake
/// an event loop, set a flag), never to consume.
pub type FanoutNotify = Arc<dyn Fn() + Send + Sync>;

struct FanoutSubscriber<T> {
    tx: mpsc::Sender<T>,
    /// Optional readiness signal for subscribers that cannot block on the
    /// receiver (e.g. an epoll reactor parking thousands of watchers).
    notify: Option<FanoutNotify>,
}

pub struct Fanout<T: Clone + Send> {
    subscribers: Arc<Mutex<Vec<FanoutSubscriber<T>>>>,
}

impl<T: Clone + Send> Clone for Fanout<T> {
    fn clone(&self) -> Self {
        Fanout {
            subscribers: Arc::clone(&self.subscribers),
        }
    }
}

impl<T: Clone + Send> Default for Fanout<T> {
    fn default() -> Self {
        Fanout {
            subscribers: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl<T: Clone + Send> Fanout<T> {
    /// A fan-out with no subscribers yet.
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Registers a subscriber; values published from now on arrive on the
    /// returned receiver.
    pub fn subscribe(&self) -> mpsc::Receiver<T> {
        let (tx, rx) = mpsc::channel();
        lock_unpoisoned(&self.subscribers).push(FanoutSubscriber { tx, notify: None });
        rx
    }

    /// Registers a subscriber with a wakeup callback: `notify` runs after
    /// each value is queued, so an event loop that multiplexes many
    /// receivers can sleep until one of them actually has something,
    /// instead of polling each with a timeout.
    pub fn subscribe_with_notify(&self, notify: FanoutNotify) -> mpsc::Receiver<T> {
        let (tx, rx) = mpsc::channel();
        lock_unpoisoned(&self.subscribers).push(FanoutSubscriber {
            tx,
            notify: Some(notify),
        });
        rx
    }

    /// Delivers `value` to every live subscriber, pruning dead ones and
    /// firing each surviving subscriber's wakeup callback.
    pub fn publish(&self, value: &T) {
        lock_unpoisoned(&self.subscribers).retain(|sub| {
            if sub.tx.send(value.clone()).is_err() {
                return false;
            }
            if let Some(notify) = &sub.notify {
                notify();
            }
            true
        });
    }

    /// Number of currently registered subscribers (dead ones are only
    /// pruned on publish).
    pub fn subscriber_count(&self) -> usize {
        lock_unpoisoned(&self.subscribers).len()
    }
}

impl<T: Clone + Send> Fanout<T> {
    /// An observer closure publishing every event into this fan-out —
    /// pass it to [`RecoverySession::with_observer`].
    pub fn observer(&self) -> impl FnMut(&T) + Send + 'static
    where
        T: 'static,
    {
        let fanout = self.clone();
        move |event: &T| fanout.publish(event)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// How a session schedules test patterns into collect → check batches.
#[derive(Clone, Debug)]
pub enum PatternSchedule {
    /// The standard progressive schedule: all 1-CHARGED patterns first,
    /// then 2-CHARGED patterns in chunks of the given size
    /// ([`progressive_batches`]).
    Progressive {
        /// 2-CHARGED patterns per batch.
        chunk: usize,
    },
    /// One pattern family as a single batch (one-shot recovery).
    Family(PatternSet),
    /// Explicit batches, collected and checked in order.
    Batches(Vec<Vec<ChargedSet>>),
}

impl Default for PatternSchedule {
    fn default() -> Self {
        PatternSchedule::Progressive { chunk: 64 }
    }
}

impl PatternSchedule {
    /// Materializes the schedule for a `k`-bit dataword.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or `k` is too small for the family.
    pub fn resolve(&self, k: usize) -> Vec<Vec<ChargedSet>> {
        let batches = match self {
            PatternSchedule::Progressive { chunk } => progressive_batches(k, *chunk),
            PatternSchedule::Family(set) => vec![set.patterns(k)],
            PatternSchedule::Batches(batches) => batches.clone(),
        };
        assert!(
            !batches.is_empty() && batches.iter().all(|b| !b.is_empty()),
            "pattern schedule must contain at least one non-empty batch"
        );
        batches
    }

    /// Builds a schedule that orders `families` by **facts per simulated
    /// second** — projected definite facts divided by the simulated DRAM
    /// time one collection round costs under `model` — so a progressive
    /// session reaches a decisive profile in the fewest simulated hours.
    ///
    /// A pattern's projected yield is its count of DISCHARGED data bits
    /// (`k − order`): each is a position where the round can assert a
    /// definite miscorrection/no-miscorrection fact (§4.2.2). The round's
    /// denominator comes from the cost model *executing* the plan's
    /// refresh-window sweep (see `TimedCostModel`), so the ordering and
    /// the absolute per-round cost quoted in the report derive from the
    /// same command streams the timed backend will run. Ties (and the
    /// common case of one shared plan, where the denominator is uniform)
    /// fall back to yield order, preserving the input order among equals.
    ///
    /// Returns the schedule (one batch per family, best throughput first)
    /// and the per-family estimates in that chosen order.
    ///
    /// # Panics
    ///
    /// Panics if `families` is empty or `k` is too small for a family.
    pub fn cost_aware(
        families: &[PatternSet],
        k: usize,
        plan: &CollectionPlan,
        model: &dyn ScheduleCostModel,
    ) -> (PatternSchedule, ScheduleCostReport) {
        assert!(!families.is_empty(), "no pattern families to schedule");
        let round_sim_ns = model.round_sim_ns(plan);
        let mut estimates: Vec<(Vec<ChargedSet>, FamilyCostEstimate)> = families
            .iter()
            .map(|&family| {
                let patterns = family.patterns(k);
                let projected_facts: u64 = patterns.iter().map(|p| (k - p.order()) as u64).sum();
                let facts_per_sim_second = if round_sim_ns == 0 {
                    f64::INFINITY
                } else {
                    projected_facts as f64 / (round_sim_ns as f64 / 1e9)
                };
                let estimate = FamilyCostEstimate {
                    family,
                    patterns: patterns.len(),
                    projected_facts,
                    round_sim_ns,
                    facts_per_sim_second,
                };
                (patterns, estimate)
            })
            .collect();
        // Stable sort: equal-throughput families keep their input order.
        estimates.sort_by(|a, b| {
            b.1.projected_facts
                .cmp(&a.1.projected_facts)
                .then_with(|| a.1.round_sim_ns.cmp(&b.1.round_sim_ns))
        });
        let (batches, families): (Vec<_>, Vec<_>) = estimates.into_iter().unzip();
        (
            PatternSchedule::Batches(batches),
            ScheduleCostReport { families },
        )
    }
}

/// Prices one collection round in simulated DRAM time. The contract is
/// execute-and-stall: implementations obtain the cost by *running* the
/// plan's refresh-window sweep on a (scratch) cycle-accurate controller,
/// never from a closed-form latency estimate — so the number quoted for
/// scheduling is the number a timed backend will actually accrue.
pub trait ScheduleCostModel {
    /// Simulated nanoseconds one full collection round under `plan` costs
    /// (every refresh window, `trials_per_step` trials each).
    fn round_sim_ns(&self, plan: &CollectionPlan) -> u64;
}

/// One family's entry in a [`ScheduleCostReport`].
#[derive(Clone, Copy, Debug)]
pub struct FamilyCostEstimate {
    /// The pattern family.
    pub family: PatternSet,
    /// Patterns the family materializes at the scheduled `k`.
    pub patterns: usize,
    /// Projected definite facts: Σ over patterns of their DISCHARGED
    /// data-bit count (`k − order`).
    pub projected_facts: u64,
    /// Simulated nanoseconds one collection round costs under the plan.
    pub round_sim_ns: u64,
    /// The scheduling key: `projected_facts / (round_sim_ns / 1e9)`.
    pub facts_per_sim_second: f64,
}

/// How [`PatternSchedule::cost_aware`] ordered the families, carried
/// alongside the schedule so reports (e.g. `SolveReport::sim_ns` read
/// next to a session's outcome) can show *why* the campaign ran in the
/// order it did.
#[derive(Clone, Debug)]
pub struct ScheduleCostReport {
    /// Per-family estimates, in the chosen (best-throughput-first) order.
    pub families: Vec<FamilyCostEstimate>,
}

impl ScheduleCostReport {
    /// Total projected facts across all scheduled families.
    pub fn total_projected_facts(&self) -> u64 {
        self.families.iter().map(|f| f.projected_facts).sum()
    }

    /// Total simulated nanoseconds if every family's round runs.
    pub fn total_sim_ns(&self) -> u64 {
        self.families.iter().map(|f| f.round_sim_ns).sum()
    }
}

/// Every knob of the BEER pipeline in one typed builder (see the module
/// docs). `Default`/[`RecoveryConfig::new`] reproduce the paper's standard
/// methodology: progressive {1,2}-CHARGED schedule, the quick collection
/// plan, the §5.2 threshold filter, and the default solver options.
#[derive(Clone, Debug, Default)]
pub struct RecoveryConfig {
    parity_bits: Option<usize>,
    schedule: PatternSchedule,
    plan: CollectionPlan,
    filter: ThresholdFilter,
    solver: BeerSolverOptions,
    engine: EngineOptions,
    deadline: Option<Duration>,
    max_facts: Option<usize>,
    max_patterns: Option<usize>,
    record_trace: bool,
}

impl RecoveryConfig {
    /// The paper-standard configuration.
    pub fn new() -> Self {
        RecoveryConfig::default()
    }

    /// Overrides the parity-bit count (default: the smallest SEC Hamming
    /// parity count for the source's dataword length,
    /// [`hamming::parity_bits_for`]).
    pub fn with_parity_bits(mut self, parity_bits: usize) -> Self {
        self.parity_bits = Some(parity_bits);
        self
    }

    /// Uses an explicit pattern schedule.
    pub fn with_schedule(mut self, schedule: PatternSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Collects one pattern family as a single batch (one-shot recovery).
    pub fn with_pattern_family(self, set: PatternSet) -> Self {
        self.with_schedule(PatternSchedule::Family(set))
    }

    /// Uses the progressive {1,2}-CHARGED schedule with the given
    /// 2-CHARGED chunk size.
    pub fn with_chunked_schedule(self, chunk: usize) -> Self {
        self.with_schedule(PatternSchedule::Progressive { chunk })
    }

    /// Uses explicit pattern batches.
    pub fn with_batches(self, batches: Vec<Vec<ChargedSet>>) -> Self {
        self.with_schedule(PatternSchedule::Batches(batches))
    }

    /// Overrides the refresh-window sweep.
    pub fn with_plan(mut self, plan: CollectionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Overrides the §5.2 threshold filter.
    pub fn with_filter(mut self, filter: ThresholdFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Overrides the full solver option block.
    pub fn with_solver_options(mut self, solver: BeerSolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the observation-to-clause encoding only.
    pub fn with_encoding(mut self, encoding: ObservationEncoding) -> Self {
        self.solver.encoding = encoding;
        self
    }

    /// Overrides the column-distinctness scheme only.
    pub fn with_distinctness(mut self, distinctness: ColumnDistinctness) -> Self {
        self.solver.distinctness = distinctness;
        self
    }

    /// Overrides the solution-enumeration cap only.
    pub fn with_max_solutions(mut self, max_solutions: usize) -> Self {
        self.solver.max_solutions = max_solutions;
        self
    }

    /// Collection worker threads (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = EngineOptions::with_threads(threads);
        self
    }

    /// Overrides the full engine option block.
    pub fn with_engine_options(mut self, engine: EngineOptions) -> Self {
        self.engine = engine;
        self
    }

    /// Terminates the session once this much wall-clock time has elapsed
    /// since it started (honored mid-batch).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Terminates the session once this many definite facts are encoded.
    pub fn with_max_facts(mut self, max_facts: usize) -> Self {
        self.max_facts = Some(max_facts);
        self
    }

    /// Terminates the session once this many patterns are collected.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> Self {
        self.max_patterns = Some(max_patterns);
        self
    }

    /// Records every collected unit into an exportable [`ProfileTrace`]
    /// (see [`RecoverySession::export_trace`]).
    pub fn with_trace_recording(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Starts a session over `source`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule resolves to no patterns for the source's
    /// dataword length, or the dataword length is zero.
    pub fn session<'s>(&self, source: &'s mut dyn ProfileSource) -> RecoverySession<'s> {
        let k = source.k();
        let parity_bits = self
            .parity_bits
            .unwrap_or_else(|| hamming::parity_bits_for(k));
        let batches = self.schedule.resolve(k);
        let patterns_available = batches.iter().map(|b| b.len()).sum();
        RecoverySession {
            solver: ProgressiveSolver::new(k, parity_bits, self.solver),
            source,
            parity_bits,
            batches,
            plan: self.plan.clone(),
            filter: self.filter,
            engine: self.engine,
            deadline: self.deadline,
            max_facts: self.max_facts,
            max_patterns: self.max_patterns,
            cancel: CancelToken::new(),
            observer: None,
            started: Instant::now(),
            next_batch: 0,
            rounds: 0,
            patterns_used: 0,
            patterns_available,
            sim_ns_total: 0,
            last_check: None,
            outcome: None,
            error: None,
            trace: self.record_trace.then(|| TraceLog {
                patterns: Vec::new(),
                units: Vec::new(),
            }),
        }
    }

    /// Patterns the configured schedule would collect for a `k`-bit
    /// dataword — what a full session over such a source costs. Admission
    /// control in `beer_service` sizes live-backend jobs with this.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`PatternSchedule::resolve`].
    pub fn scheduled_patterns(&self, k: usize) -> usize {
        self.schedule.resolve(k).iter().map(|b| b.len()).sum()
    }

    /// A fleet runner over this configuration (see [`RecoveryFleet`]).
    pub fn fleet(&self) -> RecoveryFleet {
        RecoveryFleet::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Whether a session has more work to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// More batches remain and no terminal outcome was reached.
    Running,
    /// The session reached a [`RecoveryOutcome`].
    Finished,
}

/// Bookkeeping of a session's progress.
#[derive(Clone, Debug)]
pub struct RecoveryStats {
    /// Collect → check rounds executed.
    pub rounds: usize,
    /// Batches in the full schedule.
    pub batches_total: usize,
    /// Patterns actually collected.
    pub patterns_used: usize,
    /// Patterns the full schedule would collect.
    pub patterns_available: usize,
    /// Definite facts encoded into the SAT session.
    pub facts_encoded: usize,
    /// `P` variables pinned by GF(2) preprocessing.
    pub pinned_vars: usize,
    /// Wall-clock time since the session started.
    pub elapsed: Duration,
    /// Simulated DRAM nanoseconds the session's collections executed so
    /// far (`0` for sources that do not model time).
    pub dram_sim_ns: u64,
}

/// The final product of a session: the typed outcome, progress statistics,
/// the last uniqueness check's [`SolveReport`], and (if recording was
/// enabled) the replayable trace.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The terminal outcome.
    pub outcome: RecoveryOutcome,
    /// Progress bookkeeping.
    pub stats: RecoveryStats,
    /// The last check's report (absent if no round completed).
    pub last_check: Option<SolveReport>,
    /// Everything collected, replayable through
    /// [`crate::trace::ReplayBackend`] (present iff recording was on).
    pub trace: Option<ProfileTrace>,
}

struct TraceLog {
    patterns: Vec<ChargedSet>,
    units: Vec<UnitTrace>,
}

/// The BEER pipeline as a resumable state machine over one
/// [`ProfileSource`] (see the module docs).
pub struct RecoverySession<'s> {
    source: &'s mut dyn ProfileSource,
    parity_bits: usize,
    batches: Vec<Vec<ChargedSet>>,
    plan: CollectionPlan,
    filter: ThresholdFilter,
    engine: EngineOptions,
    deadline: Option<Duration>,
    max_facts: Option<usize>,
    max_patterns: Option<usize>,
    solver: ProgressiveSolver,
    cancel: CancelToken,
    #[allow(clippy::type_complexity)]
    observer: Option<Box<dyn FnMut(&RecoveryEvent) + 's>>,
    started: Instant,
    next_batch: usize,
    rounds: usize,
    patterns_used: usize,
    patterns_available: usize,
    /// Simulated DRAM nanoseconds accumulated across the session's
    /// collections (deltas of [`ProfileSource::sim_elapsed_ns`]).
    sim_ns_total: u64,
    last_check: Option<SolveReport>,
    outcome: Option<RecoveryOutcome>,
    error: Option<RecoveryError>,
    trace: Option<TraceLog>,
}

impl<'s> RecoverySession<'s> {
    /// Dataword length.
    pub fn k(&self) -> usize {
        self.solver.k()
    }

    /// Parity bits the solver searches over.
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Installs a progress observer (replaces any previous one).
    pub fn with_observer(mut self, observer: impl FnMut(&RecoveryEvent) + 's) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Uses an externally created cancellation token (replaces the
    /// session's own). This lets a caller — e.g. a service holding one
    /// token per job — arm cancellation *before* the session exists, so a
    /// job cancelled while still queued never starts collecting.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A cancellation handle for this session (clone freely).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The terminal outcome, once reached.
    pub fn outcome(&self) -> Option<&RecoveryOutcome> {
        self.outcome.as_ref()
    }

    /// The most recent uniqueness check's report.
    pub fn last_check(&self) -> Option<&SolveReport> {
        self.last_check.as_ref()
    }

    /// Progress so far.
    pub fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            rounds: self.rounds,
            batches_total: self.batches.len(),
            patterns_used: self.patterns_used,
            patterns_available: self.patterns_available,
            facts_encoded: self.solver.facts_encoded(),
            pinned_vars: self.solver.pinned_vars(),
            elapsed: self.started.elapsed(),
            dram_sim_ns: self.sim_ns_total,
        }
    }

    /// Everything collected so far as a replayable [`ProfileTrace`]
    /// (`None` unless [`RecoveryConfig::with_trace_recording`] was set).
    /// Valid at any point — a budget-exhausted session's checkpoint
    /// replays exactly the rounds that ran.
    pub fn export_trace(&self) -> Option<ProfileTrace> {
        self.trace.as_ref().map(|log| ProfileTrace {
            k: self.k(),
            patterns: log.patterns.clone(),
            units: log.units.clone(),
        })
    }

    fn emit(&mut self, event: RecoveryEvent) {
        if let Some(observer) = &mut self.observer {
            observer(&event);
        }
    }

    fn budget_reason(&self) -> Option<BudgetReason> {
        if self.cancel.is_cancelled() {
            return Some(BudgetReason::Cancelled);
        }
        if self
            .deadline
            .is_some_and(|deadline| self.started.elapsed() >= deadline)
        {
            return Some(BudgetReason::Deadline);
        }
        if self
            .max_patterns
            .is_some_and(|max| self.patterns_used >= max)
        {
            return Some(BudgetReason::MaxPatterns);
        }
        if self
            .max_facts
            .is_some_and(|max| self.solver.facts_encoded() >= max)
        {
            return Some(BudgetReason::MaxFacts);
        }
        None
    }

    fn finish_exhausted(&mut self, reason: BudgetReason) {
        let partial = self
            .last_check
            .as_ref()
            .map(|r| r.solutions.clone())
            .unwrap_or_default();
        self.outcome = Some(RecoveryOutcome::BudgetExhausted { reason, partial });
    }

    /// Runs one collect → push → check round; returns whether the session
    /// reached a terminal outcome. Calling `advance` on a finished session
    /// is a no-op returning [`SessionStatus::Finished`].
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryError`] if the engine fails the batch or the
    /// solver rejects its constraints. A failed session is terminal:
    /// every later `advance` returns the same error.
    pub fn advance(&mut self) -> Result<SessionStatus, RecoveryError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        match self.advance_impl() {
            Ok(status) => Ok(status),
            Err(err) => {
                self.error = Some(err.clone());
                Err(err)
            }
        }
    }

    fn advance_impl(&mut self) -> Result<SessionStatus, RecoveryError> {
        if self.outcome.is_some() {
            return Ok(SessionStatus::Finished);
        }
        if let Some(reason) = self.budget_reason() {
            self.finish_exhausted(reason);
            return Ok(SessionStatus::Finished);
        }

        // Collect the next batch, checking deadline/cancellation between
        // units so budgets are honored mid-batch. Each batch is consumed
        // exactly once, so take it instead of cloning it.
        let batch = std::mem::take(&mut self.batches[self.next_batch]);
        let cancel = self.cancel.clone();
        let deadline_at = self.deadline.map(|d| self.started + d);
        let interrupt =
            move || cancel.is_cancelled() || deadline_at.is_some_and(|at| Instant::now() >= at);
        let record = self.trace.is_some();
        let collect_start = Instant::now();
        let sim_before = self.source.sim_elapsed_ns().unwrap_or(0);
        let collected = collect_inner(
            self.source,
            &batch,
            &self.plan,
            &self.engine,
            record,
            Some(&interrupt),
        )?;
        let collect_time = collect_start.elapsed();
        let round_sim_ns = self
            .source
            .sim_elapsed_ns()
            .unwrap_or(0)
            .saturating_sub(sim_before);
        self.sim_ns_total += round_sim_ns;
        if collected.interrupted {
            // The partial batch is discarded: which units completed
            // depends on scheduling, and a partial profile would assert
            // false NoMiscorrection facts.
            let reason = if self.cancel.is_cancelled() {
                BudgetReason::Cancelled
            } else {
                BudgetReason::Deadline
            };
            self.finish_exhausted(reason);
            return Ok(SessionStatus::Finished);
        }
        if let Some(log) = &mut self.trace {
            let offset = log.patterns.len();
            log.patterns.extend(batch.iter().cloned());
            for mut unit in collected.units {
                unit.offset_patterns(offset);
                log.units.push(unit);
            }
        }
        self.rounds += 1;
        self.next_batch += 1;
        self.patterns_used += batch.len();
        let round = self.rounds;
        let observations: u64 = collected.profile.per_bit_totals().iter().sum();
        let trials: u64 = (0..batch.len())
            .map(|pi| collected.profile.trials(pi))
            .sum();
        self.emit(RecoveryEvent::BatchCollected {
            round,
            patterns: batch.len(),
            observations,
            trials,
        });

        // Push the thresholded facts into the live SAT session.
        let constraints = collected.profile.to_constraints(&self.filter);
        let facts_before = self.solver.facts_encoded();
        self.solver.push_constraints(&constraints)?;
        let (encode_time, preprocess_time) = self.solver.last_push_times();
        let total_facts = self.solver.facts_encoded();
        let pinned_vars = self.solver.pinned_vars();
        self.emit(RecoveryEvent::FactsPushed {
            round,
            new_facts: total_facts - facts_before,
            total_facts,
            pinned_vars,
        });

        // Check uniqueness over everything pushed so far.
        let mut report = self.solver.check();
        report.sim_ns = self.sim_ns_total;
        if report.distinctness_repairs > 0 {
            self.emit(RecoveryEvent::CounterexampleRepaired {
                round,
                pairs: report.distinctness_repairs,
            });
        }
        self.emit(RecoveryEvent::CheckCompleted {
            round,
            solutions: report.solutions.len(),
            truncated: report.truncated,
            elapsed: report.total_time,
            phases: RoundPhases {
                collect: collect_time,
                preprocess: preprocess_time,
                encode: encode_time,
                solve: report.total_time,
            },
            sim_ns: round_sim_ns,
            solver: report.solver_stats,
        });

        let schedule_done = self.next_batch >= self.batches.len();
        if report.is_unique() {
            self.outcome = Some(RecoveryOutcome::Unique(report.solutions[0].clone()));
        } else if report.solutions.is_empty() {
            self.outcome = Some(RecoveryOutcome::Inconsistent);
        } else if schedule_done {
            self.outcome = Some(RecoveryOutcome::Ambiguous {
                count: report.solutions.len(),
                truncated: report.truncated,
                witnesses: report.solutions.clone(),
            });
        }
        self.last_check = Some(report);
        Ok(if self.outcome.is_some() {
            SessionStatus::Finished
        } else {
            SessionStatus::Running
        })
    }

    /// Advances until the session finishes, then returns the report.
    ///
    /// # Errors
    ///
    /// The conditions of [`RecoverySession::advance`].
    pub fn run_to_completion(mut self) -> Result<RecoveryReport, RecoveryError> {
        while self.advance()? == SessionStatus::Running {}
        Ok(self.into_report())
    }

    /// Consumes a finished session into its report.
    ///
    /// # Panics
    ///
    /// Panics if the session has not finished (no terminal outcome yet).
    pub fn into_report(mut self) -> RecoveryReport {
        let stats = self.stats();
        let trace = self.export_trace();
        let outcome = self
            .outcome
            .take()
            .expect("into_report called on an unfinished session");
        RecoveryReport {
            outcome,
            stats,
            last_check: self.last_check.take(),
            trace,
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

/// One chip of a fleet: a label (for the report) and its backend.
pub struct FleetMember {
    /// Name carried through to the [`FleetOutcome`].
    pub label: String,
    /// The member's profile source.
    pub source: Box<dyn ProfileSource + Send>,
}

impl FleetMember {
    /// A labeled member.
    pub fn new(label: impl Into<String>, source: Box<dyn ProfileSource + Send>) -> Self {
        FleetMember {
            label: label.into(),
            source,
        }
    }
}

/// One member's result, in the input order.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The member's label.
    pub label: String,
    /// The member's session result.
    pub result: Result<RecoveryReport, RecoveryError>,
}

/// Optional per-session hooks for [`run_session_guarded`]: an external
/// cancellation token and an event observer.
#[derive(Default)]
pub struct SessionHooks {
    /// Arms the session with this token (see
    /// [`RecoverySession::with_cancel_token`]).
    pub cancel: Option<CancelToken>,
    /// Progress observer (see [`RecoverySession::with_observer`]).
    #[allow(clippy::type_complexity)]
    pub observer: Option<Box<dyn FnMut(&RecoveryEvent) + Send>>,
}

/// Runs one configured session over `source` to completion, converting a
/// panicking backend into a typed [`RecoveryError`] attributed to `label`
/// instead of unwinding into the caller.
///
/// This is the execution core shared by [`RecoveryFleet`] workers and the
/// `beer_service` job workers: both must guarantee that one misbehaving
/// member/job cannot take down its siblings. Even a panic *payload* whose
/// `Drop` panics again is contained here.
pub fn run_session_guarded(
    config: &RecoveryConfig,
    label: &str,
    source: &mut dyn ProfileSource,
    hooks: SessionHooks,
) -> Result<RecoveryReport, RecoveryError> {
    let SessionHooks {
        cancel,
        mut observer,
    } = hooks;
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut session = config.session(source);
        if let Some(token) = cancel {
            session = session.with_cancel_token(token);
        }
        if let Some(observer) = observer.as_mut() {
            session = session.with_observer(move |event| observer(event));
        }
        session.run_to_completion()
    }));
    match run {
        Ok(result) => result,
        Err(payload) => {
            let message = crate::engine::panic_message(payload.as_ref());
            // A payload whose Drop panics must not unwind out of the
            // worker (it would poison shared locks and abort siblings).
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(payload)));
            Err(RecoveryError::Engine(EngineError::Backend {
                backend: label.to_string(),
                message,
            }))
        }
    }
}

/// Runs N independent recovery sessions — one per [`FleetMember`] —
/// concurrently over a shared thread budget.
///
/// Each member's session runs serially (its engine thread count is forced
/// to 1) so the fleet's worker count bounds total parallelism, and every
/// session is deterministic; results therefore equal N serial sessions run
/// one after another, returned in member order regardless of completion
/// order.
pub struct RecoveryFleet {
    config: RecoveryConfig,
    threads: usize,
}

impl RecoveryFleet {
    /// A fleet over the given per-member configuration.
    pub fn new(config: RecoveryConfig) -> Self {
        RecoveryFleet { config, threads: 0 }
    }

    /// Worker threads (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs every member to completion and returns their reports in
    /// member order.
    pub fn run(&self, members: Vec<FleetMember>) -> Vec<FleetOutcome> {
        // Sessions collect serially inside fleet workers: the fleet's own
        // worker count is the thread budget.
        let mut config = self.config.clone();
        config.engine = EngineOptions::serial();
        let n = members.len();
        let workers = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        }
        .min(n.max(1));

        let queue: Mutex<VecDeque<(usize, FleetMember)>> =
            Mutex::new(members.into_iter().enumerate().collect());
        let slots: Mutex<Vec<Option<FleetOutcome>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // The queue/slots locks recover from poisoning: a
                    // panicking member is surfaced as that member's typed
                    // error (below), never by aborting unrelated members
                    // stuck behind a poisoned mutex.
                    let Some((idx, mut member)) = lock_unpoisoned(&queue).pop_front() else {
                        break;
                    };
                    // A member whose backend panics must not take the rest
                    // of the fleet down: the panic becomes that member's
                    // typed error and the worker moves on.
                    let label = format!("fleet member {:?}", member.label);
                    let result = run_session_guarded(
                        &config,
                        &label,
                        member.source.as_mut(),
                        SessionHooks::default(),
                    );
                    lock_unpoisoned(&slots)[idx] = Some(FleetOutcome {
                        label: member.label,
                        result,
                    });
                });
            }
        });
        slots
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every member was processed"))
            .collect()
    }
}
