//! The unified profiling engine: pluggable DRAM backends and parallel
//! batched collection.
//!
//! BEER's step 1+2 — induce miscorrections and accumulate them into a
//! [`MiscorrectionProfile`] — originally ran against one hard-wired data
//! source (a simulated chip driven serially). The engine generalizes both
//! axes:
//!
//! * **Backends.** A [`ProfileSource`] is anything that can contribute
//!   miscorrection observations: a (simulated or physical) DRAM chip behind
//!   [`beer_dram::DramInterface`] ([`ChipBackend`]), the exact analytic
//!   model of a known code ([`AnalyticBackend`]), an EINSim-style
//!   Monte-Carlo simulation ([`EinsimBackend`]), or a recorded trace
//!   replayed offline ([`crate::trace::ReplayBackend`]). The collection
//!   driver, BEEP's ECC-function input, and the experiment harness all
//!   consume this one trait.
//! * **Parallel batch collection.** A source partitions its work into
//!   *units* — independent, deterministically numbered batches (for a chip:
//!   one retention trial of the refresh-window sweep). [`try_collect_with`]
//!   shards units across worker threads, each accumulating into a local
//!   profile, and merges the shards. Because units are deterministic and
//!   profile merging is commutative counting, the merged profile is
//!   **bit-identical** to a serial run regardless of thread count.
//!   Failures — a worker panic, a replayed trace that cannot serve the
//!   requested patterns — surface as typed [`EngineError`]s;
//!   [`try_collect_traced`] additionally records per-unit traces for
//!   checkpointing. [`crate::recovery::RecoverySession`] is the high-level
//!   driver over all of this.

use crate::collect::{run_collection_trial, validate_patterns, ChipKnowledge, CollectionPlan};
use crate::pattern::ChargedSet;
use crate::profile::MiscorrectionProfile;
use crate::trace::UnitTrace;
use beer_dram::{CellType, DramInterface};
use beer_ecc::{miscorrection, LinearCode};
use beer_einsim::{simulate, ErrorModel, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// A typed error from the collection engine.
///
/// Collection drives external state — worker threads, recorded traces,
/// real hardware — so failures surface as values that the
/// [`crate::recovery`] session routes into its error path instead of
/// aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A parallel collection worker panicked. The shard context names the
    /// units the worker covered (`shard`, `shard + stride`, … up to
    /// `units`).
    WorkerPanicked {
        /// The worker's shard index.
        shard: usize,
        /// The stride between the shard's units (the worker count).
        stride: usize,
        /// Total units in the collection.
        units: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A replayed trace cannot serve a requested pattern — the session
    /// asked for evidence the recording never collected.
    TraceMissingPattern {
        /// Display form of the missing pattern.
        pattern: String,
        /// Number of patterns the trace does contain.
        recorded: usize,
    },
    /// A backend-specific failure serving the collection.
    Backend {
        /// The backend's [`ProfileSource::label`].
        backend: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanicked {
                shard,
                stride,
                units,
                message,
            } => {
                // Name only units the shard actually covers.
                if shard + stride < *units {
                    write!(
                        f,
                        "collection worker {shard} panicked covering units \
                         {shard}, {}, … of {units}: {message}",
                        shard + stride
                    )
                } else {
                    write!(
                        f,
                        "collection worker {shard} panicked covering unit \
                         {shard} of {units}: {message}"
                    )
                }
            }
            EngineError::TraceMissingPattern { pattern, recorded } => write!(
                f,
                "replay trace lacks pattern {pattern} (the recording covers \
                 {recorded} patterns); the trace cannot serve this schedule"
            ),
            EngineError::Backend { backend, message } => {
                write!(f, "{backend} backend failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A source of miscorrection observations (see the module docs).
///
/// Implementations split their work into `num_units` independent units and
/// must guarantee that `run_unit(u)` records the same observations no
/// matter which worker executes it or in which order — the contract that
/// makes parallel collection deterministic.
pub trait ProfileSource {
    /// Dataword length of the source.
    fn k(&self) -> usize;

    /// Human-readable backend name for reports and logs.
    fn label(&self) -> String;

    /// Number of independent work units for this pattern set and plan.
    fn num_units(&self, patterns: &[ChargedSet], plan: &CollectionPlan) -> usize;

    /// Executes unit `unit`, accumulating observations into `profile`
    /// (which is always created over exactly `patterns`).
    ///
    /// # Errors
    ///
    /// Backends over external state (recorded traces, hardware) report
    /// failures as [`EngineError`]s; in-memory backends are infallible.
    fn run_unit(
        &mut self,
        unit: usize,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError>;

    /// An independent handle for a parallel worker, if the source supports
    /// one. Returning `None` (the default) makes [`collect_with`] fall back
    /// to serial collection.
    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        None
    }

    /// Notifies the source that a collection over `patterns` is about to
    /// start — called once per collection, on the primary source, before
    /// any forking. Sources with sampling state re-synchronize it here
    /// (e.g. a chip driven directly between collections has consumed trial
    /// indices the backend hasn't seen); sources backed by recordings
    /// validate that they can serve `patterns` at all. Default: no-op.
    fn begin_collection(
        &mut self,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
    ) -> Result<(), EngineError> {
        Ok(())
    }

    /// Notifies the source that a collection of `units` units finished —
    /// called once per collection, on the primary source only. Sources
    /// with sampling state advance it here so the *next* collection draws
    /// independent samples instead of replaying this one's stream.
    /// Default: no-op (stateless backends).
    fn finish_collection(&mut self, _units: usize) {}

    /// Cumulative *simulated* DRAM nanoseconds this source has executed, if
    /// it models time at all. This is a meter of work already performed —
    /// never a side-effect-free cost query — so reading it cannot disagree
    /// with execution. Timed backends (see `TimedChipBackend`) share one
    /// meter across forks; untimed backends return `None` (the default).
    fn sim_elapsed_ns(&self) -> Option<u64> {
        None
    }
}

/// Execution options for [`collect_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineOptions {
    /// Worker threads: `0` uses the machine's available parallelism.
    pub threads: usize,
}

impl EngineOptions {
    /// Single-threaded collection.
    pub fn serial() -> Self {
        EngineOptions { threads: 1 }
    }

    /// Collection with exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        EngineOptions { threads }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Optional stop predicate checked between units (deadline/cancellation).
pub(crate) type InterruptFn<'a> = dyn Fn() -> bool + Sync + 'a;

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Everything one collection run produced.
pub(crate) struct Collected {
    /// The merged profile (bit-identical to a serial run).
    pub profile: MiscorrectionProfile,
    /// Per-unit traces in unit order (empty unless recording was asked
    /// for, or the run was interrupted — an interrupted recording is
    /// incomplete and therefore discarded).
    pub units: Vec<UnitTrace>,
    /// True if the interrupt predicate stopped the run before every unit
    /// executed; the partial profile must then be discarded by the caller
    /// (which units completed depends on worker scheduling).
    pub interrupted: bool,
}

/// The collection-wide parameters every shard shares.
struct ShardJob<'a> {
    patterns: &'a [ChargedSet],
    plan: &'a CollectionPlan,
    k: usize,
    units: usize,
    record_units: bool,
    interrupt: Option<&'a InterruptFn<'a>>,
}

/// One shard's yield: its local profile, recorded unit traces, and
/// whether the interrupt predicate stopped it early.
type ShardYield = (MiscorrectionProfile, Vec<(usize, UnitTrace)>, bool);

/// One worker's share of a collection: units `shard`, `shard + stride`, …
fn run_shard(
    worker: &mut dyn ProfileSource,
    shard: usize,
    stride: usize,
    job: &ShardJob<'_>,
) -> Result<ShardYield, EngineError> {
    let mut local = MiscorrectionProfile::new(job.k, job.patterns.to_vec());
    let mut traces: Vec<(usize, UnitTrace)> = Vec::new();
    for unit in (shard..job.units).step_by(stride.max(1)) {
        if job.interrupt.is_some_and(|stop| stop()) {
            return Ok((local, traces, true));
        }
        if job.record_units {
            let mut scratch = MiscorrectionProfile::new(job.k, job.patterns.to_vec());
            worker.run_unit(unit, job.patterns, job.plan, &mut scratch)?;
            traces.push((unit, UnitTrace::from_profile(&scratch)));
            local.merge(&scratch);
        } else {
            worker.run_unit(unit, job.patterns, job.plan, &mut local)?;
        }
    }
    Ok((local, traces, false))
}

/// The collection driver behind every public entry point: shards units
/// across threads when the source forks, optionally records per-unit
/// traces, and honors an interrupt predicate between units.
pub(crate) fn collect_inner(
    source: &mut dyn ProfileSource,
    patterns: &[ChargedSet],
    plan: &CollectionPlan,
    options: &EngineOptions,
    record_units: bool,
    interrupt: Option<&InterruptFn>,
) -> Result<Collected, EngineError> {
    let k = validate_patterns(patterns);
    assert_eq!(
        k,
        source.k(),
        "pattern length does not match the source's dataword size"
    );
    source.begin_collection(patterns, plan)?;
    let units = source.num_units(patterns, plan);
    let mut profile = MiscorrectionProfile::new(k, patterns.to_vec());
    let threads = options.effective_threads().min(units.max(1));
    let job = ShardJob {
        patterns,
        plan,
        k,
        units,
        record_units,
        interrupt,
    };

    // Every worker (including the first) runs on a fork so the shards are
    // fully independent; a single-thread request or a source that cannot
    // fork takes the serial path.
    let workers: Option<Vec<Box<dyn ProfileSource + Send>>> = if threads > 1 {
        (0..threads).map(|_| source.fork()).collect()
    } else {
        None
    };
    let (shards, interrupted) = match workers {
        Some(workers) => {
            let job = &job;
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = workers
                    .into_iter()
                    .enumerate()
                    .map(|(w, mut worker)| {
                        scope.spawn(move || run_shard(worker.as_mut(), w, threads, job))
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(w, h)| {
                        h.join().unwrap_or_else(|payload| {
                            Err(EngineError::WorkerPanicked {
                                shard: w,
                                stride: threads,
                                units,
                                message: panic_message(payload.as_ref()),
                            })
                        })
                    })
                    .collect::<Vec<_>>()
            });
            // Shards merge in worker order, so the outcome (success or
            // the first error by shard index) is deterministic.
            let mut shards = Vec::with_capacity(results.len());
            let mut interrupted = false;
            for result in results {
                let (shard, traces, stopped) = result?;
                interrupted |= stopped;
                shards.push((shard, traces));
            }
            (shards, interrupted)
        }
        None => {
            let (shard, traces, stopped) = run_shard(source, 0, 1, &job)?;
            (vec![(shard, traces)], stopped)
        }
    };

    let mut unit_traces: Vec<(usize, UnitTrace)> = Vec::new();
    for (shard, traces) in shards {
        profile.merge(&shard);
        unit_traces.extend(traces);
    }
    unit_traces.sort_by_key(|&(unit, _)| unit);
    source.finish_collection(units);
    Ok(Collected {
        profile,
        // An interrupted recording is missing units — never expose it.
        units: if interrupted {
            Vec::new()
        } else {
            unit_traces.into_iter().map(|(_, t)| t).collect()
        },
        interrupted,
    })
}

/// Collects a miscorrection profile from any backend, sharding work units
/// across threads when the source supports forking.
///
/// The result is bit-identical to a serial run for every thread count.
///
/// # Errors
///
/// Returns an [`EngineError`] if a parallel worker panics or the backend
/// cannot serve the request (e.g. a replayed trace lacks a requested
/// pattern).
///
/// # Panics
///
/// Panics if `patterns` is empty, their dataword lengths differ, or they
/// disagree with `source.k()`.
pub fn try_collect_with(
    source: &mut dyn ProfileSource,
    patterns: &[ChargedSet],
    plan: &CollectionPlan,
    options: &EngineOptions,
) -> Result<MiscorrectionProfile, EngineError> {
    collect_inner(source, patterns, plan, options, false, None).map(|c| c.profile)
}

/// Collects a profile *and* its per-unit [`UnitTrace`]s, so the run can be
/// checkpointed into a [`crate::trace::ProfileTrace`] and replayed later.
/// Parallelizes like [`try_collect_with`]; the traces come back in unit
/// order regardless of scheduling.
///
/// # Errors
///
/// The same conditions as [`try_collect_with`].
///
/// # Panics
///
/// The same conditions as [`try_collect_with`].
pub fn try_collect_traced(
    source: &mut dyn ProfileSource,
    patterns: &[ChargedSet],
    plan: &CollectionPlan,
    options: &EngineOptions,
) -> Result<(MiscorrectionProfile, Vec<UnitTrace>), EngineError> {
    collect_inner(source, patterns, plan, options, true, None).map(|c| (c.profile, c.units))
}

/// The panicking form of [`try_collect_with`] — the original low-level
/// entry point, kept for direct engine experiments. New code should prefer
/// [`crate::recovery::RecoverySession`], which drives collection and
/// solving end to end with typed errors.
///
/// # Panics
///
/// Panics under the error conditions of [`try_collect_with`], in addition
/// to its panic conditions.
pub fn collect_with(
    source: &mut dyn ProfileSource,
    patterns: &[ChargedSet],
    plan: &CollectionPlan,
    options: &EngineOptions,
) -> MiscorrectionProfile {
    try_collect_with(source, patterns, plan, options)
        .unwrap_or_else(|e| panic!("collection failed: {e}"))
}

// ---------------------------------------------------------------------------
// Chip backend
// ---------------------------------------------------------------------------

/// A [`ProfileSource`] driving a DRAM chip through
/// [`beer_dram::DramInterface`] — the §5.1 experimental methodology. One
/// unit is one retention trial of the plan's refresh-window sweep.
///
/// Forking requires the chip to support [`DramInterface::fork`] (simulated
/// chips do; physical chips run serially).
pub struct ChipBackend {
    chip: Box<dyn DramInterface + Send>,
    knowledge: ChipKnowledge,
    /// Trial-counter offset of the *next* collection: every unit seeks
    /// `trial_base + unit`, and `finish_collection` advances the base so
    /// successive collections draw independent transient-noise samples.
    trial_base: u64,
}

impl ChipBackend {
    /// Wraps a chip and the experimenter's knowledge about it, resuming
    /// the noise stream from the chip's current trial counter.
    pub fn new(chip: Box<dyn DramInterface + Send>, knowledge: ChipKnowledge) -> Self {
        let trial_base = chip.trial_counter();
        ChipBackend {
            chip,
            knowledge,
            trial_base,
        }
    }

    /// The wrapped chip (e.g. to continue driving it after collection).
    pub fn chip_mut(&mut self) -> &mut dyn DramInterface {
        self.chip.as_mut()
    }

    /// The experimenter's knowledge.
    pub fn knowledge(&self) -> &ChipKnowledge {
        &self.knowledge
    }
}

impl ProfileSource for ChipBackend {
    fn k(&self) -> usize {
        self.knowledge.word_layout.word_bytes() * 8
    }

    fn label(&self) -> String {
        "chip".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], plan: &CollectionPlan) -> usize {
        plan.num_trials()
    }

    fn run_unit(
        &mut self,
        unit: usize,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.chip.set_temperature(plan.celsius);
        run_collection_trial(
            self.chip.as_mut(),
            &self.knowledge,
            patterns,
            plan,
            unit,
            self.trial_base,
            profile,
        );
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        let chip = self.chip.fork()?;
        Some(Box::new(ChipBackend {
            chip,
            knowledge: self.knowledge.clone(),
            trial_base: self.trial_base,
        }))
    }

    fn begin_collection(
        &mut self,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
    ) -> Result<(), EngineError> {
        // The chip may have been driven directly since the last collection
        // (its counter advanced past our base); resume from wherever the
        // noise stream actually is.
        self.trial_base = self.trial_base.max(self.chip.trial_counter());
        Ok(())
    }

    fn finish_collection(&mut self, units: usize) {
        self.trial_base += units as u64;
        // Keep the wrapped chip's own counter in step, so interleaving
        // engine collections with direct chip driving stays independent.
        self.chip.seek_trial(self.trial_base);
    }
}

// ---------------------------------------------------------------------------
// Analytic backend
// ---------------------------------------------------------------------------

/// A [`ProfileSource`] computing the exact profile of a *known* code with
/// the closed-form observable-miscorrection predicate — the simulation
/// methodology of §6.1. One unit is one pattern.
///
/// Each possible miscorrection is recorded `emphasis` times so the
/// resulting counts clear any reasonable [`crate::profile::ThresholdFilter`].
#[derive(Clone)]
pub struct AnalyticBackend {
    code: LinearCode,
    emphasis: u64,
}

impl AnalyticBackend {
    /// A backend for the given code.
    pub fn new(code: LinearCode) -> Self {
        AnalyticBackend { code, emphasis: 8 }
    }

    /// Overrides how many observations each possible miscorrection records.
    pub fn with_emphasis(mut self, emphasis: u64) -> Self {
        assert!(emphasis > 0, "emphasis must be positive");
        self.emphasis = emphasis;
        self
    }

    /// The underlying code.
    pub fn code(&self) -> &LinearCode {
        &self.code
    }
}

impl ProfileSource for AnalyticBackend {
    fn k(&self) -> usize {
        self.code.k()
    }

    fn label(&self) -> String {
        "analytic".to_string()
    }

    fn num_units(&self, patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        patterns.len()
    }

    fn run_unit(
        &mut self,
        unit: usize,
        patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        let pattern = &patterns[unit];
        for j in 0..self.code.k() {
            if !pattern.is_charged(j)
                && miscorrection::miscorrection_possible_at(&self.code, pattern.bits(), j)
            {
                profile.record_miscorrections(unit, j, self.emphasis);
            }
        }
        profile.record_trials(unit, self.emphasis);
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        Some(Box::new(self.clone()))
    }
}

// ---------------------------------------------------------------------------
// EINSim backend
// ---------------------------------------------------------------------------

/// A [`ProfileSource`] running EINSim-style Monte-Carlo simulation of a
/// known code under the §3.2 retention error model — the §5.1.3
/// cross-check methodology. One unit is one pattern, simulated across a
/// sweep of raw bit error rates.
///
/// Each unit's RNG is seeded from `(seed, unit, ber index)` only, so the
/// observations are deterministic under any work sharding.
#[derive(Clone)]
pub struct EinsimBackend {
    code: LinearCode,
    words_per_ber: u64,
    bers: Vec<f64>,
    seed: u64,
}

impl EinsimBackend {
    /// A backend simulating `words_per_ber` words per pattern at each of
    /// the default raw-BER sweep points (mirroring
    /// [`CollectionPlan::quick`]'s targets).
    pub fn new(code: LinearCode, words_per_ber: u64, seed: u64) -> Self {
        EinsimBackend {
            code,
            words_per_ber,
            bers: vec![0.1, 0.25, 0.4, 0.499],
            seed,
        }
    }

    /// Overrides the raw-BER sweep.
    ///
    /// # Panics
    ///
    /// Panics if `bers` is empty.
    pub fn with_bers(mut self, bers: Vec<f64>) -> Self {
        assert!(!bers.is_empty(), "need at least one BER point");
        self.bers = bers;
        self
    }

    /// The underlying code.
    pub fn code(&self) -> &LinearCode {
        &self.code
    }
}

impl ProfileSource for EinsimBackend {
    fn k(&self) -> usize {
        self.code.k()
    }

    fn label(&self) -> String {
        "einsim".to_string()
    }

    fn num_units(&self, patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
        patterns.len()
    }

    fn run_unit(
        &mut self,
        unit: usize,
        patterns: &[ChargedSet],
        _plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        let pattern = &patterns[unit];
        let data = pattern.to_dataword(CellType::True);
        for (bi, &ber) in self.bers.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(
                self.seed
                    ^ (unit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (bi as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            let cfg = SimConfig {
                words: self.words_per_ber,
                model: ErrorModel::Retention { ber },
            };
            let stats = simulate(&self.code, &data, &cfg, &mut rng);
            for j in 0..self.code.k() {
                if pattern.is_charged(j) {
                    continue;
                }
                // A decoder flip at an error-free DISCHARGED data bit is an
                // observable miscorrection — identical semantics to the
                // chip experiment's post-correction comparison.
                profile.record_miscorrections(unit, j, stats.miscorrections[j]);
            }
            profile.record_trials(unit, self.words_per_ber);
        }
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::PatternSet;
    use crate::profile::ThresholdFilter;
    use beer_dram::{ChipConfig, Geometry, SimChip};

    fn small_chip_backend(seed: u64) -> (ChipBackend, LinearCode) {
        let chip = SimChip::new(
            ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 128, 128)),
        );
        let secret = chip.reveal_code().clone();
        let knowledge = ChipKnowledge::uniform(
            chip.config().word_layout,
            CellType::True,
            chip.geometry().total_rows(),
        );
        (ChipBackend::new(Box::new(chip), knowledge), secret)
    }

    #[test]
    fn chip_backend_matches_legacy_collect_profile() {
        let patterns = PatternSet::One.patterns(32);
        let plan = CollectionPlan::quick();

        let legacy = {
            let mut chip = SimChip::new(
                ChipConfig::small_test_chip(91).with_geometry(Geometry::new(1, 128, 128)),
            );
            let knowledge = ChipKnowledge::uniform(
                chip.config().word_layout,
                CellType::True,
                chip.geometry().total_rows(),
            );
            crate::collect::collect_profile(&mut chip, &knowledge, &patterns, &plan)
        };
        let (mut backend, _) = small_chip_backend(91);
        let engine = collect_with(&mut backend, &patterns, &plan, &EngineOptions::serial());

        for pi in 0..patterns.len() {
            assert_eq!(legacy.trials(pi), engine.trials(pi));
            for j in 0..32 {
                assert_eq!(legacy.count(pi, j), engine.count(pi, j), "({pi}, {j})");
            }
        }
    }

    #[test]
    fn analytic_backend_reproduces_analytic_profile() {
        let (_, code) = small_chip_backend(92);
        let patterns = PatternSet::One.patterns(code.k());
        let mut backend = AnalyticBackend::new(code.clone());
        let profile = collect_with(
            &mut backend,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        assert_eq!(
            profile.to_constraints(&ThresholdFilter::default()),
            analytic_profile(&code, &patterns)
        );
    }

    #[test]
    fn analytic_backend_supports_high_order_pattern_families() {
        // RANDOM-t (beyond the subset-search range), CHECKERED, and
        // ALL-charged all flow through the engine: the analytic predicate
        // switches to its GF(2) span check for large orders.
        let (_, code) = small_chip_backend(95);
        let k = code.k();
        let mut patterns = PatternSet::RandomT {
            t: k - 2,
            count: 4,
            seed: 3,
        }
        .patterns(k);
        patterns.extend(PatternSet::Checkered.patterns(k));
        patterns.extend(PatternSet::All.patterns(k));
        let mut backend = AnalyticBackend::new(code.clone());
        let profile = collect_with(
            &mut backend,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        assert_eq!(
            profile.to_constraints(&ThresholdFilter::default()),
            analytic_profile(&code, &patterns)
        );
        // The ALL-charged pattern has no discharged bit to observe.
        let all_idx = patterns.len() - 1;
        assert!((0..k).all(|j| profile.count(all_idx, j) == 0));
    }

    #[test]
    fn einsim_backend_observes_only_possible_miscorrections() {
        let (_, code) = small_chip_backend(93);
        let patterns = PatternSet::One.patterns(code.k());
        let mut backend = EinsimBackend::new(code.clone(), 2000, 7);
        let profile = collect_with(
            &mut backend,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::serial(),
        );
        let truth = analytic_profile(&code, &patterns);
        for (pi, (pattern, obs)) in truth.entries.iter().enumerate() {
            for (j, &o) in obs.iter().enumerate() {
                if profile.count(pi, j) > 0 {
                    assert_eq!(
                        o,
                        crate::profile::Observation::Miscorrection,
                        "impossible observation at {pattern} bit {j}"
                    );
                }
            }
        }
    }

    /// A backend whose forks blow up on one specific unit.
    #[derive(Clone)]
    struct PanickyBackend;

    impl ProfileSource for PanickyBackend {
        fn k(&self) -> usize {
            4
        }

        fn label(&self) -> String {
            "panicky".to_string()
        }

        fn num_units(&self, _patterns: &[ChargedSet], _plan: &CollectionPlan) -> usize {
            4
        }

        fn run_unit(
            &mut self,
            unit: usize,
            _patterns: &[ChargedSet],
            _plan: &CollectionPlan,
            profile: &mut MiscorrectionProfile,
        ) -> Result<(), EngineError> {
            if unit == 2 {
                panic!("injected failure");
            }
            profile.record_trials(0, 1);
            Ok(())
        }

        fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
            Some(Box::new(self.clone()))
        }
    }

    #[test]
    fn worker_panic_is_a_typed_error_with_shard_context() {
        let patterns = vec![ChargedSet::new(vec![0], 4)];
        let err = crate::engine::try_collect_with(
            &mut PanickyBackend,
            &patterns,
            &CollectionPlan::quick(),
            &EngineOptions::with_threads(2),
        )
        .expect_err("the shard covering unit 2 panics");
        match &err {
            EngineError::WorkerPanicked {
                shard,
                stride,
                units,
                message,
            } => {
                assert_eq!(*shard, 0, "unit 2 belongs to shard 0 under stride 2");
                assert_eq!(*stride, 2);
                assert_eq!(*units, 4);
                assert_eq!(message, "injected failure");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        let display = err.to_string();
        assert!(display.contains("worker 0"), "got {display}");
        assert!(display.contains("units 0, 2"), "got {display}");

        // A shard covering a single unit must not name nonexistent units.
        let single = EngineError::WorkerPanicked {
            shard: 1,
            stride: 2,
            units: 2,
            message: "boom".to_string(),
        };
        let display = single.to_string();
        assert!(display.contains("unit 1 of 2"), "got {display}");
        assert!(!display.contains("3"), "got {display}");
    }

    #[test]
    fn parallel_equals_serial_for_every_backend() {
        let patterns = PatternSet::One.patterns(32);
        let plan = CollectionPlan::quick();
        let run = |backend: &mut dyn ProfileSource, threads: usize| {
            collect_with(
                backend,
                &patterns,
                &plan,
                &EngineOptions::with_threads(threads),
            )
        };

        let (mut chips, code) = small_chip_backend(94);
        let serial = run(&mut chips, 1);
        let (mut chipp, _) = small_chip_backend(94);
        let parallel = run(&mut chipp, 4);
        for pi in 0..patterns.len() {
            assert_eq!(serial.trials(pi), parallel.trials(pi));
            for j in 0..32 {
                assert_eq!(serial.count(pi, j), parallel.count(pi, j));
            }
        }

        for backend in [
            &mut AnalyticBackend::new(code.clone()) as &mut dyn ProfileSource,
            &mut EinsimBackend::new(code, 500, 11),
        ] {
            let serial = run(backend, 1);
            let parallel = run(backend, 3);
            for pi in 0..patterns.len() {
                for j in 0..32 {
                    assert_eq!(serial.count(pi, j), parallel.count(pi, j));
                }
            }
        }
    }
}
