//! The timed chip backend: §5.1 profiling with its DRAM cost executed,
//! not estimated.
//!
//! [`TimedChipBackend`] wraps any [`beer_dram::DramInterface`] exactly
//! like [`crate::engine::ChipBackend`] — same unit sharding, same trial
//! discipline, bit-identical collected facts — but drives every retention
//! trial through a cycle-accurate `beer_timing::MemController`: program
//! sweep, refresh-paused decay, readback sweep. Two consequences:
//!
//! * The refresh window a trial's error profile sees is the **emergent**
//!   one — the simulated time the command stream actually spent with
//!   refresh paused (cycle-quantized) — so a round's facts and its
//!   simulated nanoseconds come from the same execution.
//! * The backend meters cumulative simulated time
//!   ([`crate::engine::ProfileSource::sim_elapsed_ns`]), which recovery
//!   sessions thread onto `RecoveryEvent::CheckCompleted`,
//!   `RecoveryStats::dram_sim_ns`, and `SolveReport::sim_ns`.
//!
//! [`TimedCostModel`] prices a collection round for
//! [`crate::recovery::PatternSchedule::cost_aware`] by executing the same
//! streams on a scratch controller — the estimate and the meter cannot
//! disagree (`estimator_matches_meter` below holds exactly).

use crate::collect::{run_collection_trial_windowed, ChipKnowledge, CollectionPlan};
use crate::engine::{EngineError, ProfileSource};
use crate::pattern::ChargedSet;
use crate::profile::MiscorrectionProfile;
use crate::recovery::ScheduleCostModel;
use beer_dram::DramInterface;
use beer_timing::{execute_trial, plan_cost_ns, ArrayGeometry, MemController, TimingParams};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A [`ProfileSource`] running the §5.1 methodology through a
/// cycle-accurate memory controller (see the module docs).
///
/// Forking shares one simulated-time meter across workers, and each unit
/// executes on a *fresh* controller from power-up state, so a unit's
/// simulated cost is independent of scheduling order — parallel collection
/// accrues exactly the serial total.
pub struct TimedChipBackend {
    chip: Box<dyn DramInterface + Send>,
    knowledge: ChipKnowledge,
    /// Trial-counter offset of the *next* collection; mirrors
    /// [`crate::engine::ChipBackend`]'s discipline exactly so the two
    /// backends draw identical noise streams.
    trial_base: u64,
    params: TimingParams,
    geom: ArrayGeometry,
    /// Cumulative simulated nanoseconds, shared across forks.
    sim_ns: Arc<AtomicU64>,
}

impl TimedChipBackend {
    /// Wraps a chip under the default DDR4-3200 speed bin.
    pub fn new(chip: Box<dyn DramInterface + Send>, knowledge: ChipKnowledge) -> Self {
        TimedChipBackend::with_params(chip, knowledge, TimingParams::ddr4_3200())
    }

    /// Wraps a chip under an explicit speed bin.
    pub fn with_params(
        chip: Box<dyn DramInterface + Send>,
        knowledge: ChipKnowledge,
        params: TimingParams,
    ) -> Self {
        params.validate();
        let trial_base = chip.trial_counter();
        let geom = ArrayGeometry::of_chip(&chip.geometry());
        TimedChipBackend {
            chip,
            knowledge,
            trial_base,
            params,
            geom,
            sim_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The wrapped chip (e.g. to continue driving it after collection).
    pub fn chip_mut(&mut self) -> &mut dyn DramInterface {
        self.chip.as_mut()
    }

    /// The experimenter's knowledge.
    pub fn knowledge(&self) -> &ChipKnowledge {
        &self.knowledge
    }

    /// The speed bin trials execute under.
    pub fn params(&self) -> &TimingParams {
        &self.params
    }

    /// The array shape trials sweep.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geom
    }

    /// A cost model pricing rounds with this backend's speed bin and
    /// geometry — pass to [`crate::recovery::PatternSchedule::cost_aware`].
    pub fn cost_model(&self) -> TimedCostModel {
        TimedCostModel::new(self.params, self.geom)
    }
}

impl ProfileSource for TimedChipBackend {
    fn k(&self) -> usize {
        self.knowledge.word_layout.word_bytes() * 8
    }

    fn label(&self) -> String {
        "timed-chip".to_string()
    }

    fn num_units(&self, _patterns: &[ChargedSet], plan: &CollectionPlan) -> usize {
        plan.num_trials()
    }

    fn run_unit(
        &mut self,
        unit: usize,
        patterns: &[ChargedSet],
        plan: &CollectionPlan,
        profile: &mut MiscorrectionProfile,
    ) -> Result<(), EngineError> {
        self.chip.set_temperature(plan.celsius);
        let trefw = plan.trefw_schedule[unit / plan.trials_per_step];
        // A fresh controller per unit: the unit's simulated cost depends
        // only on (params, geometry, window), never on which worker ran
        // the units before it.
        let mut ctrl = MemController::new(self.params, self.geom.banks);
        let cost =
            execute_trial(&mut ctrl, &self.geom, trefw).map_err(|e| EngineError::Backend {
                backend: self.label(),
                message: e.to_string(),
            })?;
        run_collection_trial_windowed(
            self.chip.as_mut(),
            &self.knowledge,
            patterns,
            cost.window_seconds,
            unit,
            self.trial_base,
            profile,
        );
        self.sim_ns.fetch_add(cost.total_ns(), Ordering::Relaxed);
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn ProfileSource + Send>> {
        let chip = self.chip.fork()?;
        Some(Box::new(TimedChipBackend {
            chip,
            knowledge: self.knowledge.clone(),
            trial_base: self.trial_base,
            params: self.params,
            geom: self.geom,
            sim_ns: Arc::clone(&self.sim_ns),
        }))
    }

    fn begin_collection(
        &mut self,
        _patterns: &[ChargedSet],
        _plan: &CollectionPlan,
    ) -> Result<(), EngineError> {
        // Mirrors ChipBackend: resume from wherever the chip's noise
        // stream actually is.
        self.trial_base = self.trial_base.max(self.chip.trial_counter());
        Ok(())
    }

    fn finish_collection(&mut self, units: usize) {
        self.trial_base += units as u64;
        self.chip.seek_trial(self.trial_base);
    }

    fn sim_elapsed_ns(&self) -> Option<u64> {
        Some(self.sim_ns.load(Ordering::Relaxed))
    }
}

/// A [`ScheduleCostModel`] pricing collection rounds by executing the
/// plan's trial streams on scratch `beer_timing` controllers.
///
/// Because [`TimedChipBackend`] runs every unit on a fresh controller with
/// the same parameters, this model's per-round figure equals the meter's
/// accrual for that round *exactly* — not approximately.
#[derive(Clone, Copy, Debug)]
pub struct TimedCostModel {
    params: TimingParams,
    geom: ArrayGeometry,
}

impl TimedCostModel {
    /// A model over an explicit speed bin and array shape.
    pub fn new(params: TimingParams, geom: ArrayGeometry) -> Self {
        TimedCostModel { params, geom }
    }

    /// A model for a chip's geometry.
    pub fn for_chip(params: TimingParams, geometry: &beer_dram::Geometry) -> Self {
        TimedCostModel::new(params, ArrayGeometry::of_chip(geometry))
    }
}

impl ScheduleCostModel for TimedCostModel {
    fn round_sim_ns(&self, plan: &CollectionPlan) -> u64 {
        plan_cost_ns(
            &self.params,
            &self.geom,
            &plan.trefw_schedule,
            plan.trials_per_step,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{collect_with, ChipBackend, EngineOptions};
    use crate::pattern::PatternSet;
    use beer_dram::{CellType, ChipConfig, Geometry, SimChip};

    fn chip(seed: u64) -> SimChip {
        SimChip::new(ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 128, 128)))
    }

    fn knowledge_for(chip: &SimChip) -> ChipKnowledge {
        ChipKnowledge::uniform(
            chip.config().word_layout,
            CellType::True,
            chip.geometry().total_rows(),
        )
    }

    /// Raw per-(pattern, bit) counts plus per-pattern trials — the full
    /// observable content of a profile, for bit-identity assertions.
    fn raw_counts(profile: &MiscorrectionProfile, patterns: usize, k: usize) -> Vec<Vec<u64>> {
        (0..patterns)
            .map(|pi| {
                let mut row: Vec<u64> = (0..k).map(|j| profile.count(pi, j)).collect();
                row.push(profile.trials(pi));
                row
            })
            .collect()
    }

    #[test]
    fn timed_profile_matches_untimed_backend() {
        let knowledge = knowledge_for(&chip(91));
        let patterns = PatternSet::One.patterns(32);
        let plan = CollectionPlan::quick();

        let mut plain = ChipBackend::new(Box::new(chip(91)), knowledge.clone());
        let mut timed = TimedChipBackend::new(Box::new(chip(91)), knowledge);
        let a = collect_with(&mut plain, &patterns, &plan, &EngineOptions::serial());
        let b = collect_with(&mut timed, &patterns, &plan, &EngineOptions::serial());
        assert_eq!(
            raw_counts(&a, patterns.len(), 32),
            raw_counts(&b, patterns.len(), 32),
            "timing must change cost, never facts"
        );
        assert!(timed.sim_elapsed_ns().unwrap() > 0);
    }

    #[test]
    fn estimator_matches_meter_exactly() {
        let c = chip(92);
        let knowledge = knowledge_for(&c);
        let patterns = PatternSet::Checkered.patterns(32);
        let plan = CollectionPlan::quick();

        let mut timed = TimedChipBackend::new(Box::new(c), knowledge);
        let estimated = timed.cost_model().round_sim_ns(&plan);
        collect_with(&mut timed, &patterns, &plan, &EngineOptions::serial());
        assert_eq!(timed.sim_elapsed_ns().unwrap(), estimated);
    }

    #[test]
    fn parallel_collection_accrues_serial_sim_time() {
        let knowledge = knowledge_for(&chip(93));
        let patterns = PatternSet::One.patterns(32);
        let plan = CollectionPlan::quick();

        let mut serial = TimedChipBackend::new(Box::new(chip(93)), knowledge.clone());
        let mut parallel = TimedChipBackend::new(Box::new(chip(93)), knowledge);
        let a = collect_with(&mut serial, &patterns, &plan, &EngineOptions::serial());
        let b = collect_with(
            &mut parallel,
            &patterns,
            &plan,
            &EngineOptions::with_threads(4),
        );
        assert_eq!(
            raw_counts(&a, patterns.len(), 32),
            raw_counts(&b, patterns.len(), 32)
        );
        assert_eq!(serial.sim_elapsed_ns(), parallel.sim_elapsed_ns());
    }
}
