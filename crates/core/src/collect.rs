//! Experimental miscorrection-profile collection (paper §5.1).
//!
//! Drives any [`DramInterface`]: programs every ECC word with a test
//! pattern (an equal share of words per pattern, rotated across trials so
//! each pattern samples many different words), pauses refresh across a
//! sweep of windows, and records every unambiguous miscorrection — a
//! post-correction error at a DISCHARGED data bit.

use crate::layout_probe;
use crate::pattern::ChargedSet;
use crate::profile::MiscorrectionProfile;
use beer_dram::{CellType, DramInterface, WordLayout};
use beer_gf2::BitVec;

/// What the experimenter knows about a chip before profiling: the dataword
/// layout and the per-row cell types — either assumed from prior knowledge
/// or reverse engineered with [`layout_probe`].
#[derive(Clone, Debug)]
pub struct ChipKnowledge {
    /// Dataword-to-address mapping.
    pub word_layout: WordLayout,
    /// Cell type of each global row.
    pub row_cell_types: Vec<CellType>,
}

impl ChipKnowledge {
    /// Knowledge for a chip with a uniform cell type.
    pub fn uniform(word_layout: WordLayout, cell_type: CellType, total_rows: usize) -> Self {
        ChipKnowledge {
            word_layout,
            row_cell_types: vec![cell_type; total_rows],
        }
    }

    /// Acquires the knowledge experimentally: runs the §5.1.1 cell-layout
    /// probe and the §5.1.2 word-layout probe.
    ///
    /// Returns `None` if the word-layout probe cannot decide between the
    /// candidate layouts (see [`layout_probe::probe_word_layout`]).
    pub fn probe(
        chip: &mut dyn DramInterface,
        word_bytes: usize,
        probe_trefw: f64,
    ) -> Option<Self> {
        let row_cell_types = layout_probe::probe_cell_layout(chip, probe_trefw);
        let candidates = [
            WordLayout::InterleavedPairs { word_bytes },
            WordLayout::Contiguous { word_bytes },
        ];
        let report =
            layout_probe::probe_word_layout(chip, &row_cell_types, &candidates, probe_trefw);
        report.decided().map(|word_layout| ChipKnowledge {
            word_layout,
            row_cell_types,
        })
    }

    /// Number of datawords on the chip.
    pub fn num_words(&self, chip: &dyn DramInterface) -> usize {
        chip.geometry().total_bytes() / self.word_layout.word_bytes()
    }

    /// Cell type of every cell in a word (words do not straddle rows).
    pub fn cell_type_of_word(&self, chip: &dyn DramInterface, word: usize) -> CellType {
        let addr = self.word_layout.addr_of(word, 0);
        self.row_cell_types[chip.geometry().row_of_addr(addr)]
    }
}

/// The refresh-window sweep of a collection run.
#[derive(Clone, Debug)]
pub struct CollectionPlan {
    /// Refresh windows to test, in seconds.
    pub trefw_schedule: Vec<f64>,
    /// Ambient temperature for the whole run.
    pub celsius: f64,
    /// Pattern-assignment rotations per refresh window (each trial
    /// re-programs the chip with patterns shifted to different words).
    pub trials_per_step: usize,
}

impl Default for CollectionPlan {
    /// The simulation-scale sweep ([`CollectionPlan::quick`]).
    fn default() -> Self {
        CollectionPlan::quick()
    }
}

impl CollectionPlan {
    /// Total retention trials in the plan (refresh windows × trials each)
    /// — the number of independent work units the engine can shard.
    pub fn num_trials(&self) -> usize {
        self.trefw_schedule.len() * self.trials_per_step
    }

    /// The paper's §5.1.3 sweep: 2 to 22 minutes in 1-minute steps at
    /// 80 °C.
    pub fn paper_sweep() -> Self {
        CollectionPlan {
            trefw_schedule: crate::runtime::paper_sweep_schedule(),
            celsius: 80.0,
            trials_per_step: 1,
        }
    }

    /// A sweep for simulation-scale experiments, targeting raw BERs from
    /// 10⁻³ up to 0.5 at 80 °C under the calibrated retention model.
    ///
    /// The paper completes each pattern's profile with *sample count*
    /// (millions of ECC words per pattern, §5.1.3). A simulated chip has
    /// thousands of words, so this plan compensates with *error rate*: at
    /// a raw BER near 0.5 every subset of a pattern's ≤ `n−k+1` charged
    /// cells occurs with probability ≥ 2^−(n−k+1) per word, so a few
    /// thousand samples per pattern observe every possible miscorrection
    /// many times. The observable-miscorrection predicate itself is
    /// BER-independent, so the recovered profile is identical.
    pub fn quick() -> Self {
        let model = beer_dram::RetentionModel::paper_calibrated(0);
        let targets = [1e-3, 1e-2, 0.1, 0.25, 0.4, 0.499];
        CollectionPlan {
            trefw_schedule: targets
                .iter()
                .map(|&b| model.window_for_ber(b, 80.0))
                .collect(),
            celsius: 80.0,
            trials_per_step: 8,
        }
    }
}

/// Runs the full §5.1 experiment: returns the accumulated miscorrection
/// profile for `patterns`.
///
/// Only **true-cell** words are profiled, exactly as the paper does
/// ("the data is taken from the true-cell regions", §5.1.3): in anti-cell
/// words the encoder charges the *complement* of the parity pattern, so
/// the 1-CHARGED reasoning about reachable syndromes does not transfer.
/// Anti-cell words are programmed with a fully data-DISCHARGED background
/// and ignored.
///
/// # Panics
///
/// Panics if `patterns` is empty, their dataword lengths differ, the
/// dataword length disagrees with the known word layout, or the chip has
/// no true-cell words at all.
pub fn collect_profile(
    chip: &mut dyn DramInterface,
    knowledge: &ChipKnowledge,
    patterns: &[ChargedSet],
    plan: &CollectionPlan,
) -> MiscorrectionProfile {
    let k = validate_patterns(patterns);
    assert_eq!(
        knowledge.word_layout.word_bytes() * 8,
        k,
        "pattern length does not match the chip's dataword size"
    );

    let mut profile = MiscorrectionProfile::new(k, patterns.to_vec());
    chip.set_temperature(plan.celsius);
    // Resume from the chip's current trial counter so back-to-back
    // collections on one chip draw independent transient-noise samples.
    let trial_base = chip.trial_counter();
    for unit in 0..plan.num_trials() {
        run_collection_trial(
            chip,
            knowledge,
            patterns,
            plan,
            unit,
            trial_base,
            &mut profile,
        );
    }
    profile
}

/// Validates a pattern list and returns its common dataword length.
///
/// # Panics
///
/// Panics if `patterns` is empty or the dataword lengths differ.
pub(crate) fn validate_patterns(patterns: &[ChargedSet]) -> usize {
    assert!(!patterns.is_empty(), "no test patterns given");
    let k = patterns[0].k();
    for p in patterns {
        assert_eq!(p.k(), k, "patterns of differing dataword lengths");
    }
    k
}

/// Runs one retention trial — the engine's unit of work: program every word,
/// pause refresh for the unit's scheduled window, read back, and record
/// every unambiguous miscorrection into `profile`.
///
/// `unit` indexes the plan's flattened (refresh-window × trial) grid; it
/// doubles as the pattern-assignment rotation and, offset by `trial_base`,
/// the chip's trial-counter position — so any scheduling order (serial
/// sweep or sharded workers) produces bit-identical observations, while
/// distinct collections (different bases) draw independent noise.
///
/// # Panics
///
/// Panics if `unit` is out of range or the chip has no true-cell words.
pub(crate) fn run_collection_trial(
    chip: &mut dyn DramInterface,
    knowledge: &ChipKnowledge,
    patterns: &[ChargedSet],
    plan: &CollectionPlan,
    unit: usize,
    trial_base: u64,
    profile: &mut MiscorrectionProfile,
) {
    let trefw = plan.trefw_schedule[unit / plan.trials_per_step];
    run_collection_trial_windowed(chip, knowledge, patterns, trefw, unit, trial_base, profile);
}

/// [`run_collection_trial`] with the refresh window supplied by the caller
/// instead of looked up in a plan — the hook for timed backends, where the
/// window that actually elapsed *emerges* from an executed command stream
/// (cycle-quantized, see `beer_timing`) rather than being read off a
/// schedule.
///
/// # Panics
///
/// The conditions of [`run_collection_trial`].
pub(crate) fn run_collection_trial_windowed(
    chip: &mut dyn DramInterface,
    knowledge: &ChipKnowledge,
    patterns: &[ChargedSet],
    trefw: f64,
    unit: usize,
    trial_base: u64,
    profile: &mut MiscorrectionProfile,
) {
    let k = patterns[0].k();
    let rotation = unit;
    let num_words = knowledge.num_words(chip);
    let total_bytes = chip.geometry().total_bytes();

    // Profile only true-cell words (see the `collect_profile` docs).
    let true_words: Vec<usize> = (0..num_words)
        .filter(|&w| knowledge.cell_type_of_word(chip, w) == CellType::True)
        .collect();
    assert!(
        !true_words.is_empty(),
        "chip has no true-cell words; BEER's test patterns need true-cell regions"
    );
    let anti_background = BitVec::ones(k); // data cells DISCHARGED in anti words

    // Program every word: anti words get the discharged background, each
    // true word its rotation-assigned pattern.
    let mut image = vec![0u8; total_bytes];
    for word in 0..num_words {
        if knowledge.cell_type_of_word(chip, word) == CellType::Anti {
            write_word_into_image(&mut image, &knowledge.word_layout, word, &anti_background);
        }
    }
    let mut assigned: Vec<usize> = Vec::with_capacity(true_words.len());
    for (idx, &word) in true_words.iter().enumerate() {
        let pi = (idx + rotation) % patterns.len();
        assigned.push(pi);
        let data = patterns[pi].to_dataword(CellType::True);
        write_word_into_image(&mut image, &knowledge.word_layout, word, &data);
    }
    chip.write_bytes(0, &image);

    chip.seek_trial(trial_base + unit as u64);
    chip.retention_test(trefw);

    let read = chip.read_bytes(0, total_bytes);
    for (idx, &word) in true_words.iter().enumerate() {
        let pi = assigned[idx];
        let written = patterns[pi].to_dataword(CellType::True);
        let observed = read_word_from_image(&read, &knowledge.word_layout, word, k);
        if observed != written {
            for j in 0..k {
                if observed.get(j) != written.get(j) && !patterns[pi].is_charged(j) {
                    // An error at a DISCHARGED bit: unambiguously a
                    // miscorrection (§4.2.2).
                    profile.record_miscorrection(pi, j);
                }
            }
        }
        profile.record_trials(pi, 1);
    }
}

/// Serializes a dataword into the chip image at its mapped addresses.
pub(crate) fn write_word_into_image(
    image: &mut [u8],
    layout: &WordLayout,
    word: usize,
    data: &BitVec,
) {
    let wb = layout.word_bytes();
    for byte in 0..wb {
        let mut v = 0u8;
        for bit in 0..8 {
            if data.get(byte * 8 + bit) {
                v |= 1 << bit;
            }
        }
        image[layout.addr_of(word, byte)] = v;
    }
}

/// Extracts a dataword from a chip image.
pub(crate) fn read_word_from_image(
    image: &[u8],
    layout: &WordLayout,
    word: usize,
    k: usize,
) -> BitVec {
    let wb = layout.word_bytes();
    let mut data = BitVec::zeros(k);
    for byte in 0..wb {
        let v = image[layout.addr_of(word, byte)];
        for bit in 0..8 {
            if v >> bit & 1 == 1 {
                data.set(byte * 8 + bit, true);
            }
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::analytic_profile;
    use crate::pattern::PatternSet;
    use crate::profile::ThresholdFilter;
    use beer_dram::{ChipConfig, Geometry, SimChip};

    fn quick_chip(seed: u64) -> SimChip {
        SimChip::new(ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 128, 128)))
    }

    fn knowledge_for(chip: &SimChip) -> ChipKnowledge {
        ChipKnowledge::uniform(
            chip.config().word_layout,
            CellType::True,
            chip.geometry().total_rows(),
        )
    }

    #[test]
    fn image_word_roundtrip() {
        let layout = WordLayout::InterleavedPairs { word_bytes: 4 };
        let mut image = vec![0u8; 64];
        let data = BitVec::from_indices(32, &[0, 9, 31]);
        write_word_into_image(&mut image, &layout, 3, &data);
        assert_eq!(read_word_from_image(&image, &layout, 3, 32), data);
        // Other words untouched.
        assert!(read_word_from_image(&image, &layout, 2, 32).is_zero());
    }

    #[test]
    fn collected_profile_is_subset_of_analytic() {
        // Every experimentally observed miscorrection must be analytically
        // possible for the chip's true code.
        let mut chip = quick_chip(31);
        let knowledge = knowledge_for(&chip);
        let patterns = PatternSet::One.patterns(32);
        let plan = CollectionPlan::quick();
        let profile = collect_profile(&mut chip, &knowledge, &patterns, &plan);

        let truth = analytic_profile(chip.reveal_code(), &patterns);
        for (pi, (pattern, obs)) in truth.entries.iter().enumerate() {
            for (j, &o) in obs.iter().enumerate() {
                if profile.count(pi, j) > 0 {
                    assert_eq!(
                        o,
                        crate::profile::Observation::Miscorrection,
                        "observed impossible miscorrection: {pattern} bit {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn collection_observes_many_real_miscorrections() {
        let mut chip = quick_chip(32);
        let knowledge = knowledge_for(&chip);
        let patterns = PatternSet::One.patterns(32);
        let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
        let total: u64 = profile.per_bit_totals().iter().sum();
        assert!(
            total > 50,
            "only {total} miscorrections observed — sweep too weak"
        );
        // Trials are recorded for every pattern.
        for pi in 0..patterns.len() {
            assert!(profile.trials(pi) > 0);
        }
    }

    #[test]
    fn thresholded_collection_has_no_false_positives() {
        let mut chip = quick_chip(33);
        let knowledge = knowledge_for(&chip);
        let patterns = PatternSet::One.patterns(32);
        let profile = collect_profile(&mut chip, &knowledge, &patterns, &CollectionPlan::quick());
        let constraints = profile.to_constraints(&ThresholdFilter::default());
        let truth = analytic_profile(chip.reveal_code(), &patterns);
        // No definite observation may contradict the ground truth in the
        // Miscorrection direction (missing observations are fine).
        for (pattern, bit) in constraints.disagreements(&truth) {
            let idx = truth
                .entries
                .iter()
                .position(|(p, _)| *p == pattern)
                .unwrap();
            assert_ne!(
                constraints.entries[idx].1[bit],
                crate::profile::Observation::Miscorrection,
                "false positive at {pattern} bit {bit}"
            );
        }
    }
}
