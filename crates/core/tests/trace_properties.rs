//! Property tests for trace serialization: save/load round-trips for
//! observations drawn from *every* pattern family — 1-/2-CHARGED and
//! their union, RANDOM-t, CHECKERED, and ALL-charged — not just the
//! k-CHARGED sets the unit tests cover.

use beer_core::collect::CollectionPlan;
use beer_core::engine::{AnalyticBackend, EngineOptions};
use beer_core::pattern::PatternSet;
use beer_core::trace::{ProfileTrace, ReplayBackend};
use beer_ecc::hamming;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family(index: usize, k: usize, seed: u64) -> PatternSet {
    match index % 6 {
        0 => PatternSet::One,
        1 => PatternSet::Two,
        2 => PatternSet::OneTwo,
        3 => PatternSet::RandomT {
            t: (k / 2).max(1),
            count: 5,
            seed,
        },
        4 => PatternSet::Checkered,
        _ => PatternSet::All,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Text round-trip is lossless for every pattern family, and the
    /// replayed trace reproduces the recorded profile count for count.
    #[test]
    fn trace_roundtrips_across_all_pattern_families(
        k in 5usize..16,
        code_seed in any::<u64>(),
        family_index in 0usize..6,
        pattern_seed in any::<u64>(),
    ) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(code_seed));
        let patterns = family(family_index, k, pattern_seed).patterns(k);
        let plan = CollectionPlan::quick();
        let mut backend = AnalyticBackend::new(code);
        let trace = ProfileTrace::record(&mut backend, &patterns, &plan);

        // Lossless text round-trip.
        let parsed = ProfileTrace::from_text(&trace.to_text());
        prop_assert!(parsed.is_ok(), "parse failed: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &trace);

        // Replaying the parsed trace reproduces the recorded profile.
        let original = trace.to_profile();
        let mut replay = ReplayBackend::new(parsed);
        let replayed = beer_core::engine::try_collect_with(
            &mut replay,
            &patterns,
            &plan,
            &EngineOptions::serial(),
        );
        prop_assert!(replayed.is_ok(), "replay failed: {:?}", replayed.err());
        let replayed = replayed.unwrap();
        for pi in 0..patterns.len() {
            prop_assert_eq!(original.trials(pi), replayed.trials(pi));
            for bit in 0..k {
                prop_assert_eq!(
                    original.count(pi, bit),
                    replayed.count(pi, bit),
                    "({}, {}) diverged", pi, bit
                );
            }
        }
    }

    /// Parallel recording equals serial recording for every family — the
    /// engine's determinism contract extends to traced collection.
    #[test]
    fn traced_recording_is_deterministic_under_sharding(
        k in 5usize..14,
        code_seed in any::<u64>(),
        family_index in 0usize..6,
    ) {
        let code = hamming::random_sec(k, &mut StdRng::seed_from_u64(code_seed));
        let patterns = family(family_index, k, code_seed).patterns(k);
        let plan = CollectionPlan::quick();
        let serial = ProfileTrace::try_record(
            &mut AnalyticBackend::new(code.clone()),
            &patterns,
            &plan,
            &EngineOptions::serial(),
        );
        let sharded = ProfileTrace::try_record(
            &mut AnalyticBackend::new(code),
            &patterns,
            &plan,
            &EngineOptions::with_threads(3),
        );
        prop_assert!(serial.is_ok() && sharded.is_ok());
        prop_assert_eq!(serial.unwrap(), sharded.unwrap());
    }
}
