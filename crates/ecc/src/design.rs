//! Simulated manufacturer on-die ECC designs.
//!
//! The paper finds that the three LPDDR4 manufacturers use *different* ECC
//! functions: manufacturer A's miscorrection profile looks unstructured
//! while B's and C's show repeating patterns, "likely … due to regularities
//! in how syndromes are organized in the parity-check matrix" (§5.1.3,
//! Figure 3). Since the real functions are trade secrets, this module
//! provides stand-ins with exactly those qualitative structures.

use crate::code::LinearCode;
use crate::hamming;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three anonymized manufacturers of the paper's test chips (§5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Manufacturer {
    /// Unstructured parity-check layout (random column assignment).
    A,
    /// Regular layout: columns in increasing syndrome order.
    B,
    /// Regular layout: columns grouped by syndrome weight.
    C,
}

impl Manufacturer {
    /// All three manufacturers, in paper order.
    pub const ALL: [Manufacturer; 3] = [Manufacturer::A, Manufacturer::B, Manufacturer::C];
}

impl std::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Manufacturer::A => write!(f, "A"),
            Manufacturer::B => write!(f, "B"),
            Manufacturer::C => write!(f, "C"),
        }
    }
}

/// The secret on-die ECC function of a simulated chip model.
///
/// Chips of the same manufacturer and model number share the same function
/// (the paper confirms this experimentally in §5.1.3); `model_seed` plays
/// the role of the model number for manufacturer A's randomized design.
///
/// # Examples
///
/// ```
/// use beer_ecc::design::{vendor_code, Manufacturer};
///
/// let b0 = vendor_code(Manufacturer::B, 32, 0);
/// let b1 = vendor_code(Manufacturer::B, 32, 1);
/// // Manufacturer B's design is deterministic: same function regardless
/// // of model seed.
/// assert_eq!(b0.parity_submatrix(), b1.parity_submatrix());
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn vendor_code(manufacturer: Manufacturer, k: usize, model_seed: u64) -> LinearCode {
    let p = hamming::parity_bits_for(k);
    match manufacturer {
        Manufacturer::A => {
            // Unstructured: a seeded uniform draw from the design space.
            let mut rng = StdRng::seed_from_u64(0xA000_0000 ^ model_seed);
            hamming::random_sec(k, &mut rng)
        }
        Manufacturer::B => {
            // Sequential syndrome assignment: the k numerically smallest
            // weight-≥2 syndromes in increasing order.
            hamming::shortened(k)
        }
        Manufacturer::C => {
            // Weight-grouped assignment: all weight-2 syndromes first, then
            // weight-3, …, each group in increasing numeric order.
            let mut cols = hamming::candidate_columns(p);
            cols.sort_by_key(|c| (c.weight(), c.bits()));
            cols.truncate(k);
            LinearCode::from_column_masks(p, &cols).expect("weight-grouped design is valid")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miscorrection::observable_miscorrections;

    #[test]
    fn all_vendor_codes_are_valid_sec() {
        for m in Manufacturer::ALL {
            let code = vendor_code(m, 32, 5);
            assert_eq!(code.k(), 32);
            assert_eq!(code.parity_bits(), 6);
        }
    }

    #[test]
    fn vendors_use_different_functions() {
        let a = vendor_code(Manufacturer::A, 64, 0);
        let b = vendor_code(Manufacturer::B, 64, 0);
        let c = vendor_code(Manufacturer::C, 64, 0);
        assert_ne!(a.parity_submatrix(), b.parity_submatrix());
        assert_ne!(b.parity_submatrix(), c.parity_submatrix());
        assert_ne!(a.parity_submatrix(), c.parity_submatrix());
    }

    #[test]
    fn same_model_same_function_different_model_may_differ() {
        // §5.1.3: chips of the same model number share the ECC function.
        let a0 = vendor_code(Manufacturer::A, 32, 7);
        let a0_again = vendor_code(Manufacturer::A, 32, 7);
        assert_eq!(a0.parity_submatrix(), a0_again.parity_submatrix());
        let a1 = vendor_code(Manufacturer::A, 32, 8);
        assert_ne!(a0.parity_submatrix(), a1.parity_submatrix());
    }

    #[test]
    fn profiles_differ_between_vendors() {
        // The Fig. 3 observation: different manufacturers, visibly
        // different miscorrection profiles.
        let k = 16;
        let profiles: Vec<Vec<Vec<usize>>> = Manufacturer::ALL
            .iter()
            .map(|&m| {
                let code = vendor_code(m, k, 0);
                (0..k)
                    .map(|a| observable_miscorrections(&code, &[a]))
                    .collect()
            })
            .collect();
        assert_ne!(profiles[0], profiles[1]);
        assert_ne!(profiles[1], profiles[2]);
    }

    #[test]
    fn vendor_c_groups_columns_by_weight() {
        let code = vendor_code(Manufacturer::C, 20, 0);
        let weights: Vec<u32> = (0..20).map(|c| code.data_column(c).weight()).collect();
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        assert_eq!(weights, sorted, "weights must be non-decreasing");
        assert_eq!(weights[0], 2);
    }
}
