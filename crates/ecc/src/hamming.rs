//! Single-error-correcting Hamming code constructions.
//!
//! The design space of §3.3: an `(n, k)` SEC code in standard form is any
//! choice of `k` pairwise-distinct weight-≥2 columns for `P` out of the
//! `2^p − p − 1` candidates (`p = n − k` parity bits). These constructors
//! cover the paper's (7,4) example, full-length codes, shortened codes, and
//! uniform random draws from the design space (used to simulate unknown
//! on-die ECC functions).

use crate::code::{CodeError, LinearCode};
use beer_gf2::SynMask;
use rand::seq::SliceRandom;
use rand::Rng;

/// The paper's running example: the (7, 4, 3) Hamming code of Equation 1.
///
/// # Examples
///
/// ```
/// use beer_ecc::hamming;
/// let code = hamming::eq1_code();
/// assert_eq!((code.n(), code.k()), (7, 4));
/// ```
pub fn eq1_code() -> LinearCode {
    // Columns of P, top row = parity check 0: see Equation 1 in the paper.
    let cols = [
        SynMask::new(0b111, 3),
        SynMask::new(0b011, 3),
        SynMask::new(0b101, 3),
        SynMask::new(0b110, 3),
    ];
    LinearCode::from_column_masks(3, &cols).expect("Eq. 1 code is valid")
}

/// Smallest number of parity bits for a SEC Hamming code with `k` data
/// bits: the least `p` with `2^p ≥ k + p + 1`.
///
/// # Examples
///
/// ```
/// use beer_ecc::hamming::parity_bits_for;
/// assert_eq!(parity_bits_for(4), 3);
/// assert_eq!(parity_bits_for(64), 7);
/// assert_eq!(parity_bits_for(128), 8); // on-die ECC word size (§5.1.2)
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn parity_bits_for(k: usize) -> usize {
    assert!(k > 0, "a code needs at least one data bit");
    let mut p = 2usize;
    while (1usize << p) < k + p + 1 {
        p += 1;
    }
    p
}

/// The dataword length of the full-length Hamming code with `p` parity
/// bits: `k = 2^p − p − 1`.
///
/// # Panics
///
/// Panics if `p < 2` or `p > 16` (full-length codes beyond that are not
/// materializable in memory anyway).
pub fn full_length_k(p: usize) -> usize {
    assert!((2..=16).contains(&p), "unsupported parity-bit count {p}");
    (1usize << p) - p - 1
}

/// All candidate `P`-columns for `p` parity bits: the weight-≥2 masks,
/// in increasing numeric order.
pub fn candidate_columns(p: usize) -> Vec<SynMask> {
    assert!(p <= 24, "candidate enumeration for p={p} would be huge");
    (0u64..(1u64 << p))
        .filter(|v| v.count_ones() >= 2)
        .map(|v| SynMask::new(v, p))
        .collect()
}

/// The full-length Hamming code with `p` parity bits, columns assigned in
/// increasing numeric order (a fixed, deterministic representative).
///
/// # Panics
///
/// Panics if `p` is out of the supported range (see [`full_length_k`]).
pub fn full_length(p: usize) -> LinearCode {
    let cols = candidate_columns(p);
    LinearCode::from_column_masks(p, &cols).expect("full-length construction is valid")
}

/// A deterministic shortened SEC Hamming code with `k` data bits: the
/// minimum number of parity bits and the numerically smallest columns.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn shortened(k: usize) -> LinearCode {
    let p = parity_bits_for(k);
    let cols = candidate_columns(p);
    LinearCode::from_column_masks(p, &cols[..k]).expect("shortened construction is valid")
}

/// A uniformly random SEC Hamming code with `k` data bits and the minimum
/// number of parity bits: a random `k`-subset of the candidate columns in
/// random order. This samples the §3.3 design space, the population from
/// which the paper draws its 115 300 simulated codes (§6.1).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn random_sec<R: Rng + ?Sized>(k: usize, rng: &mut R) -> LinearCode {
    let p = parity_bits_for(k);
    random_sec_with_parity(k, p, rng)
}

/// A uniformly random SEC code with an explicit parity-bit count `p`
/// (which may exceed the minimum, giving more aggressive shortening).
///
/// # Panics
///
/// Panics if `k == 0` or fewer than `k` candidate columns exist for `p`.
pub fn random_sec_with_parity<R: Rng + ?Sized>(k: usize, p: usize, rng: &mut R) -> LinearCode {
    let mut cols = candidate_columns(p);
    assert!(
        cols.len() >= k,
        "p={p} provides only {} candidate columns for k={k}",
        cols.len()
    );
    cols.shuffle(rng);
    cols.truncate(k);
    LinearCode::from_column_masks(p, &cols).expect("random construction is valid")
}

/// Builds a code from explicit column values (`u64` masks over `p` rows).
///
/// # Errors
///
/// Returns a [`CodeError`] if the columns do not form a valid SEC code.
pub fn from_column_values(p: usize, cols: &[u64]) -> Result<LinearCode, CodeError> {
    let masks: Vec<SynMask> = cols.iter().map(|&v| SynMask::new(v, p)).collect();
    LinearCode::from_column_masks(p, &masks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parity_bits_match_hamming_bound() {
        // Known SEC Hamming parameters.
        let cases = [
            (1, 2),
            (4, 3),
            (11, 4),
            (26, 5),
            (57, 6),
            (120, 7),
            (247, 8),
        ];
        for (k, p) in cases {
            assert_eq!(parity_bits_for(k), p, "k={k}");
        }
        // One past each full length needs one more parity bit.
        assert_eq!(parity_bits_for(5), 4);
        assert_eq!(parity_bits_for(121), 8);
    }

    #[test]
    fn full_length_k_matches_formula() {
        assert_eq!(full_length_k(3), 4);
        assert_eq!(full_length_k(4), 11);
        assert_eq!(full_length_k(8), 247);
    }

    #[test]
    fn candidate_columns_count() {
        // 2^p − p − 1 candidates of weight ≥ 2.
        for p in 2..=8 {
            assert_eq!(candidate_columns(p).len(), (1 << p) - p - 1, "p={p}");
        }
    }

    #[test]
    fn full_length_code_is_full_length() {
        for p in 3..=6 {
            let c = full_length(p);
            assert_eq!(c.k(), full_length_k(p));
            assert!(c.is_full_length());
        }
    }

    #[test]
    fn shortened_code_has_min_parity() {
        let c = shortened(32);
        assert_eq!(c.k(), 32);
        assert_eq!(c.parity_bits(), 6);
        assert!(!c.is_full_length());
    }

    #[test]
    fn random_codes_are_valid_and_distinct() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_sec(16, &mut rng);
        let b = random_sec(16, &mut rng);
        assert_eq!(a.k(), 16);
        assert_eq!(a.parity_bits(), 5);
        // Overwhelmingly likely distinct.
        assert_ne!(
            a.parity_submatrix(),
            b.parity_submatrix(),
            "two seeded draws should differ"
        );
    }

    #[test]
    fn random_codes_correct_all_single_errors() {
        let mut rng = StdRng::seed_from_u64(7);
        for &k in &[4, 11, 26, 32] {
            let code = random_sec(k, &mut rng);
            let d = beer_gf2::BitVec::from_indices(k, &[0, k / 2]);
            let c = code.encode(&d);
            for pos in 0..code.n() {
                let mut cw = c.clone();
                cw.flip(pos);
                assert_eq!(code.decode(&cw).data, d, "k={k} pos={pos}");
            }
        }
    }

    #[test]
    fn eq1_is_the_smallest_full_length_code() {
        let code = eq1_code();
        assert!(code.is_full_length());
        assert_eq!(code.k(), full_length_k(3));
    }

    #[test]
    fn from_column_values_validates() {
        assert!(from_column_values(3, &[0b111, 0b011]).is_ok());
        assert!(from_column_values(3, &[0b111, 0b111]).is_err());
        assert!(from_column_values(3, &[0b001, 0b011]).is_err());
    }

    #[test]
    fn random_sec_with_extra_parity_shortens_more() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = random_sec_with_parity(8, 6, &mut rng);
        assert_eq!(c.parity_bits(), 6);
        assert_eq!(c.k(), 8);
    }
}
