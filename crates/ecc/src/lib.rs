//! Systematic linear block codes for the BEER reproduction.
//!
//! DRAM on-die ECC is a single-error-correcting (SEC) Hamming code in
//! systematic (standard) form `H = [P | I]` (paper §3.3 / §4.2.1). This
//! crate implements:
//!
//! * [`LinearCode`] — encode / syndrome / decode with the externally visible
//!   outcomes of Table 1 (silent data corruption, partial correction,
//!   miscorrection),
//! * [`hamming`] — SEC Hamming constructions: the paper's (7,4) example
//!   (Equation 1), full-length codes, shortened codes, and random draws
//!   from the design space of §3.3,
//! * [`miscorrection`] — the closed-form observable-miscorrection predicate
//!   (derived in DESIGN.md §2) plus a brute-force enumeration through the
//!   real decoder used to validate it,
//! * [`design`] — simulated "manufacturer" parity-check layouts whose
//!   miscorrection profiles differ qualitatively (Figure 3),
//! * [`equivalence`] — canonical forms for comparing codes up to the
//!   parity-bit relabeling the chip interface cannot expose (§4.2.1).
//!
//! # Examples
//!
//! ```
//! use beer_ecc::hamming;
//! use beer_gf2::BitVec;
//!
//! let code = hamming::eq1_code(); // the paper's (7,4) Hamming code
//! let data = BitVec::from_bits(&[true, false, true, true]);
//! let mut cw = code.encode(&data);
//! cw.flip(2); // single-bit error
//! let decoded = code.decode(&cw);
//! assert_eq!(decoded.data, data); // corrected
//! ```

pub mod design;
pub mod equivalence;
pub mod hamming;
pub mod miscorrection;

mod code;

pub use code::{CodeError, Correction, DecodeResult, LinearCode};
