//! The systematic linear block code type.

use beer_gf2::{BitMatrix, BitVec, SynMask};
use std::fmt;

/// Why a parity sub-matrix cannot form a valid SEC code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodeError {
    /// The code must have at least one data bit.
    NoDataBits,
    /// The code must have at least one parity bit.
    NoParityBits,
    /// More than 64 parity bits are not supported (syndromes are kept in a
    /// single machine word).
    TooManyParityBits(usize),
    /// A data column has weight < 2, so it collides with the zero syndrome
    /// or a parity (identity) column and single-error correction breaks.
    ColumnWeightTooLow { column: usize },
    /// Two data columns are equal, so their single-bit errors cannot be
    /// distinguished.
    DuplicateColumns { first: usize, second: usize },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::NoDataBits => write!(f, "code has no data bits"),
            CodeError::NoParityBits => write!(f, "code has no parity bits"),
            CodeError::TooManyParityBits(p) => {
                write!(f, "{p} parity bits exceed the supported maximum of 64")
            }
            CodeError::ColumnWeightTooLow { column } => write!(
                f,
                "data column {column} has weight < 2 and collides with a parity column"
            ),
            CodeError::DuplicateColumns { first, second } => {
                write!(f, "data columns {first} and {second} are identical")
            }
        }
    }
}

impl std::error::Error for CodeError {}

/// What the decoder did to produce its output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Correction {
    /// Zero syndrome: nothing flipped.
    None,
    /// The syndrome matched data column `bit`; that data bit was flipped.
    Data {
        /// Dataword bit index that was flipped.
        bit: usize,
    },
    /// The syndrome matched parity column `bit`; the flip is invisible in
    /// the dataword.
    Parity {
        /// Parity bit index (0-based within the parity section).
        bit: usize,
    },
    /// The syndrome matched no column (possible only for shortened codes):
    /// the error is detected but nothing is flipped.
    Unmatched,
}

/// Output of [`LinearCode::decode`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeResult {
    /// The post-correction dataword — what the DRAM bus would return.
    pub data: BitVec,
    /// The raw error syndrome `H·c'` (hidden inside a real chip; exposed
    /// here for analysis and tests).
    pub syndrome: SynMask,
    /// The correction the decoder applied.
    pub correction: Correction,
}

/// A systematic linear block code in standard form `H = [P | I]`.
///
/// Codeword layout: bits `0..k` are the dataword, bits `k..n` the parity
/// bits (the paper shows the ordering is unobservable, so this fixes one
/// representative of the equivalence class — §4.2.1).
///
/// The code is validated at construction to be single-error-correcting:
/// every column of `H` is nonzero and distinct, which for the data columns
/// of `P` means pairwise-distinct with weight ≥ 2.
///
/// # Examples
///
/// ```
/// use beer_ecc::LinearCode;
/// use beer_gf2::BitMatrix;
///
/// // P of the paper's (7,4) code (Equation 1).
/// let p = BitMatrix::from_bools(&[
///     &[true, true, true, false],
///     &[true, true, false, true],
///     &[true, false, true, true],
/// ]);
/// let code = LinearCode::from_parity_submatrix(p)?;
/// assert_eq!((code.n(), code.k()), (7, 4));
/// # Ok::<(), beer_ecc::CodeError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LinearCode {
    parity: BitMatrix,
    /// Cached columns of `P` as syndrome masks (bit r = row r).
    data_columns: Vec<SynMask>,
}

impl LinearCode {
    /// Builds a code from its `(n-k) × k` parity sub-matrix `P`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if `P` does not describe a valid SEC code
    /// (see the variants for the specific conditions).
    pub fn from_parity_submatrix(parity: BitMatrix) -> Result<Self, CodeError> {
        let p = parity.rows();
        let k = parity.cols();
        if k == 0 {
            return Err(CodeError::NoDataBits);
        }
        if p == 0 {
            return Err(CodeError::NoParityBits);
        }
        if p > 64 {
            return Err(CodeError::TooManyParityBits(p));
        }
        let data_columns: Vec<SynMask> = (0..k)
            .map(|c| SynMask::from_bitvec(&parity.col(c)))
            .collect();
        for (c, col) in data_columns.iter().enumerate() {
            if col.weight() < 2 {
                return Err(CodeError::ColumnWeightTooLow { column: c });
            }
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if data_columns[i] == data_columns[j] {
                    return Err(CodeError::DuplicateColumns {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(LinearCode {
            parity,
            data_columns,
        })
    }

    /// Builds a code from the `P` columns given as syndrome masks.
    ///
    /// # Errors
    ///
    /// Same as [`LinearCode::from_parity_submatrix`].
    pub fn from_column_masks(parity_bits: usize, cols: &[SynMask]) -> Result<Self, CodeError> {
        let col_vecs: Vec<BitVec> = cols
            .iter()
            .map(|m| BitVec::from_u64(parity_bits, m.bits()))
            .collect();
        LinearCode::from_parity_submatrix(BitMatrix::from_cols(&col_vecs))
    }

    /// Codeword length `n`.
    pub fn n(&self) -> usize {
        self.parity.cols() + self.parity.rows()
    }

    /// Dataword length `k`.
    pub fn k(&self) -> usize {
        self.parity.cols()
    }

    /// Number of parity-check bits `n - k`.
    pub fn parity_bits(&self) -> usize {
        self.parity.rows()
    }

    /// The parity sub-matrix `P`.
    pub fn parity_submatrix(&self) -> &BitMatrix {
        &self.parity
    }

    /// The full parity-check matrix `H = [P | I]`.
    pub fn parity_check_matrix(&self) -> BitMatrix {
        self.parity.hstack(&BitMatrix::identity(self.parity.rows()))
    }

    /// The generator matrix `G` with codewords as `G · d`, i.e. the
    /// `n × k` matrix `[I ; P]`.
    pub fn generator_matrix(&self) -> BitMatrix {
        BitMatrix::identity(self.k()).vstack(&self.parity)
    }

    /// Column `c` of `P` as a syndrome mask.
    ///
    /// # Panics
    ///
    /// Panics if `c >= k()`.
    #[inline]
    pub fn data_column(&self, c: usize) -> SynMask {
        self.data_columns[c]
    }

    /// Column of the full `H` for codeword position `pos` (data or parity).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= n()`.
    pub fn column(&self, pos: usize) -> SynMask {
        assert!(pos < self.n(), "codeword position {pos} out of range");
        if pos < self.k() {
            self.data_columns[pos]
        } else {
            SynMask::new(1u64 << (pos - self.k()), self.parity_bits())
        }
    }

    /// Finds the codeword position whose `H` column equals `syndrome`,
    /// if any.
    pub fn position_of_syndrome(&self, syndrome: SynMask) -> Option<usize> {
        if syndrome.is_zero() {
            return None;
        }
        if syndrome.weight() == 1 {
            return Some(self.k() + syndrome.bits().trailing_zeros() as usize);
        }
        self.data_columns.iter().position(|&c| c == syndrome)
    }

    /// Encodes a dataword into a codeword (`Fencode` of Figure 2).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k()`.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.k(), "dataword length mismatch");
        let parity = self.parity.mul_vec(data);
        data.concat(&parity)
    }

    /// Computes the parity section for a dataword without building the full
    /// codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k()`.
    pub fn parity_of(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.k(), "dataword length mismatch");
        self.parity.mul_vec(data)
    }

    /// Fast parity computation for the charged-set representation: the
    /// parity mask of a dataword whose set bits are exactly `ones`.
    pub fn parity_mask_of_ones(&self, ones: &[usize]) -> SynMask {
        let mut m = SynMask::zero(self.parity_bits());
        for &c in ones {
            m ^= self.data_columns[c];
        }
        m
    }

    /// Computes the error syndrome `H · c'` of a (possibly erroneous)
    /// codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n()`.
    pub fn syndrome(&self, codeword: &BitVec) -> SynMask {
        assert_eq!(codeword.len(), self.n(), "codeword length mismatch");
        let mut s = SynMask::zero(self.parity_bits());
        for pos in codeword.iter_ones() {
            s ^= self.column(pos);
        }
        s
    }

    /// Syndrome of a sparse error pattern given by codeword positions.
    pub fn syndrome_of_error_positions(&self, positions: &[usize]) -> SynMask {
        let mut s = SynMask::zero(self.parity_bits());
        for &pos in positions {
            s ^= self.column(pos);
        }
        s
    }

    /// Decodes a received codeword (`Fdecode` of Figure 2): syndrome
    /// decoding with single-bit correction, exactly the externally-visible
    /// behaviour of on-die ECC (§3.3). The decoder is unaware of the true
    /// error count; uncorrectable patterns silently produce partial
    /// corrections or miscorrections.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n()`.
    pub fn decode(&self, codeword: &BitVec) -> DecodeResult {
        let s = self.syndrome(codeword);
        let mut data = codeword.slice(0..self.k());
        if s.is_zero() {
            return DecodeResult {
                data,
                syndrome: s,
                correction: Correction::None,
            };
        }
        match self.position_of_syndrome(s) {
            Some(pos) if pos < self.k() => {
                data.flip(pos);
                DecodeResult {
                    data,
                    syndrome: s,
                    correction: Correction::Data { bit: pos },
                }
            }
            Some(pos) => DecodeResult {
                data,
                syndrome: s,
                correction: Correction::Parity {
                    bit: pos - self.k(),
                },
            },
            None => DecodeResult {
                data,
                syndrome: s,
                correction: Correction::Unmatched,
            },
        }
    }

    /// Reconstructs the full pre-correction codeword from an observed
    /// miscorrection — the core of BEEP (§7.1.3, Equation 4).
    ///
    /// `post_correction_data` is the dataword read from the chip and
    /// `miscorrected_bit` the data bit known to have been flipped by the
    /// decoder (it revealed syndrome `H_j`). The `n-k` unknown parity bits
    /// follow uniquely from `c'_par = s ⊕ P · c'_dat`.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or `miscorrected_bit >= k()`.
    pub fn reconstruct_precorrection_codeword(
        &self,
        post_correction_data: &BitVec,
        miscorrected_bit: usize,
    ) -> BitVec {
        assert_eq!(post_correction_data.len(), self.k());
        assert!(miscorrected_bit < self.k());
        let syndrome = self.data_columns[miscorrected_bit];
        // Undo the decoder's flip to recover the received data bits.
        let mut received_data = post_correction_data.clone();
        received_data.flip(miscorrected_bit);
        let parity = SynMask::from_bitvec(&self.parity.mul_vec(&received_data)) ^ syndrome;
        received_data.concat(&parity.to_bitvec())
    }

    /// Returns `true` if `codeword` is a valid codeword (zero syndrome).
    pub fn is_codeword(&self, codeword: &BitVec) -> bool {
        self.syndrome(codeword).is_zero()
    }

    /// Returns `true` if the code is full-length: every nonzero syndrome
    /// appears as a column of `H` (2ᵖ − 1 columns). Shortened codes
    /// (paper §4.2.4) have fewer data columns.
    pub fn is_full_length(&self) -> bool {
        let p = self.parity_bits();
        p < 64 && self.n() as u64 == (1u64 << p) - 1
    }
}

impl fmt::Debug for LinearCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LinearCode(n={}, k={}, P=\n{})",
            self.n(),
            self.k(),
            self.parity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming;

    #[test]
    fn eq1_dimensions_and_matrices() {
        let code = hamming::eq1_code();
        assert_eq!(code.n(), 7);
        assert_eq!(code.k(), 4);
        assert_eq!(code.parity_bits(), 3);
        assert!(code.is_full_length());
        assert!(code.parity_check_matrix().is_standard_form());
        // H · G = 0 (every codeword is in the null space of H).
        let h = code.parity_check_matrix();
        let g = code.generator_matrix();
        let hg = h.mul(&g);
        assert_eq!(hg, beer_gf2::BitMatrix::zeros(3, 4));
    }

    #[test]
    fn encode_matches_paper_example() {
        // Eq. 1: dataword 1000 → parity 111 (first column of P).
        let code = hamming::eq1_code();
        let d = BitVec::from_bits(&[true, false, false, false]);
        let c = code.encode(&d);
        assert_eq!(c.to_string(), "1000111");
    }

    #[test]
    fn zero_dataword_is_zero_codeword() {
        let code = hamming::eq1_code();
        let c = code.encode(&BitVec::zeros(4));
        assert!(c.is_zero());
        assert!(code.is_codeword(&c));
    }

    #[test]
    fn single_errors_are_corrected_everywhere() {
        let code = hamming::eq1_code();
        for data_val in 0..16u64 {
            let d = BitVec::from_u64(4, data_val);
            let c = code.encode(&d);
            for pos in 0..7 {
                let mut cw = c.clone();
                cw.flip(pos);
                let r = code.decode(&cw);
                assert_eq!(r.data, d, "failed for data {data_val:#x} err at {pos}");
                if pos < 4 {
                    assert_eq!(r.correction, Correction::Data { bit: pos });
                } else {
                    assert_eq!(r.correction, Correction::Parity { bit: pos - 4 });
                }
            }
        }
    }

    #[test]
    fn syndrome_extracts_column_of_injected_error() {
        // Paper Equation 2: error at position 2 exposes column 2 of H.
        let code = hamming::eq1_code();
        let c = code.encode(&BitVec::from_u64(4, 0b1011));
        let mut cw = c.clone();
        cw.flip(2);
        assert_eq!(code.syndrome(&cw), code.column(2));
    }

    #[test]
    fn double_error_outcomes_are_uncorrectable() {
        let code = hamming::eq1_code();
        let d = BitVec::from_u64(4, 0b0101);
        let c = code.encode(&d);
        let mut cw = c.clone();
        cw.flip(0);
        cw.flip(5);
        let r = code.decode(&cw);
        // A full-length SEC code always "corrects" something on a nonzero
        // syndrome; with two errors the output must be wrong.
        assert_ne!(r.data, d);
        assert_ne!(r.correction, Correction::None);
    }

    #[test]
    fn reconstruct_precorrection_codeword_inverts_miscorrection() {
        let code = hamming::eq1_code();
        let d = BitVec::from_u64(4, 0b0100); // data bit 2 set
        let c = code.encode(&d);
        // Find an uncorrectable double error that miscorrects a data bit.
        for e1 in 0..7 {
            for e2 in (e1 + 1)..7 {
                let mut cw = c.clone();
                cw.flip(e1);
                cw.flip(e2);
                let r = code.decode(&cw);
                if let Correction::Data { bit } = r.correction {
                    if bit != e1 && bit != e2 {
                        // A genuine miscorrection: reconstruct c'.
                        let recon = code.reconstruct_precorrection_codeword(&r.data, bit);
                        assert_eq!(recon, cw, "reconstruction mismatch for ({e1},{e2})");
                        return;
                    }
                }
            }
        }
        panic!("no miscorrection found for the (7,4) code — unexpected");
    }

    #[test]
    fn rejects_low_weight_columns() {
        let p = BitMatrix::from_bools(&[&[true, true], &[false, true], &[false, true]]);
        match LinearCode::from_parity_submatrix(p) {
            Err(CodeError::ColumnWeightTooLow { column: 0 }) => {}
            other => panic!("expected ColumnWeightTooLow, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_columns() {
        let p = BitMatrix::from_bools(&[&[true, true], &[true, true], &[false, false]]);
        match LinearCode::from_parity_submatrix(p) {
            Err(CodeError::DuplicateColumns {
                first: 0,
                second: 1,
            }) => {}
            other => panic!("expected DuplicateColumns, got {other:?}"),
        }
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert_eq!(
            LinearCode::from_parity_submatrix(BitMatrix::zeros(3, 0)),
            Err(CodeError::NoDataBits)
        );
        assert_eq!(
            LinearCode::from_parity_submatrix(BitMatrix::zeros(0, 3)),
            Err(CodeError::NoParityBits)
        );
    }

    #[test]
    fn column_accessor_covers_parity_positions() {
        let code = hamming::eq1_code();
        for i in 0..3 {
            let col = code.column(4 + i);
            assert_eq!(col.weight(), 1);
            assert!(col.get(i));
        }
    }

    #[test]
    fn parity_mask_of_ones_matches_encode() {
        let code = hamming::eq1_code();
        let d = BitVec::from_u64(4, 0b1010);
        let ones: Vec<usize> = d.iter_ones().collect();
        let mask = code.parity_mask_of_ones(&ones);
        let parity = code.parity_of(&d);
        assert_eq!(mask.to_bitvec(), parity);
    }

    #[test]
    fn error_display_is_informative() {
        let err = CodeError::DuplicateColumns {
            first: 1,
            second: 3,
        };
        assert!(err.to_string().contains("1"));
        assert!(err.to_string().contains("3"));
    }
}
