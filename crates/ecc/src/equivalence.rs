//! Code equivalence up to parity-bit relabeling.
//!
//! On-die ECC never exposes its parity bits, so BEER can determine the ECC
//! function only up to an *equivalent code* (paper §4.2.1, §5.4): within
//! standard form `[P | I]`, the residual freedom is exactly a permutation
//! of the rows of `P` (relabeling which parity bit is which). Sorting the
//! rows lexicographically therefore yields a canonical representative, and
//! "number of distinct solutions" in BEER's uniqueness check means number
//! of distinct canonical forms.

use crate::code::LinearCode;
use beer_gf2::BitMatrix;

/// The canonical parity sub-matrix: rows sorted lexicographically (bit 0
/// of each row most significant).
pub fn canonical_parity(code: &LinearCode) -> BitMatrix {
    code.parity_submatrix().with_sorted_rows()
}

/// The canonical representative of the code's equivalence class.
///
/// Row-sorting preserves column distinctness and weights, so the result is
/// always a valid code.
pub fn canonicalize(code: &LinearCode) -> LinearCode {
    LinearCode::from_parity_submatrix(canonical_parity(code))
        .expect("row permutation preserves code validity")
}

/// Returns `true` if the two codes are equivalent: identical up to a
/// permutation of parity-bit labels (identical externally visible
/// behaviour).
pub fn equivalent(a: &LinearCode, b: &LinearCode) -> bool {
    a.k() == b.k()
        && a.parity_bits() == b.parity_bits()
        && canonical_parity(a) == canonical_parity(b)
}

/// A 64-bit content hash of the code's canonical form: equal for
/// equivalent codes (it hashes exactly what [`canonical_parity`] compares),
/// and distinct for inequivalent codes up to FNV-1a collisions.
///
/// This is the key of `beer_service`'s recovered-code cache: codes
/// recovered from different chips of one family hash into the same bucket
/// in O(1), with [`equivalent`] confirming equality inside the bucket — so
/// a rare collision can never conflate two ECC functions.
pub fn canonical_hash(code: &LinearCode) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut write = |v: u64| {
        for byte in v.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    };
    write(code.k() as u64);
    write(code.parity_bits() as u64);
    for row in canonical_parity(code).iter_rows() {
        // Rows can exceed 64 bits (k up to 128); hash 64-bit limbs.
        let mut limb = 0u64;
        for (i, bit) in row.iter().enumerate() {
            if bit {
                limb |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                write(limb);
                limb = 0;
            }
        }
        if row.len() % 64 != 0 {
            write(limb);
        }
    }
    h
}

/// Applies a row permutation to a code's parity sub-matrix: `perm[i]` is
/// the source row for destination row `i`. Used by tests to generate
/// equivalent-but-different representations.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..parity_bits()`.
pub fn permute_parity_rows(code: &LinearCode, perm: &[usize]) -> LinearCode {
    let p = code.parity_bits();
    assert_eq!(perm.len(), p, "permutation length mismatch");
    let mut seen = vec![false; p];
    for &s in perm {
        assert!(s < p && !seen[s], "not a permutation: {perm:?}");
        seen[s] = true;
    }
    let rows: Vec<beer_gf2::BitVec> = perm
        .iter()
        .map(|&src| code.parity_submatrix().row(src).clone())
        .collect();
    LinearCode::from_parity_submatrix(BitMatrix::from_rows(&rows))
        .expect("row permutation preserves code validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming;
    use crate::miscorrection::observable_miscorrections;

    #[test]
    fn code_is_equivalent_to_itself() {
        let code = hamming::eq1_code();
        assert!(equivalent(&code, &code));
    }

    #[test]
    fn row_permutations_are_equivalent() {
        let code = hamming::eq1_code();
        let permuted = permute_parity_rows(&code, &[2, 0, 1]);
        assert_ne!(code.parity_submatrix(), permuted.parity_submatrix());
        assert!(equivalent(&code, &permuted));
    }

    #[test]
    fn equivalent_codes_have_identical_miscorrection_profiles() {
        // The invisible relabeling must not change any externally
        // observable behaviour — this is why BEER cannot (and need not)
        // distinguish equivalent codes.
        let code = hamming::shortened(8);
        let permuted = permute_parity_rows(&code, &[3, 1, 0, 2]);
        for a in 0..8 {
            assert_eq!(
                observable_miscorrections(&code, &[a]),
                observable_miscorrections(&permuted, &[a]),
                "pattern {a}"
            );
        }
    }

    #[test]
    fn different_codes_are_not_equivalent() {
        let b = crate::design::vendor_code(crate::design::Manufacturer::B, 11, 0);
        let c = crate::design::vendor_code(crate::design::Manufacturer::C, 11, 0);
        assert!(!equivalent(&b, &c));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let code = hamming::shortened(10);
        let canon = canonicalize(&code);
        let canon2 = canonicalize(&canon);
        assert_eq!(canon.parity_submatrix(), canon2.parity_submatrix());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_permutations() {
        let code = hamming::eq1_code();
        permute_parity_rows(&code, &[0, 0, 1]);
    }

    #[test]
    fn canonical_hash_respects_equivalence() {
        let code = hamming::shortened(8);
        let permuted = permute_parity_rows(&code, &[3, 1, 0, 2]);
        assert_eq!(canonical_hash(&code), canonical_hash(&permuted));

        let b = crate::design::vendor_code(crate::design::Manufacturer::B, 11, 0);
        let c = crate::design::vendor_code(crate::design::Manufacturer::C, 11, 0);
        assert_ne!(canonical_hash(&b), canonical_hash(&c));
    }

    #[test]
    fn canonical_hash_covers_rows_past_64_bits() {
        // k = 128 rows span two hash limbs; flipping a bit in the second
        // limb must change the hash.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
        let code = hamming::random_sec(128, &mut rng);
        let h = canonical_hash(&code);
        let mut p = code.parity_submatrix().clone();
        // Toggle two high columns of one row to keep the code valid with
        // high probability; retry rows until construction succeeds.
        for r in 0..p.rows() {
            let mut q = p.clone();
            q.set(r, 100, !q.get(r, 100));
            q.set(r, 120, !q.get(r, 120));
            if let Ok(other) = LinearCode::from_parity_submatrix(q.clone()) {
                assert_ne!(canonical_hash(&other), h);
                return;
            }
            p = code.parity_submatrix().clone();
        }
        panic!("no valid single-row perturbation found");
    }
}
