//! Miscorrection analysis: which post-correction errors can a test pattern
//! produce?
//!
//! This module implements the paper's §4.2.2–§4.2.3 machinery twice:
//!
//! * [`observable_miscorrections`] — the closed-form predicate derived in
//!   DESIGN.md §2: for a pattern with CHARGED data-bit set `A`, a
//!   miscorrection is observable at DISCHARGED data bit `j` iff
//!   `∃x ⊆ A: supp(P_j ⊕ ⊕_{a∈x} P_a) ⊆ supp(⊕_{a∈A} P_a)`.
//! * [`enumerate_outcomes`] — brute force: every subset of CHARGED cells is
//!   pushed through the real decoder (Table 1). The property tests assert
//!   the two agree, so the SAT encoding built on the closed form is not
//!   validated against itself.
//!
//! Charge convention: at this layer a codeword bit value of 1 is CHARGED
//! and retention errors flip 1 → 0 (true-cells). Anti-cell regions are
//! handled by the DRAM layer, which translates between logical data and
//! charge before reaching the code.

use crate::code::{Correction, LinearCode};
use beer_gf2::{BitVec, SynMask};

/// Maximum number of charged cells brute-force enumeration will accept
/// (2^24 decoder invocations).
const MAX_BRUTE_FORCE_CELLS: usize = 24;

/// The externally visible outcome of one pre-correction error pattern
/// (the right-hand column of Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// No errors occurred.
    NoError,
    /// The post-correction dataword equals the written dataword (single
    /// errors, or multi-bit errors the decoder happened to neutralize).
    Correct,
    /// The post-correction dataword is wrong: silent corruption, partial
    /// correction, or miscorrection.
    Uncorrectable,
}

/// One row of a Table-1-style enumeration: a concrete pre-correction error
/// pattern and what the decoder does with it.
#[derive(Clone, Debug)]
pub struct OutcomeRow {
    /// Codeword positions (data and parity) that experienced errors.
    pub error_positions: Vec<usize>,
    /// The error syndrome the pattern produces.
    pub syndrome: SynMask,
    /// Classification of the result.
    pub outcome: Outcome,
    /// Data bit the decoder flipped although it had no error (a
    /// miscorrection), if any; `None` covers correct corrections, parity
    /// flips, and unmatched syndromes.
    pub miscorrected_bit: Option<usize>,
}

/// The CHARGED parity-bit support for a pattern whose CHARGED data bits are
/// `charged_data`: `supp(⊕_{a∈A} P_a)`.
pub fn charged_parity_mask(code: &LinearCode, charged_data: &[usize]) -> SynMask {
    code.parity_mask_of_ones(charged_data)
}

/// Orders up to this size use the direct `2^t` subset search; larger
/// patterns switch to the polynomial GF(2) span-membership check.
const SMALL_ORDER: usize = 10;

/// Closed-form test: can the pattern with CHARGED data bits `charged_data`
/// produce an observable miscorrection at DISCHARGED data bit `j`?
///
/// For small patterns this searches the `2^|A|` subsets directly. For
/// larger patterns (the paper's §5.2 RANDOM and ALL-charged families go up
/// to `|A| = k`) it uses the equivalent linear-algebra formulation: the
/// predicate holds iff `P_j`, restricted to the parity rows *outside*
/// `supp(w)`, lies in the span of the charged columns restricted the same
/// way — a single GF(2) solve instead of an exponential search.
///
/// # Panics
///
/// Panics if `j` is charged or out of range.
pub fn miscorrection_possible_at(code: &LinearCode, charged_data: &[usize], j: usize) -> bool {
    assert!(j < code.k(), "bit {j} out of dataword range");
    assert!(
        !charged_data.contains(&j),
        "miscorrections are only observable at DISCHARGED bits"
    );
    if charged_data.len() <= SMALL_ORDER {
        miscorrection_possible_at_brute(code, charged_data, j)
    } else {
        miscorrection_possible_at_span(code, charged_data, j)
    }
}

/// The direct `2^t` subset search over `∃ x ⊆ A` with
/// `supp(P_j ⊕ ⊕_{a∈x} P_a) ⊆ supp(w)`.
fn miscorrection_possible_at_brute(code: &LinearCode, charged_data: &[usize], j: usize) -> bool {
    let w = charged_parity_mask(code, charged_data);
    let pj = code.data_column(j);
    let t = charged_data.len();
    for x in 0u32..(1u32 << t) {
        let mut v = pj;
        for (idx, &a) in charged_data.iter().enumerate() {
            if x >> idx & 1 == 1 {
                v ^= code.data_column(a);
            }
        }
        if v.is_subset_of(w) {
            return true;
        }
    }
    false
}

/// Polynomial-time equivalent of the subset search.
///
/// `supp(v) ⊆ supp(w)` constrains `v` only on the rows where `w` is zero,
/// so the predicate asks whether some `⊕_{a∈x} P_a` agrees with `P_j` on
/// those rows — i.e. whether `P_j`, masked to `supp(w)`'s complement, lies
/// in the span of the similarly masked charged columns. That is one linear
/// system over at most `p` rows and `|A|` unknowns.
fn miscorrection_possible_at_span(code: &LinearCode, charged_data: &[usize], j: usize) -> bool {
    let w = charged_parity_mask(code, charged_data);
    let pj = code.data_column(j);
    let p = code.parity_bits();
    let masked_rows: Vec<usize> = (0..p).filter(|&r| !w.get(r)).collect();
    if masked_rows.is_empty() {
        // Every row of w is set: any v qualifies (x = ∅ works).
        return true;
    }
    let rows: Vec<BitVec> = masked_rows
        .iter()
        .map(|&r| {
            BitVec::from_bits(
                &charged_data
                    .iter()
                    .map(|&a| code.data_column(a).get(r))
                    .collect::<Vec<bool>>(),
            )
        })
        .collect();
    let rhs = BitVec::from_bits(
        &masked_rows
            .iter()
            .map(|&r| pj.get(r))
            .collect::<Vec<bool>>(),
    );
    beer_gf2::BitMatrix::from_rows(&rows).solve(&rhs).is_some()
}

/// All DISCHARGED data bits where the pattern with CHARGED data bits
/// `charged_data` can produce an observable miscorrection (closed form).
///
/// # Panics
///
/// See [`miscorrection_possible_at`].
pub fn observable_miscorrections(code: &LinearCode, charged_data: &[usize]) -> Vec<usize> {
    (0..code.k())
        .filter(|j| !charged_data.contains(j))
        .filter(|&j| miscorrection_possible_at(code, charged_data, j))
        .collect()
}

/// Brute-force enumeration of every retention-error pattern the codeword of
/// `charged_data` can experience, through the real decoder (Table 1).
///
/// Returns one [`OutcomeRow`] per subset of charged cells, including the
/// empty pattern.
///
/// # Panics
///
/// Panics if the pattern has more than 24 charged cells in total.
pub fn enumerate_outcomes(code: &LinearCode, charged_data: &[usize]) -> Vec<OutcomeRow> {
    let k = code.k();
    let data = BitVec::from_indices(k, charged_data);
    let codeword = code.encode(&data);
    let charged_cells: Vec<usize> = codeword.iter_ones().collect();
    assert!(
        charged_cells.len() <= MAX_BRUTE_FORCE_CELLS,
        "{} charged cells exceed the brute-force limit",
        charged_cells.len()
    );

    let mut rows = Vec::with_capacity(1 << charged_cells.len());
    for subset in 0u64..(1u64 << charged_cells.len()) {
        let mut erroneous = codeword.clone();
        let mut positions = Vec::new();
        for (idx, &cell) in charged_cells.iter().enumerate() {
            if subset >> idx & 1 == 1 {
                erroneous.set(cell, false); // CHARGED → DISCHARGED decay
                positions.push(cell);
            }
        }
        let result = code.decode(&erroneous);
        let outcome = if positions.is_empty() {
            Outcome::NoError
        } else if result.data == data {
            Outcome::Correct
        } else {
            Outcome::Uncorrectable
        };
        let miscorrected_bit = match result.correction {
            Correction::Data { bit } if !positions.contains(&bit) => Some(bit),
            _ => None,
        };
        rows.push(OutcomeRow {
            error_positions: positions,
            syndrome: result.syndrome,
            outcome,
            miscorrected_bit,
        });
    }
    rows
}

/// Brute-force version of [`observable_miscorrections`]: the set of
/// DISCHARGED data bits flipped by the decoder across every enumerated
/// error pattern. Used to validate the closed form.
///
/// # Panics
///
/// See [`enumerate_outcomes`].
pub fn observable_miscorrections_brute(code: &LinearCode, charged_data: &[usize]) -> Vec<usize> {
    let mut bits: Vec<usize> = enumerate_outcomes(code, charged_data)
        .into_iter()
        .filter_map(|row| row.miscorrected_bit)
        .filter(|b| !charged_data.contains(b))
        .collect();
    bits.sort_unstable();
    bits.dedup();
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming;

    #[test]
    fn table1_pattern_count_matches_paper() {
        // Eq. 3 codeword: dataword with only bit 2 charged under the Eq. 1
        // code → codeword [0 0 1 0 | 0 1 1] has 3 charged cells → 8 rows.
        let code = hamming::eq1_code();
        let rows = enumerate_outcomes(&code, &[2]);
        assert_eq!(rows.len(), 8);
        // First row: empty pattern.
        assert_eq!(rows[0].outcome, Outcome::NoError);
        assert!(rows[0].syndrome.is_zero());
    }

    #[test]
    fn table1_single_errors_are_correctable() {
        let code = hamming::eq1_code();
        for row in enumerate_outcomes(&code, &[2]) {
            if row.error_positions.len() == 1 {
                assert_eq!(row.outcome, Outcome::Correct, "row {row:?}");
            }
            if row.error_positions.len() >= 2 {
                assert_eq!(row.outcome, Outcome::Uncorrectable, "row {row:?}");
            }
        }
    }

    #[test]
    fn table2_profile_of_eq1_code() {
        // Paper Table 2: for the Eq. 1 code, only 1-CHARGED pattern 0 can
        // produce miscorrections, and it can produce them at bits 1, 2, 3.
        let code = hamming::eq1_code();
        assert_eq!(observable_miscorrections(&code, &[0]), vec![1, 2, 3]);
        assert_eq!(observable_miscorrections(&code, &[1]), Vec::<usize>::new());
        assert_eq!(observable_miscorrections(&code, &[2]), Vec::<usize>::new());
        assert_eq!(observable_miscorrections(&code, &[3]), Vec::<usize>::new());
    }

    #[test]
    fn closed_form_matches_brute_force_on_eq1() {
        let code = hamming::eq1_code();
        for a in 0..4 {
            assert_eq!(
                observable_miscorrections(&code, &[a]),
                observable_miscorrections_brute(&code, &[a]),
                "1-CHARGED pattern {a}"
            );
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_eq!(
                    observable_miscorrections(&code, &[a, b]),
                    observable_miscorrections_brute(&code, &[a, b]),
                    "2-CHARGED pattern ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_brute_force_on_random_codes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for k in [4usize, 6, 8, 11] {
            let code = hamming::random_sec(k, &mut rng);
            for a in 0..k {
                assert_eq!(
                    observable_miscorrections(&code, &[a]),
                    observable_miscorrections_brute(&code, &[a]),
                    "k={k} pattern {a}"
                );
            }
            // Sample of 2-CHARGED patterns.
            for a in 0..k.min(4) {
                for b in (a + 1)..k.min(5) {
                    assert_eq!(
                        observable_miscorrections(&code, &[a, b]),
                        observable_miscorrections_brute(&code, &[a, b]),
                        "k={k} pattern ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn subset_support_rule_for_one_charged() {
        // For 1-CHARGED patterns the predicate must reduce to support
        // containment of the columns.
        let code = hamming::eq1_code();
        for a in 0..4 {
            for j in 0..4 {
                if a == j {
                    continue;
                }
                let expected = code.data_column(j).is_subset_of(code.data_column(a));
                assert_eq!(
                    miscorrection_possible_at(&code, &[a], j),
                    expected,
                    "a={a} j={j}"
                );
            }
        }
    }

    #[test]
    fn all_charged_pattern_has_no_observable_bits() {
        let code = hamming::eq1_code();
        assert!(observable_miscorrections(&code, &[0, 1, 2, 3]).is_empty());
    }

    #[test]
    fn miscorrections_require_two_or_more_errors() {
        let code = hamming::eq1_code();
        for row in enumerate_outcomes(&code, &[0]) {
            if row.miscorrected_bit.is_some() {
                assert!(
                    row.error_positions.len() >= 2,
                    "miscorrection from fewer than 2 errors: {row:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "DISCHARGED")]
    fn predicate_rejects_charged_target() {
        let code = hamming::eq1_code();
        miscorrection_possible_at(&code, &[0], 0);
    }

    #[test]
    fn span_path_agrees_with_subset_search() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2112);
        for k in [8usize, 11, 16] {
            let code = hamming::random_sec(k, &mut rng);
            // Orders straddling the SMALL_ORDER switchover, checked
            // pairwise between the two implementations.
            for t in [1usize, 2, 3, 5, 8, 10] {
                if t >= k {
                    continue;
                }
                let charged: Vec<usize> = (0..t).collect();
                for j in t..k {
                    assert_eq!(
                        miscorrection_possible_at_brute(&code, &charged, j),
                        miscorrection_possible_at_span(&code, &charged, j),
                        "k={k} t={t} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn high_order_patterns_no_longer_panic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let code = hamming::random_sec(40, &mut rng);
        // Order 39: far beyond any feasible subset enumeration.
        let charged: Vec<usize> = (0..39).collect();
        let _ = miscorrection_possible_at(&code, &charged, 39);
        // An (almost) ALL-charged pattern typically charges every parity
        // bit, in which case every remaining bit is miscorrectable.
        let w = charged_parity_mask(&code, &charged);
        if (0..code.parity_bits()).all(|r| w.get(r)) {
            assert!(miscorrection_possible_at(&code, &charged, 39));
        }
    }
}
