//! Property-based tests for the ECC layer.
//!
//! The key cross-validation lives here: the closed-form miscorrection
//! predicate (which the BEER SAT encoding is built on) must agree with
//! brute-force enumeration through the real decoder on random codes and
//! random patterns.

use beer_ecc::{hamming, miscorrection, Correction, LinearCode};
use beer_gf2::BitVec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_code(k: usize, seed: u64) -> LinearCode {
    let mut rng = StdRng::seed_from_u64(seed);
    hamming::random_sec(k, &mut rng)
}

proptest! {
    #[test]
    fn decode_inverts_single_errors(
        k in 4usize..20,
        seed in any::<u64>(),
        data_bits in prop::collection::vec(any::<bool>(), 20),
        err_frac in 0.0f64..1.0,
    ) {
        let code = random_code(k, seed);
        let d = BitVec::from_bits(&data_bits[..k]);
        let c = code.encode(&d);
        let pos = ((code.n() as f64 - 1.0) * err_frac) as usize;
        let mut cw = c.clone();
        cw.flip(pos);
        let r = code.decode(&cw);
        prop_assert_eq!(r.data, d);
    }

    #[test]
    fn error_free_decode_is_clean(
        k in 4usize..24,
        seed in any::<u64>(),
        data_bits in prop::collection::vec(any::<bool>(), 24),
    ) {
        let code = random_code(k, seed);
        let d = BitVec::from_bits(&data_bits[..k]);
        let c = code.encode(&d);
        let r = code.decode(&c);
        prop_assert_eq!(r.data, d);
        prop_assert_eq!(r.correction, Correction::None);
        prop_assert!(r.syndrome.is_zero());
    }

    #[test]
    fn closed_form_equals_brute_force_1charged(
        k in 4usize..12,
        seed in any::<u64>(),
        a_frac in 0.0f64..1.0,
    ) {
        let code = random_code(k, seed);
        let a = ((k - 1) as f64 * a_frac) as usize;
        prop_assert_eq!(
            miscorrection::observable_miscorrections(&code, &[a]),
            miscorrection::observable_miscorrections_brute(&code, &[a])
        );
    }

    #[test]
    fn closed_form_equals_brute_force_2charged(
        k in 4usize..10,
        seed in any::<u64>(),
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let code = random_code(k, seed);
        let a = ((k - 1) as f64 * a_frac) as usize;
        let mut b = ((k - 1) as f64 * b_frac) as usize;
        if a == b { b = (b + 1) % k; }
        prop_assert_eq!(
            miscorrection::observable_miscorrections(&code, &[a, b]),
            miscorrection::observable_miscorrections_brute(&code, &[a, b])
        );
    }

    #[test]
    fn closed_form_equals_brute_force_3charged(
        k in 5usize..9,
        seed in any::<u64>(),
    ) {
        let code = random_code(k, seed);
        let charged = [0usize, 2, 4];
        prop_assert_eq!(
            miscorrection::observable_miscorrections(&code, &charged),
            miscorrection::observable_miscorrections_brute(&code, &charged)
        );
    }

    #[test]
    fn outcome_enumeration_is_exhaustive(
        k in 4usize..10,
        seed in any::<u64>(),
        a_frac in 0.0f64..1.0,
    ) {
        let code = random_code(k, seed);
        let a = ((k - 1) as f64 * a_frac) as usize;
        let rows = miscorrection::enumerate_outcomes(&code, &[a]);
        // 1 + weight(parity of pattern) charged cells → 2^cells rows.
        let charged_cells = 1 + miscorrection::charged_parity_mask(&code, &[a]).weight();
        prop_assert_eq!(rows.len(), 1usize << charged_cells);
    }

    #[test]
    fn reconstruction_inverts_every_miscorrection(
        k in 4usize..10,
        seed in any::<u64>(),
        a_frac in 0.0f64..1.0,
    ) {
        // For every enumerated error pattern that yields a data
        // miscorrection, BEEP-style reconstruction must recover the exact
        // pre-correction codeword.
        let code = random_code(k, seed);
        let a = ((k - 1) as f64 * a_frac) as usize;
        let data = BitVec::from_indices(k, &[a]);
        let codeword = code.encode(&data);
        for row in miscorrection::enumerate_outcomes(&code, &[a]) {
            let Some(bit) = row.miscorrected_bit else { continue };
            if data.get(bit) {
                continue; // only DISCHARGED-bit observations are exact
            }
            let mut erroneous = codeword.clone();
            for &p in &row.error_positions {
                erroneous.flip(p);
            }
            let decoded = code.decode(&erroneous);
            let recon = code.reconstruct_precorrection_codeword(&decoded.data, bit);
            prop_assert_eq!(recon, erroneous);
        }
    }

    #[test]
    fn generator_and_parity_check_are_orthogonal(
        k in 2usize..30,
        seed in any::<u64>(),
    ) {
        let code = random_code(k, seed);
        let h = code.parity_check_matrix();
        let g = code.generator_matrix();
        let zero = beer_gf2::BitMatrix::zeros(code.parity_bits(), k);
        prop_assert_eq!(h.mul(&g), zero);
    }

    #[test]
    fn equivalence_respected_by_canonicalization(
        k in 4usize..12,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        use beer_ecc::equivalence;
        use rand::seq::SliceRandom;
        let code = random_code(k, seed);
        let mut perm: Vec<usize> = (0..code.parity_bits()).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        let permuted = equivalence::permute_parity_rows(&code, &perm);
        prop_assert!(equivalence::equivalent(&code, &permuted));
        prop_assert_eq!(
            equivalence::canonical_parity(&code),
            equivalence::canonical_parity(&permuted)
        );
    }
}
