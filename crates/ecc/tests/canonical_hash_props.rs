//! Property tests pinning the canonical form and its content hash — the
//! cache key of `beer_service`'s recovered-code registry.
//!
//! The residual freedom BEER cannot observe (paper §4.2.1) is the labeling
//! of the parity bits: permuting the rows of `P` — equivalently, permuting
//! the identity columns of `H = [P | I]` together with the rows — yields a
//! code with identical externally visible behaviour. `canonicalize` must
//! therefore be invariant under every such permutation, and
//! `canonical_hash` must collide exactly when `equivalent()` holds, so the
//! service can answer "have we seen this ECC function before?" in O(1)
//! without ever conflating two functions.

use beer_ecc::{equivalence, hamming, LinearCode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn random_code(k: usize, seed: u64) -> LinearCode {
    hamming::random_sec(k, &mut StdRng::seed_from_u64(seed))
}

fn random_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    perm
}

proptest! {
    #[test]
    fn canonicalize_is_invariant_under_parity_relabelings(
        k in 4usize..14,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        perm_seed2 in any::<u64>(),
    ) {
        let code = random_code(k, seed);
        let p = code.parity_bits();
        // One permutation, and a composition of two (the permutations form
        // a group; canonicalize must collapse all of it).
        let once = equivalence::permute_parity_rows(&code, &random_perm(p, perm_seed));
        let twice = equivalence::permute_parity_rows(&once, &random_perm(p, perm_seed2));
        for permuted in [&once, &twice] {
            prop_assert!(equivalence::equivalent(&code, permuted));
            prop_assert_eq!(
                equivalence::canonicalize(&code).parity_submatrix(),
                equivalence::canonicalize(permuted).parity_submatrix()
            );
        }
        // Idempotence: the canonical form is a fixed point.
        let canon = equivalence::canonicalize(&code);
        prop_assert_eq!(
            canon.parity_submatrix(),
            equivalence::canonicalize(&canon).parity_submatrix()
        );
    }

    #[test]
    fn canonical_hash_collides_iff_equivalent(
        k in 4usize..14,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let a = random_code(k, seed_a);
        let b = random_code(k, seed_b);

        // Equivalent representatives must hash identically.
        let relabeled =
            equivalence::permute_parity_rows(&a, &random_perm(a.parity_bits(), perm_seed));
        prop_assert_eq!(equivalence::canonical_hash(&a), equivalence::canonical_hash(&relabeled));

        // And the hash must agree with equivalent() in both directions:
        // the hash covers exactly the canonical form, so inequivalent
        // codes differ (up to 64-bit FNV collisions, which this sampled
        // domain does not produce — and which the service guards against
        // by confirming with equivalent() inside a hash bucket).
        prop_assert_eq!(
            equivalence::canonical_hash(&a) == equivalence::canonical_hash(&b),
            equivalence::equivalent(&a, &b)
        );
    }

    #[test]
    fn canonical_hash_is_blind_to_everything_but_the_canonical_form(
        k in 4usize..12,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        // Hashing the canonical representative directly equals hashing any
        // member of the class: canonical_hash ∘ canonicalize = canonical_hash.
        let code = random_code(k, seed);
        let permuted =
            equivalence::permute_parity_rows(&code, &random_perm(code.parity_bits(), perm_seed));
        let canon = equivalence::canonicalize(&permuted);
        prop_assert_eq!(
            equivalence::canonical_hash(&canon),
            equivalence::canonical_hash(&code)
        );
    }
}
