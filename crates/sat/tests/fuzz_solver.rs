//! Randomized cross-validation of the CDCL solver against brute force.
//!
//! Small random CNF instances are solved both by exhaustive truth-table
//! evaluation and by the solver; answers must agree, and any model the
//! solver returns must satisfy every clause.

use beer_sat::{Lit, SatResult, Solver, Var};
use proptest::prelude::*;

/// A random clause set over `n_vars` variables.
fn clauses_strategy(n_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<Lit>>> {
    let clause = prop::collection::vec(
        (0..n_vars, any::<bool>()).prop_map(|(v, pos)| Lit::new(Var::new(v), pos)),
        1..=3,
    );
    prop::collection::vec(clause, 0..=max_clauses)
}

fn brute_force_sat(n_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    'outer: for mask in 0u64..(1 << n_vars) {
        for c in clauses {
            let sat = c.iter().any(|l| {
                let val = mask >> l.var().index() & 1 == 1;
                if l.is_positive() {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn count_models_brute(n_vars: usize, clauses: &[Vec<Lit>]) -> usize {
    (0u64..(1 << n_vars))
        .filter(|mask| {
            clauses.iter().all(|c| {
                c.iter().any(|l| {
                    let val = mask >> l.var().index() & 1 == 1;
                    if l.is_positive() {
                        val
                    } else {
                        !val
                    }
                })
            })
        })
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn solver_agrees_with_brute_force(clauses in clauses_strategy(8, 30)) {
        let expected = brute_force_sat(8, &clauses);
        let mut s = Solver::new();
        s.reserve_vars(8);
        for c in &clauses {
            s.add_clause(c);
        }
        let got = s.solve() == SatResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            for c in &clauses {
                prop_assert!(
                    c.iter().any(|&l| s.lit_value(l) == Some(true)),
                    "model violates clause {:?}", c
                );
            }
        }
    }

    #[test]
    fn enumeration_matches_brute_force_count(clauses in clauses_strategy(6, 18)) {
        let expected = count_models_brute(6, &clauses);
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        for c in &clauses {
            s.add_clause(c);
        }
        let got = beer_sat::enumerate_models(&mut s, &vars, 1 << 6, |_| {});
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn answers_stable_across_incremental_resolves(clauses in clauses_strategy(7, 25)) {
        // Solving twice (with learnt clauses persisting) must not change the
        // answer; adding one clause of the formula late must also agree with
        // solving everything upfront.
        let mut s = Solver::new();
        s.reserve_vars(7);
        let (last, rest) = match clauses.split_last() {
            Some(x) => x,
            None => return Ok(()),
        };
        for c in rest {
            s.add_clause(c);
        }
        let _ = s.solve();
        s.add_clause(last);
        let incremental = s.solve() == SatResult::Sat;
        prop_assert_eq!(incremental, brute_force_sat(7, &clauses));
    }
}
