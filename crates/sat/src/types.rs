//! Core SAT identifier types: variables, literals, and ternary values.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from zero.
///
/// # Examples
///
/// ```
/// use beer_sat::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given zero-based index.
    pub fn new(index: usize) -> Self {
        Var(index as u32)
    }

    /// Zero-based index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Positive literal of the variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Negative literal of the variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// Literal of this variable with the given polarity.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2·var + sign` where `sign = 1` means *negated*; this gives a
/// dense index space used directly for watch lists.
///
/// # Examples
///
/// ```
/// use beer_sat::{Lit, Var};
/// let x = Var::new(0).positive();
/// assert_eq!(!x, Var::new(0).negative());
/// assert_eq!((!x).var(), x.var());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var`, positive if `positive` is true.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` for a positive (non-negated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code usable as an array index (`2·var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// DIMACS representation: 1-based, negative when negated.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (non-zero, 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal cannot be zero");
        let var = Var::new(value.unsigned_abs() as usize - 1);
        Lit::new(var, value > 0)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().index())
        } else {
            write!(f, "¬v{}", self.var().index())
        }
    }
}

/// A ternary truth value: true, false, or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts from `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `Some(bool)` if assigned, else `None`.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var::new(5);
        let pos = v.positive();
        let neg = v.negative();
        assert_eq!(pos.var(), v);
        assert_eq!(neg.var(), v);
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
        assert_eq!(!pos, neg);
        assert_eq!(!!pos, pos);
        assert_eq!(Lit::from_code(pos.code()), pos);
    }

    #[test]
    fn dense_codes_are_adjacent() {
        let v = Var::new(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
    }

    #[test]
    fn dimacs_conversion() {
        let l = Var::new(0).negative();
        assert_eq!(l.to_dimacs(), -1);
        assert_eq!(Lit::from_dimacs(-1), l);
        assert_eq!(Lit::from_dimacs(42), Var::new(41).positive());
    }

    #[test]
    #[should_panic(expected = "cannot be zero")]
    fn dimacs_zero_rejected() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_algebra() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::False.to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
    }
}
