//! Model enumeration over a subset of variables.

use crate::solver::{SatResult, Solver};
use crate::types::{Lit, Var};

/// Enumerates satisfying assignments projected onto `vars`, up to `max`
/// models, invoking `on_model` for each projected model.
///
/// After each model the projection is blocked, so each *projected*
/// assignment is reported exactly once even if many full models extend it.
/// Returns the number of models found; a return value equal to `max` means
/// the enumeration may have been truncated.
///
/// This is exactly BEER's uniqueness check (§5.3): solve for `P`, block it,
/// and re-solve until UNSAT.
///
/// # Examples
///
/// ```
/// use beer_sat::{enumerate_models, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// let mut models = Vec::new();
/// let n = enumerate_models(&mut s, &[a, b], 10, |m| models.push(m.to_vec()));
/// assert_eq!(n, 3); // TT, TF, FT
/// ```
pub fn enumerate_models(
    solver: &mut Solver,
    vars: &[Var],
    max: usize,
    mut on_model: impl FnMut(&[bool]),
) -> usize {
    let mut found = 0;
    while found < max && solver.solve() == SatResult::Sat {
        let assignment: Vec<bool> = vars
            .iter()
            .map(|&v| solver.value(v).unwrap_or(false))
            .collect();
        on_model(&assignment);
        found += 1;
        let block: Vec<Lit> = vars
            .iter()
            .zip(&assignment)
            .map(|(&v, &b)| v.lit(!b))
            .collect();
        if block.is_empty() || !solver.add_clause(&block) {
            break; // blocking the empty projection: only one model class
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_exact_model_count() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        // x0 ∨ x1, no constraint on x2; projected onto (x0, x1): 3 models.
        s.add_clause(&[vars[0].positive(), vars[1].positive()]);
        let n = enumerate_models(&mut s, &vars[..2], 100, |_| {});
        assert_eq!(n, 3);
    }

    #[test]
    fn respects_max_cap() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let n = enumerate_models(&mut s, &vars, 5, |_| {});
        assert_eq!(n, 5);
    }

    #[test]
    fn unsat_formula_yields_zero() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        s.add_clause(&[v.negative()]);
        let n = enumerate_models(&mut s, &[v], 10, |_| {});
        assert_eq!(n, 0);
    }

    #[test]
    fn projection_dedupes_full_models() {
        let mut s = Solver::new();
        let a = s.new_var();
        let _free = s.new_var(); // unconstrained, not projected
        s.add_clause(&[a.positive()]);
        let mut models = Vec::new();
        let n = enumerate_models(&mut s, &[a], 10, |m| models.push(m.to_vec()));
        assert_eq!(n, 1);
        assert_eq!(models, vec![vec![true]]);
    }

    #[test]
    fn empty_projection_reports_once() {
        let mut s = Solver::new();
        let _ = s.new_var();
        let n = enumerate_models(&mut s, &[], 10, |_| {});
        assert_eq!(n, 1);
    }
}
