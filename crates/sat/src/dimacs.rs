//! DIMACS CNF reading and writing.
//!
//! Used by the test suite to cross-check the solver on hand-written
//! instances and to dump BEER's generated formulas for external debugging.

use crate::types::Lit;
use std::fmt::Write as _;

/// A parsed DIMACS problem: variable count plus clause list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Problem {
    /// Declared number of variables.
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

/// An error produced while parsing DIMACS text.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DIMACS parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// Accepts comment lines (`c …`), one `p cnf <vars> <clauses>` header, and
/// clauses terminated by `0`. Clauses may span lines. The declared counts
/// are validated loosely: variables beyond the declared count grow the
/// problem, mirroring common solver behaviour.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers or non-integer tokens.
///
/// # Examples
///
/// ```
/// use beer_sat::dimacs;
///
/// let p = dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n").unwrap();
/// assert_eq!(p.num_vars, 2);
/// assert_eq!(p.clauses.len(), 2);
/// ```
pub fn parse(text: &str) -> Result<Problem, ParseDimacsError> {
    let mut num_vars = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_header = false;

    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            if saw_header {
                return Err(ParseDimacsError {
                    line: line_no,
                    message: "duplicate problem header".into(),
                });
            }
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseDimacsError {
                    line: line_no,
                    message: format!("malformed header: {trimmed:?}"),
                });
            }
            num_vars = parts[2].parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: format!("bad variable count: {:?}", parts[2]),
            })?;
            saw_header = true;
            continue;
        }
        for tok in trimmed.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: format!("bad literal token: {tok:?}"),
            })?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let lit = Lit::from_dimacs(value);
                num_vars = num_vars.max(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Problem { num_vars, clauses })
}

/// Renders a clause list as DIMACS CNF text.
///
/// # Examples
///
/// ```
/// use beer_sat::{dimacs, Lit};
///
/// let clauses = vec![vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]];
/// let text = dimacs::write(2, &clauses);
/// assert!(text.contains("p cnf 2 1"));
/// assert!(text.contains("1 -2 0"));
/// ```
pub fn write(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for l in c {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};

    #[test]
    fn parse_write_roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 3 0\n-1 2 0\n";
        let p = parse(text).unwrap();
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.clauses.len(), 2);
        let rendered = write(p.num_vars, &p.clauses);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn clauses_spanning_lines() {
        let p = parse("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(p.clauses.len(), 1);
        assert_eq!(p.clauses[0].len(), 2);
    }

    #[test]
    fn var_count_grows_beyond_header() {
        let p = parse("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(p.num_vars, 5);
    }

    #[test]
    fn rejects_garbage_tokens() {
        assert!(parse("p cnf 1 1\nfoo 0\n").is_err());
        assert!(parse("p dnf 1 1\n").is_err());
        assert!(parse("p cnf 1 1\np cnf 1 1\n").is_err());
    }

    #[test]
    fn parsed_problem_solves() {
        // (x1 ∨ x2) ∧ (¬x1) ∧ (¬x2) is UNSAT.
        let p = parse("p cnf 2 3\n1 2 0\n-1 0\n-2 0\n").unwrap();
        let mut s = Solver::new();
        s.reserve_vars(p.num_vars);
        for c in &p.clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
