//! A from-scratch CDCL SAT solver with a Tseitin circuit layer.
//!
//! The BEER paper (Patel et al., MICRO 2020) formulates on-die ECC recovery
//! as a satisfiability problem and solves it with Z3. This crate provides
//! the equivalent substrate for the reproduction:
//!
//! * [`Solver`] — a conflict-driven clause-learning (CDCL) solver with
//!   two-watched-literal propagation, first-UIP clause learning, VSIDS
//!   branching with phase saving, Luby restarts, and learnt-clause database
//!   reduction. Clauses may be added between [`Solver::solve`] calls, which
//!   is how BEER enumerates every parity-check matrix consistent with a
//!   miscorrection profile (each found model is blocked and the solver is
//!   re-run).
//! * [`CnfBuilder`] — a circuit-to-CNF layer with memoized Tseitin gates
//!   (AND/OR/XOR/IFF), cardinality constraints, and the lexicographic row
//!   ordering used to canonicalize parity-check matrices. Builders can
//!   flush incrementally into a live solver ([`CnfBuilder::flush_into`]),
//!   keeping their gate memoization across flushes.
//! * [`SolverSession`] — incremental solving with assumption-scoped,
//!   retractable constraint groups: the substrate of BEER's progressive
//!   collect-and-solve pipeline (§6.3), where each uniqueness check's
//!   blocking clauses are retracted while learned clauses persist.
//! * [`dimacs`] — DIMACS CNF import/export for debugging and testing.
//!
//! # Examples
//!
//! ```
//! use beer_sat::{CnfBuilder, SatResult};
//!
//! let mut cnf = CnfBuilder::new();
//! let a = cnf.new_lit();
//! let b = cnf.new_lit();
//! let y = cnf.xor(a, b);
//! cnf.assert_lit(y); // a XOR b must hold
//! cnf.assert_lit(a);
//!
//! let mut solver = cnf.into_solver();
//! assert_eq!(solver.solve(), SatResult::Sat);
//! assert!(solver.lit_value(a).unwrap());
//! assert!(!solver.lit_value(b).unwrap()); // forced by the XOR
//! ```

mod cnf;
pub mod dimacs;
mod enumerate;
mod session;
mod solver;
mod types;

pub use cnf::CnfBuilder;
pub use enumerate::enumerate_models;
pub use session::{ScopeId, SolverSession};
pub use solver::{SatResult, Solver, SolverStats};
pub use types::{LBool, Lit, Var};
