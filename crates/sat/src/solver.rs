//! The CDCL solver core.
//!
//! A conventional MiniSat-style architecture: clauses live in a slotted
//! arena, propagation uses two watched literals with a blocker fast path,
//! conflicts are analyzed to the first unique implication point (1UIP) with
//! reason-based clause minimization, branching uses exponential VSIDS with
//! phase saving, and restarts follow the Luby sequence.

use crate::types::{LBool, Lit, Var};

/// Index of a clause in the solver's arena.
type ClauseRef = u32;
const CREF_UNDEF: ClauseRef = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    /// Some other literal of the clause; if it is already true the clause is
    /// satisfied and the watcher list walk can skip loading the clause.
    blocker: Lit,
}

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
}

/// Running counters and a memory estimate for a [`Solver`].
///
/// `memory_bytes` approximates the heap owned by the solver (clause arena,
/// watch lists, per-variable metadata); BEER's Figure 6 reports it as the
/// SAT-solver memory usage.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of variables created.
    pub vars: usize,
    /// Number of problem (non-learnt) clauses added.
    pub clauses: usize,
    /// Number of learnt clauses currently in the database.
    pub learnts: usize,
    /// Total conflicts encountered.
    pub conflicts: u64,
    /// Total decisions made.
    pub decisions: u64,
    /// Total literal propagations.
    pub propagations: u64,
    /// Total restarts performed.
    pub restarts: u64,
    /// Approximate heap memory owned by the solver, in bytes.
    pub memory_bytes: usize,
}

/// A CDCL SAT solver.
///
/// Clauses can be added at any point between `solve()` calls; the solver
/// automatically backtracks to the root level first. This supports the
/// model-enumeration loop BEER uses to check solution uniqueness (§5.3 of
/// the paper): solve, block the model, solve again.
///
/// # Examples
///
/// ```
/// use beer_sat::{SatResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.lit_value(b), Some(true));
/// s.add_clause(&[!b]);
/// assert_eq!(s.solve(), SatResult::Unsat);
/// ```
pub struct Solver {
    clauses: Vec<Clause>,
    free_list: Vec<ClauseRef>,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,

    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,

    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order_heap: IndexedHeap,

    seen: Vec<bool>,
    analyze_toclear: Vec<Var>,

    /// False once a top-level conflict is derived; the instance is then
    /// permanently unsatisfiable.
    ok: bool,
    model_valid: bool,

    stats: SolverStats,
    max_learnts_base: f64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            free_list: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order_heap: IndexedHeap::new(),
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            ok: true,
            model_valid: false,
            stats: SolverStats::default(),
            max_learnts_base: 4000.0,
        }
    }

    /// Creates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(CREF_UNDEF);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order_heap.insert(v, &self.activity);
        self.stats.vars += 1;
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Current value of a variable under the last model (after a `Sat`
    /// result) or the current partial assignment.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index()].to_option()
    }

    /// Current value of a literal (see [`Solver::value`]).
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var())
            .map(|b| if l.is_positive() { b } else { !b })
    }

    /// Returns `true` if no top-level conflict has been derived yet.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Solver statistics, with a current memory estimate.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.memory_bytes = self.estimate_memory();
        s
    }

    fn estimate_memory(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = 0usize;
        bytes += self.clauses.capacity() * size_of::<Clause>();
        for c in &self.clauses {
            bytes += c.lits.capacity() * size_of::<Lit>();
        }
        bytes += self.watches.capacity() * size_of::<Vec<Watcher>>();
        for w in &self.watches {
            bytes += w.capacity() * size_of::<Watcher>();
        }
        bytes += self.assigns.capacity() * size_of::<LBool>();
        bytes += self.polarity.capacity();
        bytes += self.level.capacity() * 4;
        bytes += self.reason.capacity() * 4;
        bytes += self.trail.capacity() * size_of::<Lit>();
        bytes += self.activity.capacity() * 8;
        bytes += self.order_heap.heap.capacity() * size_of::<Var>();
        bytes += self.order_heap.indices.capacity() * 4;
        bytes += self.seen.capacity();
        bytes
    }

    #[inline]
    fn lit_val(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable at the root level.
    ///
    /// Duplicate literals are removed, tautologies are dropped, and
    /// literals already false at the root level are stripped. May be called
    /// between `solve()` invocations (the solver backtracks to the root).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was never created.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        self.model_valid = false;

        let mut ls: Vec<Lit> = lits.to_vec();
        for &l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} refers to an unknown variable"
            );
        }
        ls.sort_unstable();
        ls.dedup();
        // Tautology or satisfied-at-root check, then strip false-at-root lits.
        let mut i = 0;
        while i + 1 < ls.len() {
            if ls[i].var() == ls[i + 1].var() {
                return true; // contains l and ¬l: tautology
            }
            i += 1;
        }
        let mut filtered = Vec::with_capacity(ls.len());
        for &l in &ls {
            match self.lit_val(l) {
                LBool::True => return true, // already satisfied forever
                LBool::False => {}          // root-level false: drop
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], CREF_UNDEF);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_new_clause(filtered, false);
                self.stats.clauses += 1;
                true
            }
        }
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let clause = Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        };
        let cref = if let Some(slot) = self.free_list.pop() {
            self.clauses[slot as usize] = clause;
            slot
        } else {
            self.clauses.push(clause);
            (self.clauses.len() - 1) as ClauseRef
        };
        let (l0, l1) = {
            let c = &self.clauses[cref as usize];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnts += 1;
        }
        cref
    }

    #[inline]
    fn unchecked_enqueue(&mut self, l: Lit, from: ClauseRef) {
        debug_assert_eq!(self.lit_val(l), LBool::Undef);
        let vi = l.var().index();
        self.assigns[vi] = LBool::from_bool(l.is_positive());
        self.level[vi] = self.decision_level();
        self.reason[vi] = from;
        self.trail.push(l);
    }

    /// Propagates all enqueued assignments. Returns the conflicting clause
    /// if a conflict is found.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Blocker fast path.
                if self.lit_val(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses[cref as usize].deleted {
                    continue; // drop watcher of a deleted clause
                }
                // Make sure the false literal (¬p) is at position 1.
                let false_lit = !p;
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref as usize].lits[0];
                let w_new = Watcher {
                    cref,
                    blocker: first,
                };
                if first != w.blocker && self.lit_val(first) == LBool::True {
                    ws[j] = w_new;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.lit_val(lk) != LBool::False {
                        let c = &mut self.clauses[cref as usize];
                        c.lits.swap(1, k);
                        self.watches[(!lk).code()].push(w_new);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[j] = w_new;
                j += 1;
                if self.lit_val(first) == LBool::False {
                    // Conflict: copy back remaining watchers and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// Analyzes a conflict to the first UIP; returns the learnt clause
    /// (asserting literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder
        let mut path_c: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            debug_assert_ne!(confl, CREF_UNDEF, "reason missing during analyze");
            if self.clauses[confl as usize].learnt {
                self.bump_clause_activity(confl);
            }
            let start = usize::from(p.is_some());
            let clen = self.clauses[confl as usize].lits.len();
            for k in start..clen {
                let q = self.clauses[confl as usize].lits[k];
                let qv = q.var();
                if !self.seen[qv.index()] && self.level[qv.index()] > 0 {
                    self.bump_var_activity(qv);
                    self.seen[qv.index()] = true;
                    if self.level[qv.index()] >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            confl = self.reason[pl.var().index()];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            if path_c == 0 {
                break;
            }
        }
        learnt[0] = !p.expect("1UIP literal");

        // Reason-based minimization: drop literals implied by the rest.
        self.analyze_toclear.clear();
        for l in &learnt {
            self.analyze_toclear.push(l.var());
        }
        for l in &learnt[1..] {
            self.seen[l.var().index()] = true;
        }
        let mut minimized = Vec::with_capacity(learnt.len());
        minimized.push(learnt[0]);
        for &l in &learnt[1..] {
            if !self.literal_is_redundant(l) {
                minimized.push(l);
            }
        }
        for v in &self.analyze_toclear {
            self.seen[v.index()] = false;
        }
        let learnt = minimized;

        // Backtrack level: highest level below the current one.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            self.level[learnt[max_i].var().index()]
        };
        let mut learnt = learnt;
        if learnt.len() > 1 {
            // Put a literal of the backtrack level in position 1 (second watch).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
        }
        (learnt, bt)
    }

    /// A literal is redundant in the learnt clause if its reason clause
    /// consists only of literals already in the clause (or at level 0).
    fn literal_is_redundant(&self, l: Lit) -> bool {
        let r = self.reason[l.var().index()];
        if r == CREF_UNDEF {
            return false;
        }
        let c = &self.clauses[r as usize];
        for &q in &c.lits[1..] {
            let qi = q.var().index();
            if !self.seen[qi] && self.level[qi] > 0 {
                return false;
            }
        }
        true
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail non-empty");
            let vi = l.var().index();
            self.polarity[vi] = l.is_positive();
            self.assigns[vi] = LBool::Undef;
            self.reason[vi] = CREF_UNDEF;
            self.order_heap.insert(l.var(), &self.activity);
        }
        self.qhead = bound;
        self.trail_lim.truncate(target as usize);
    }

    fn bump_var_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order_heap.update(v, &self.activity);
    }

    fn bump_clause_activity(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for r in &self.learnt_refs {
                self.clauses[*r as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order_heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Removes the worst half of the learnt clauses (by activity), keeping
    /// clauses that are the reason for a current assignment and binary
    /// clauses.
    fn reduce_db(&mut self) {
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            ca.activity
                .partial_cmp(&cb.activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let limit = refs.len() / 2;
        let mut kept = Vec::with_capacity(refs.len());
        for (i, &cref) in refs.iter().enumerate() {
            let keep = {
                let c = &self.clauses[cref as usize];
                i >= limit || c.lits.len() == 2 || self.is_locked(cref)
            };
            if keep {
                kept.push(cref);
            } else {
                // Detach both watchers eagerly: the slot is recycled, so no
                // stale watcher may keep pointing at it.
                let (l0, l1) = {
                    let c = &self.clauses[cref as usize];
                    (c.lits[0], c.lits[1])
                };
                self.watches[(!l0).code()].retain(|w| w.cref != cref);
                self.watches[(!l1).code()].retain(|w| w.cref != cref);
                self.clauses[cref as usize].deleted = true;
                self.clauses[cref as usize].lits = Vec::new();
                self.free_list.push(cref);
                self.stats.learnts -= 1;
            }
        }
        self.learnt_refs = kept;
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let c = &self.clauses[cref as usize];
        if c.lits.is_empty() {
            return false;
        }
        let l0 = c.lits[0];
        self.lit_val(l0) == LBool::True && self.reason[l0.var().index()] == cref
    }

    /// Solves the current formula.
    ///
    /// After `Sat`, the full model is available through [`Solver::value`] /
    /// [`Solver::lit_value`] until the next clause is added. After `Unsat`
    /// the instance stays unsatisfiable forever (clause addition included).
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under temporary assumptions: literals treated as decisions
    /// that the search may never undo. `Unsat` here means *unsatisfiable
    /// under the assumptions*; the formula itself stays usable (unlike an
    /// `Unsat` from [`Solver::solve`], which is permanent).
    ///
    /// # Panics
    ///
    /// Panics if an assumption refers to an unknown variable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a:?} refers to an unknown variable"
            );
        }
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        self.model_valid = false;
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut restarts: u64 = 0;
        let restart_base: u64 = 100;
        let mut conflicts_until_restart = restart_base * luby(restarts);
        let mut max_learnts = (self.max_learnts_base + 0.3 * self.stats.clauses as f64).max(1000.0);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], CREF_UNDEF);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_new_clause(learnt, true);
                    self.bump_clause_activity(cref);
                    self.unchecked_enqueue(asserting, cref);
                }
                self.decay_activities();
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    restarts += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart = restart_base * luby(restarts);
                    self.cancel_until(0);
                    continue;
                }
                if self.learnt_refs.len() as f64 >= max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    max_learnts *= 1.1;
                }
                // Re-take any assumptions the last backtrack undid before
                // making free decisions (MiniSat-style assumption levels).
                let mut assumed = false;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_val(a) {
                        LBool::True => {
                            // Already satisfied: open a dummy level so the
                            // index keeps advancing.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // The formula forces ¬a: UNSAT under assumptions.
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, CREF_UNDEF);
                            assumed = true;
                            break;
                        }
                    }
                }
                if assumed {
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model_valid = true;
                        return SatResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(v.lit(phase), CREF_UNDEF);
                    }
                }
            }
        }
    }

    /// Returns the model as a vector of booleans indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if the last `solve()` did not return `Sat` or a clause has
    /// been added since.
    pub fn model(&self) -> Vec<bool> {
        assert!(self.model_valid, "no model available");
        self.assigns
            .iter()
            .map(|a| a.to_option().unwrap_or(false))
            .collect()
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8…
fn luby(mut x: u64) -> u64 {
    // Find the finite subsequence that contains index x, then the position
    // of x within it (MiniSat's formulation, base 2).
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Max-heap over variables ordered by activity, with a position index for
/// O(log n) increase-key.
struct IndexedHeap {
    heap: Vec<Var>,
    indices: Vec<i32>,
}

impl IndexedHeap {
    fn new() -> Self {
        IndexedHeap {
            heap: Vec::new(),
            indices: Vec::new(),
        }
    }

    fn contains(&self, v: Var) -> bool {
        v.index() < self.indices.len() && self.indices[v.index()] >= 0
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.indices.len() <= v.index() {
            self.indices.resize(v.index() + 1, -1);
        }
        if self.contains(v) {
            return;
        }
        self.indices[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            let i = self.indices[v.index()] as usize;
            self.sift_up(i, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.indices[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.indices[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.indices[self.heap[a].index()] = a as i32;
        self.indices[self.heap[b].index()] = b as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(), SatResult::Sat);
        for l in &v {
            assert_eq!(s.lit_value(*l), Some(true));
        }
    }

    #[test]
    fn direct_contradiction_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        assert!(s.add_clause(&[a]));
        assert!(!s.add_clause(&[!a]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        assert!(s.add_clause(&[a, !a]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, a, b, b]);
        s.add_clause(&[!a]);
        s.add_clause(&[!b, !a]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.lit_value(b), Some(true));
    }

    #[test]
    fn simple_conflict_requires_learning() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ c) ∧ (¬a ∨ ¬c) is UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], !v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        s.add_clause(&[!v[0], !v[2]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon somewhere; no two share.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3).map(|_| lits(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_5_into_4_is_unsat() {
        let n = 5;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n).map(|_| lits(&mut s, n - 1)).collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn incremental_solving_with_blocking_clauses() {
        // 3 free variables: enumerate all 8 models via blocking.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], !v[0]]); // no-op to make the formula non-empty
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 8, "more models than the space allows");
            let block: Vec<Lit> = v
                .iter()
                .map(|&l| {
                    if s.lit_value(l).expect("assigned") {
                        !l
                    } else {
                        l
                    }
                })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn model_respects_all_clauses() {
        // Random-ish structured instance: a chain of implications + XOR-like
        // constraints; verify the returned model satisfies every clause.
        let mut s = Solver::new();
        let v = lits(&mut s, 8);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![v[0], v[1], v[2]],
            vec![!v[0], v[3]],
            vec![!v[1], v[4]],
            vec![!v[2], v[5]],
            vec![!v[3], !v[4]],
            vec![!v[5], v[6]],
            vec![v[6], v[7]],
            vec![!v[6], !v[7]],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.lit_value(l) == Some(true)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn stats_track_activity() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        s.solve();
        let st = s.stats();
        assert_eq!(st.vars, 4);
        assert_eq!(st.clauses, 2);
        assert!(st.memory_bytes > 0);
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        // Assume everything false except nothing: UNSAT under assumptions.
        assert_eq!(
            s.solve_with_assumptions(&[!v[0], !v[1], !v[2]]),
            SatResult::Unsat
        );
        // But the formula itself is still satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
        // And different assumptions steer the model.
        assert_eq!(s.solve_with_assumptions(&[!v[0], !v[1]]), SatResult::Sat);
        assert_eq!(s.lit_value(v[2]), Some(true));
    }

    #[test]
    fn contradictory_assumptions_are_unsat() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with_assumptions(&[a, !a]), SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn assumptions_already_implied_are_fine() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a]);
        s.add_clause(&[!a, b]);
        assert_eq!(s.solve_with_assumptions(&[a, b]), SatResult::Sat);
        assert_eq!(s.lit_value(a), Some(true));
        assert_eq!(s.lit_value(b), Some(true));
    }

    #[test]
    fn assumption_driven_enumeration_partitions_models() {
        // Models with x0=T plus models with x0=F must equal all models.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[2], v[3]]);
        let count_under = |s: &mut Solver, assumption: Lit| -> usize {
            let mut blocked: Vec<Vec<Lit>> = Vec::new();
            let mut count = 0;
            while s.solve_with_assumptions(&[assumption]) == SatResult::Sat {
                count += 1;
                assert!(count <= 16);
                let block: Vec<Lit> = v
                    .iter()
                    .map(|&l| if s.lit_value(l).unwrap() { !l } else { l })
                    .collect();
                blocked.push(block.clone());
                s.add_clause(&block);
            }
            count
        };
        let with_true = count_under(&mut s, v[0]);
        let with_false = count_under(&mut s, !v[0]);
        // (x0∨x1)∧(x2∨x3) has 9 models over 4 vars.
        assert_eq!(with_true + with_false, 9);
    }

    #[test]
    fn unsat_stays_unsat_after_more_clauses() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a]);
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.add_clause(&[b]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
