//! Circuit-to-CNF construction with memoized Tseitin gates.

use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::collections::HashMap;

/// Structural key for gate memoization.
#[derive(Clone, PartialEq, Eq, Hash)]
enum GateKey {
    And(Vec<usize>),
    Or(Vec<usize>),
    Xor(Vec<usize>),
}

/// A CNF formula under construction, with a Tseitin gate library.
///
/// `CnfBuilder` accumulates variables and clauses, memoizing structurally
/// identical gates so that BEER's large encodings (hundreds of thousands of
/// XOR/AND terms over the same parity-check matrix entries, §5.3) stay
/// compact. Call [`CnfBuilder::into_solver`] to obtain a loaded [`Solver`];
/// further clauses (e.g. model-blocking clauses) can then be added directly
/// to the solver.
///
/// All gate outputs are full biconditional (both-polarity) encodings, so
/// gate literals may be used under any polarity, including inside negative
/// constraints.
///
/// # Examples
///
/// ```
/// use beer_sat::{CnfBuilder, SatResult};
///
/// let mut cnf = CnfBuilder::new();
/// let bits: Vec<_> = (0..4).map(|_| cnf.new_lit()).collect();
/// cnf.at_most_k(&bits, 2);
/// cnf.at_least_one(&bits);
/// let mut s = cnf.into_solver();
/// assert_eq!(s.solve(), SatResult::Sat);
/// let ones = bits.iter().filter(|&&b| s.lit_value(b) == Some(true)).count();
/// assert!((1..=2).contains(&ones));
/// ```
pub struct CnfBuilder {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    gate_cache: HashMap<GateKey, Lit>,
    const_true: Option<Lit>,
    /// Clauses already shipped to a live solver by [`CnfBuilder::flush_into`].
    flushed: usize,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CnfBuilder {
            num_vars: 0,
            clauses: Vec::new(),
            gate_cache: HashMap::new(),
            const_true: None,
            flushed: 0,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Creates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        self.new_var().positive()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a raw clause (a disjunction of literals).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    /// Asserts that a literal holds (adds a unit clause).
    pub fn assert_lit(&mut self, l: Lit) {
        self.add_clause(&[l]);
    }

    /// Adds the implication `premise → (⋁ conclusion)`.
    pub fn add_implication(&mut self, premise: Lit, conclusion: &[Lit]) {
        let mut c = Vec::with_capacity(conclusion.len() + 1);
        c.push(!premise);
        c.extend_from_slice(conclusion);
        self.add_clause(&c);
    }

    /// A literal constrained to be true (for building constant inputs).
    pub fn lit_true(&mut self) -> Lit {
        if let Some(t) = self.const_true {
            return t;
        }
        let t = self.new_lit();
        self.assert_lit(t);
        self.const_true = Some(t);
        t
    }

    /// A literal constrained to be false.
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }

    fn sorted_codes(lits: &[Lit]) -> Vec<usize> {
        let mut v: Vec<usize> = lits.iter().map(|l| l.code()).collect();
        v.sort_unstable();
        v
    }

    /// Returns a literal equivalent to the AND of `lits`.
    ///
    /// Memoized: the same input set yields the same output literal.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (an empty AND is a constant; use
    /// [`CnfBuilder::lit_true`]).
    pub fn and(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "AND of zero literals");
        if lits.len() == 1 {
            return lits[0];
        }
        let key = GateKey::And(Self::sorted_codes(lits));
        if let Some(&y) = self.gate_cache.get(&key) {
            return y;
        }
        let y = self.new_lit();
        // y → li for each i; (⋀ li) → y.
        let mut long: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            self.add_clause(&[!y, l]);
            long.push(!l);
        }
        long.push(y);
        self.add_clause(&long);
        self.gate_cache.insert(key, y);
        y
    }

    /// Returns a literal equivalent to the OR of `lits`. Memoized.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    pub fn or(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "OR of zero literals");
        if lits.len() == 1 {
            return lits[0];
        }
        let key = GateKey::Or(Self::sorted_codes(lits));
        if let Some(&y) = self.gate_cache.get(&key) {
            return y;
        }
        let y = self.new_lit();
        let mut long: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            self.add_clause(&[y, !l]);
            long.push(l);
        }
        long.push(!y);
        self.add_clause(&long);
        self.gate_cache.insert(key, y);
        y
    }

    /// Returns a literal equivalent to `a XOR b`. Memoized.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let key = GateKey::Xor(Self::sorted_codes(&[a, b]));
        if let Some(&y) = self.gate_cache.get(&key) {
            return y;
        }
        let y = self.new_lit();
        // y ↔ a ⊕ b, full four-clause biconditional.
        self.add_clause(&[!y, a, b]);
        self.add_clause(&[!y, !a, !b]);
        self.add_clause(&[y, a, !b]);
        self.add_clause(&[y, !a, b]);
        self.gate_cache.insert(key, y);
        y
    }

    /// Returns a literal equivalent to the XOR of all `lits` (parity).
    ///
    /// The empty XOR is the constant false.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.lit_false(),
            1 => lits[0],
            _ => {
                let mut acc = lits[0];
                for &l in &lits[1..] {
                    acc = self.xor(acc, l);
                }
                acc
            }
        }
    }

    /// Returns a literal equivalent to `a ↔ b`.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Returns a literal equivalent to `if sel { then_branch } else { else_branch }`.
    pub fn mux(&mut self, sel: Lit, then_branch: Lit, else_branch: Lit) -> Lit {
        let a = self.and(&[sel, then_branch]);
        let b = self.and(&[!sel, else_branch]);
        self.or(&[a, b])
    }

    /// Asserts that at least one of `lits` holds.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (that would be an unsatisfiable empty
    /// clause; assert it explicitly if intended).
    pub fn at_least_one(&mut self, lits: &[Lit]) {
        assert!(!lits.is_empty(), "at_least_one of zero literals");
        self.add_clause(lits);
    }

    /// Asserts that at most one of `lits` holds (pairwise encoding).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.add_clause(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Asserts that exactly one of `lits` holds.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        self.at_least_one(lits);
        self.at_most_one(lits);
    }

    /// Asserts that at most `k` of `lits` hold, using a sequential counter.
    pub fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        if lits.len() <= k {
            return;
        }
        if k == 0 {
            for &l in lits {
                self.assert_lit(!l);
            }
            return;
        }
        // s[i][j] = "at least j+1 of the first i+1 literals are true".
        let n = lits.len();
        let mut s = vec![vec![Lit::from_code(0); k]; n];
        for (i, row) in s.iter_mut().enumerate() {
            for cell in row.iter_mut().take(k) {
                *cell = self.new_lit();
            }
            let _ = i;
        }
        self.add_clause(&[!lits[0], s[0][0]]);
        for &cell in &s[0][1..k] {
            self.assert_lit(!cell);
        }
        for i in 1..n {
            self.add_clause(&[!lits[i], s[i][0]]);
            self.add_clause(&[!s[i - 1][0], s[i][0]]);
            for j in 1..k {
                self.add_clause(&[!lits[i], !s[i - 1][j - 1], s[i][j]]);
                self.add_clause(&[!s[i - 1][j], s[i][j]]);
            }
            self.add_clause(&[!lits[i], !s[i - 1][k - 1]]);
        }
    }

    /// Asserts that at least `k` of `lits` hold (via at-most on negations).
    ///
    /// # Panics
    ///
    /// Panics if `k > lits.len()` (trivially unsatisfiable; assert false
    /// explicitly if intended).
    pub fn at_least_k(&mut self, lits: &[Lit], k: usize) {
        assert!(k <= lits.len(), "at_least_k with k > number of literals");
        if k == 0 {
            return;
        }
        let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        self.at_most_k(&negated, lits.len() - k);
    }

    /// Asserts `a ≤lex b` where index 0 is the most significant bit — the
    /// row-ordering constraint that canonicalizes parity-check matrices
    /// (DESIGN.md §2, symmetry breaking).
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths.
    pub fn lex_le(&mut self, a: &[Lit], b: &[Lit]) {
        assert_eq!(a.len(), b.len(), "lex_le rows of different lengths");
        if a.is_empty() {
            return;
        }
        // eq_prefix = "a[..i] == b[..i]"; start with the empty prefix (true).
        let mut eq_prefix = self.lit_true();
        for i in 0..a.len() {
            // eq_prefix ∧ a[i] → b[i]  (no 1-over-0 at the first difference)
            self.add_clause(&[!eq_prefix, !a[i], b[i]]);
            if i + 1 < a.len() {
                let bits_equal = self.iff(a[i], b[i]);
                eq_prefix = self.and(&[eq_prefix, bits_equal]);
            }
        }
    }

    /// Consumes the builder and returns a solver loaded with the formula.
    pub fn into_solver(mut self) -> Solver {
        let mut solver = Solver::new();
        self.flushed = 0;
        self.flush_into(&mut solver);
        solver
    }

    /// Ships every clause added since the last flush into a live solver,
    /// creating any new variables first. This keeps the builder usable as
    /// an *incremental* encoder: Tseitin gates built before the flush stay
    /// memoized, so constraints added later reuse them instead of
    /// re-encoding — the mechanism behind BEER's progressive solving
    /// (paper §6.3).
    ///
    /// Returns `false` if the solver derived a top-level conflict while
    /// absorbing the new clauses (the formula is then permanently UNSAT).
    pub fn flush_into(&mut self, solver: &mut Solver) -> bool {
        solver.reserve_vars(self.num_vars);
        let mut ok = true;
        for c in &self.clauses[self.flushed..] {
            ok &= solver.add_clause(c);
        }
        self.flushed = self.clauses.len();
        ok
    }

    /// Number of clauses not yet shipped by [`CnfBuilder::flush_into`].
    pub fn pending_clauses(&self) -> usize {
        self.clauses.len() - self.flushed
    }

    /// Access to the raw clauses (used by the DIMACS writer and tests).
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    /// Exhaustively checks that a gate matches a boolean function on all
    /// inputs, by solving with each input combination asserted.
    fn check_gate<F>(n_inputs: usize, build: impl Fn(&mut CnfBuilder, &[Lit]) -> Lit, f: F)
    where
        F: Fn(&[bool]) -> bool,
    {
        for mask in 0..(1u32 << n_inputs) {
            let mut cnf = CnfBuilder::new();
            let inputs: Vec<Lit> = (0..n_inputs).map(|_| cnf.new_lit()).collect();
            let out = build(&mut cnf, &inputs);
            let in_vals: Vec<bool> = (0..n_inputs).map(|i| mask >> i & 1 == 1).collect();
            for (l, v) in inputs.iter().zip(&in_vals) {
                cnf.assert_lit(if *v { *l } else { !*l });
            }
            let mut s = cnf.into_solver();
            assert_eq!(s.solve(), SatResult::Sat);
            assert_eq!(
                s.lit_value(out),
                Some(f(&in_vals)),
                "gate mismatch on input {in_vals:?}"
            );
        }
    }

    #[test]
    fn and_gate_semantics() {
        check_gate(3, |c, ins| c.and(ins), |v| v.iter().all(|&b| b));
    }

    #[test]
    fn or_gate_semantics() {
        check_gate(3, |c, ins| c.or(ins), |v| v.iter().any(|&b| b));
    }

    #[test]
    fn xor_gate_semantics() {
        check_gate(2, |c, ins| c.xor(ins[0], ins[1]), |v| v[0] ^ v[1]);
    }

    #[test]
    fn xor_many_is_parity() {
        check_gate(
            4,
            |c, ins| c.xor_many(ins),
            |v| v.iter().fold(false, |a, &b| a ^ b),
        );
    }

    #[test]
    fn iff_gate_semantics() {
        check_gate(2, |c, ins| c.iff(ins[0], ins[1]), |v| v[0] == v[1]);
    }

    #[test]
    fn mux_gate_semantics() {
        check_gate(
            3,
            |c, ins| c.mux(ins[0], ins[1], ins[2]),
            |v| if v[0] { v[1] } else { v[2] },
        );
    }

    #[test]
    fn gates_are_memoized() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        let y1 = cnf.xor(a, b);
        let y2 = cnf.xor(b, a);
        assert_eq!(y1, y2, "XOR must memoize independent of argument order");
        let z1 = cnf.and(&[a, b]);
        let z2 = cnf.and(&[b, a]);
        assert_eq!(z1, z2);
        let vars_before = cnf.num_vars();
        let _ = cnf.xor(a, b);
        assert_eq!(cnf.num_vars(), vars_before, "cache hit must not allocate");
    }

    #[test]
    fn exactly_one_enumerates_n_models() {
        let mut cnf = CnfBuilder::new();
        let bits: Vec<Lit> = (0..5).map(|_| cnf.new_lit()).collect();
        cnf.exactly_one(&bits);
        let mut s = cnf.into_solver();
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 5);
            assert_eq!(
                bits.iter()
                    .filter(|&&b| s.lit_value(b) == Some(true))
                    .count(),
                1
            );
            let block: Vec<Lit> = bits
                .iter()
                .map(|&l| if s.lit_value(l).unwrap() { !l } else { l })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn at_most_k_counts_models() {
        // C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11 assignments with ≤ 2 ones.
        let mut cnf = CnfBuilder::new();
        let bits: Vec<Lit> = (0..4).map(|_| cnf.new_lit()).collect();
        cnf.at_most_k(&bits, 2);
        let mut s = cnf.into_solver();
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 11);
            let ones = bits
                .iter()
                .filter(|&&b| s.lit_value(b) == Some(true))
                .count();
            assert!(ones <= 2, "model has {ones} ones");
            let block: Vec<Lit> = bits
                .iter()
                .map(|&l| if s.lit_value(l).unwrap() { !l } else { l })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 11);
    }

    #[test]
    fn at_least_k_counts_models() {
        // C(4,3)+C(4,4) = 4+1 = 5 assignments with ≥ 3 ones.
        let mut cnf = CnfBuilder::new();
        let bits: Vec<Lit> = (0..4).map(|_| cnf.new_lit()).collect();
        cnf.at_least_k(&bits, 3);
        let mut s = cnf.into_solver();
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 5);
            let ones = bits
                .iter()
                .filter(|&&b| s.lit_value(b) == Some(true))
                .count();
            assert!(ones >= 3);
            let block: Vec<Lit> = bits
                .iter()
                .map(|&l| if s.lit_value(l).unwrap() { !l } else { l })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn lex_le_orders_rows() {
        // Two 3-bit rows: number of pairs (a, b) with a ≤lex b is
        // C(8,2) + 8 = 36 (ordered pairs with a ≤ b).
        let mut cnf = CnfBuilder::new();
        let a: Vec<Lit> = (0..3).map(|_| cnf.new_lit()).collect();
        let b: Vec<Lit> = (0..3).map(|_| cnf.new_lit()).collect();
        cnf.lex_le(&a, &b);
        let mut s = cnf.into_solver();
        let mut count = 0;
        let all: Vec<Lit> = a.iter().chain(b.iter()).copied().collect();
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 36);
            let val = |lits: &[Lit]| -> u32 {
                lits.iter()
                    .fold(0, |acc, &l| acc << 1 | u32::from(s.lit_value(l).unwrap()))
            };
            assert!(val(&a) <= val(&b), "lex order violated");
            let block: Vec<Lit> = all
                .iter()
                .map(|&l| if s.lit_value(l).unwrap() { !l } else { l })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 36);
    }

    #[test]
    fn constants_are_fixed() {
        let mut cnf = CnfBuilder::new();
        let t = cnf.lit_true();
        let f = cnf.lit_false();
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.lit_value(t), Some(true));
        assert_eq!(s.lit_value(f), Some(false));
    }
}
