//! Incremental solving sessions with assumption-scoped constraint groups.
//!
//! BEER's uniqueness check enumerates models by adding blocking clauses.
//! In a *progressive* pipeline (collect a few patterns → solve → collect
//! more → solve again, paper §6.3) the blocking clauses of one round must
//! not survive into the next, while the profile constraints — and, more
//! importantly, everything the solver *learned* from them — must.
//!
//! [`SolverSession`] provides exactly that: permanent clauses go straight
//! into the underlying [`Solver`]; retractable clauses are added inside a
//! *scope* and automatically guarded by a fresh assumption literal. Popping
//! the scope permanently disables its clauses (the guard is asserted
//! false), while learnt clauses from the whole history remain usable.

use crate::solver::{SatResult, Solver, SolverStats};
use crate::types::{Lit, Var};

/// Identifier of an open scope: its guard-stack index plus the guard
/// literal itself, so a stale id from a popped scope can never silently
/// alias a later scope that reused the index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScopeId {
    index: usize,
    guard: Lit,
}

/// An incremental solving session (see the module docs).
///
/// # Examples
///
/// ```
/// use beer_sat::{SatResult, SolverSession};
///
/// let mut s = SolverSession::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause(&[a, b]);
///
/// // Enumerate models inside a scope, then retract the blocking clauses.
/// let scope = s.push_scope();
/// let mut models = 0;
/// while s.solve() == SatResult::Sat {
///     models += 1;
///     let block = [
///         a.var().lit(s.lit_value(a) != Some(true)),
///         b.var().lit(s.lit_value(b) != Some(true)),
///     ];
///     s.add_scoped_clause(scope, &block);
/// }
/// assert_eq!(models, 3);
/// s.pop_scope(scope);
/// // With the blocking clauses retracted the formula is satisfiable again.
/// assert_eq!(s.solve(), SatResult::Sat);
/// ```
pub struct SolverSession {
    solver: Solver,
    /// Guard literal of every open scope; all are assumed true when solving.
    guards: Vec<Lit>,
}

impl Default for SolverSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SolverSession {
    /// Creates an empty session.
    pub fn new() -> Self {
        SolverSession {
            solver: Solver::new(),
            guards: Vec::new(),
        }
    }

    /// Wraps an existing solver (e.g. one loaded from a `CnfBuilder`).
    pub fn from_solver(solver: Solver) -> Self {
        SolverSession {
            solver,
            guards: Vec::new(),
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Direct access to the underlying solver (for clause flushing via
    /// `CnfBuilder::flush_into` and model extraction).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Shared access to the underlying solver (e.g. for reading the model
    /// with helpers written against [`Solver`]).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Adds a permanent clause. Returns `false` on a top-level conflict.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.solver.add_clause(lits)
    }

    /// Opens a scope for retractable clauses and returns its id.
    pub fn push_scope(&mut self) -> ScopeId {
        let g = self.solver.new_var().positive();
        self.push_scope_with_guard(g)
    }

    /// Opens a scope guarded by a caller-supplied literal. The literal must
    /// be fresh — created for this purpose and never otherwise constrained
    /// — or retraction would disable unrelated clauses. Use this when an
    /// external [`CnfBuilder`](crate::CnfBuilder) owns the variable space,
    /// so guards and encoder variables cannot collide.
    ///
    /// # Panics
    ///
    /// Panics if the guard's variable does not exist in the solver.
    pub fn push_scope_with_guard(&mut self, guard: Lit) -> ScopeId {
        assert!(
            guard.var().index() < self.solver.num_vars(),
            "guard {guard:?} refers to an unknown variable"
        );
        self.guards.push(guard);
        ScopeId {
            index: self.guards.len() - 1,
            guard,
        }
    }

    /// Checks that `scope` is still the scope it was issued for (guard
    /// variables are never reused, so a stale id from a popped scope cannot
    /// match whatever later scope occupies its stack slot).
    fn live_guard(&self, scope: ScopeId) -> Option<Lit> {
        self.guards
            .get(scope.index)
            .copied()
            .filter(|&g| g == scope.guard)
    }

    /// Adds a clause that lives only while `scope` is open.
    ///
    /// # Panics
    ///
    /// Panics if the scope has been popped.
    pub fn add_scoped_clause(&mut self, scope: ScopeId, lits: &[Lit]) -> bool {
        let guard = self
            .live_guard(scope)
            .unwrap_or_else(|| panic!("scope {scope:?} is not open"));
        let mut clause = Vec::with_capacity(lits.len() + 1);
        clause.push(!guard);
        clause.extend_from_slice(lits);
        self.solver.add_clause(&clause)
    }

    /// Closes `scope` (and every scope opened after it), permanently
    /// disabling their clauses. Learnt clauses are retained.
    ///
    /// # Panics
    ///
    /// Panics if the scope has already been popped.
    pub fn pop_scope(&mut self, scope: ScopeId) {
        assert!(
            self.live_guard(scope).is_some(),
            "scope {scope:?} is not open"
        );
        while self.guards.len() > scope.index {
            let g = self.guards.pop().expect("guard stack non-empty");
            // Asserting ¬g satisfies every clause of the scope forever,
            // rendering them (and any learnt clause that depends on g)
            // inert without touching the clause database.
            self.solver.add_clause(&[!g]);
        }
    }

    /// Number of currently open scopes.
    pub fn open_scopes(&self) -> usize {
        self.guards.len()
    }

    /// Solves under the current scope guards (plus `extra` assumptions).
    pub fn solve_with_assumptions(&mut self, extra: &[Lit]) -> SatResult {
        let mut assumptions = self.guards.clone();
        assumptions.extend_from_slice(extra);
        self.solver.solve_with_assumptions(&assumptions)
    }

    /// Solves under the current scope guards.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Value of `v` in the last model (see [`Solver::value`]).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.solver.value(v)
    }

    /// Value of `l` in the last model (see [`Solver::lit_value`]).
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.solver.lit_value(l)
    }

    /// Statistics of the underlying solver.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfBuilder;

    fn vars(s: &mut SolverSession, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    fn block_model(s: &mut SolverSession, scope: ScopeId, vars: &[Lit]) {
        let block: Vec<Lit> = vars
            .iter()
            .map(|&l| l.var().lit(s.lit_value(l) != Some(true)))
            .collect();
        s.add_scoped_clause(scope, &block);
    }

    #[test]
    fn scoped_blocking_is_retractable() {
        let mut s = SolverSession::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);

        for _round in 0..3 {
            let scope = s.push_scope();
            let mut models = 0;
            while s.solve() == SatResult::Sat {
                models += 1;
                assert!(models <= 3, "more models than the formula has");
                block_model(&mut s, scope, &v);
            }
            assert_eq!(models, 3, "every round must re-enumerate all models");
            s.pop_scope(scope);
        }
    }

    #[test]
    fn permanent_clauses_narrow_future_rounds() {
        let mut s = SolverSession::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);

        let count_models = |s: &mut SolverSession, v: &[Lit]| {
            let scope = s.push_scope();
            let mut models = 0;
            while s.solve() == SatResult::Sat {
                models += 1;
                block_model(s, scope, v);
            }
            s.pop_scope(scope);
            models
        };

        assert_eq!(count_models(&mut s, &v), 7);
        // A permanent constraint added between rounds takes effect...
        s.add_clause(&[!v[0]]);
        assert_eq!(count_models(&mut s, &v), 3);
        // ...and more constraints keep narrowing.
        s.add_clause(&[!v[1]]);
        assert_eq!(count_models(&mut s, &v), 1);
    }

    #[test]
    fn nested_scopes_pop_together() {
        let mut s = SolverSession::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        let outer = s.push_scope();
        s.add_scoped_clause(outer, &[!v[0]]);
        let inner = s.push_scope();
        s.add_scoped_clause(inner, &[!v[1]]);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert_eq!(s.open_scopes(), 2);
        // Popping the outer scope closes the inner one too.
        s.pop_scope(outer);
        assert_eq!(s.open_scopes(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn flush_into_extends_a_session_incrementally() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        let x = cnf.xor(a, b);
        cnf.assert_lit(x);

        let mut s = SolverSession::new();
        assert!(cnf.flush_into(s.solver_mut()));
        assert_eq!(s.solve(), SatResult::Sat);

        // Keep encoding with the same builder: the memoized XOR gate is
        // reused, no clauses are re-shipped.
        let before = cnf.num_clauses();
        let x2 = cnf.xor(a, b);
        assert_eq!(x, x2, "gate must be memoized across flushes");
        assert_eq!(cnf.num_clauses(), before);
        cnf.assert_lit(a);
        assert_eq!(cnf.pending_clauses(), 1);
        assert!(cnf.flush_into(s.solver_mut()));
        assert_eq!(cnf.pending_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.lit_value(b), Some(false), "forced by x ∧ a");
    }

    #[test]
    #[should_panic(expected = "is not open")]
    fn stale_scope_ids_cannot_alias_reused_slots() {
        let mut s = SolverSession::new();
        let v = vars(&mut s, 1);
        let dead = s.push_scope();
        s.pop_scope(dead);
        // A new scope reuses stack index 0; the stale id must not reach it.
        let _live = s.push_scope();
        s.add_scoped_clause(dead, &[v[0]]);
    }

    #[test]
    fn scoped_unsat_does_not_poison_the_session() {
        let mut s = SolverSession::new();
        let v = vars(&mut s, 1);
        let scope = s.push_scope();
        s.add_scoped_clause(scope, &[v[0]]);
        s.add_scoped_clause(scope, &[!v[0]]);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop_scope(scope);
        assert_eq!(s.solve(), SatResult::Sat);
    }
}
