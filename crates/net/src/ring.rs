//! The cluster hash ring: deterministic fingerprint → node ownership.
//!
//! A [`Ring`] is an epoch-numbered membership list expanded into a
//! consistent-hash ring with virtual nodes. Every
//! [`Fingerprint`](beer_core::trace::Fingerprint) hashes to a point on
//! the ring and is owned by the first member point at or after it
//! (wrapping). Ownership is a pure function of `(members, vnodes)` —
//! every node and every client holding the same ring computes the same
//! owner, which is what keeps dedup and the result cache single-home
//! per trace.
//!
//! Membership changes travel as whole rings under a monotonically
//! increasing `epoch`; a peer holding a lower epoch is stale and must
//! adopt the newer ring. The wire encoding lives in
//! [`wire`](crate::wire) (`HelloAck` carries the ring, `RingChanged`
//! pushes updates); this module is pure data + math so the server, the
//! client, and `beer_cluster` all share one definition of "who owns
//! this trace".

use beer_core::trace::Fingerprint;
use std::fmt;

/// Ring membership cap — a lying wire peer cannot make us expand an
/// absurd ring.
pub const MAX_RING_MEMBERS: usize = 1024;
/// Virtual-node cap per member (see [`MAX_RING_MEMBERS`]).
pub const MAX_RING_VNODES: u32 = 1024;
/// Cap on `members × vnodes` — the expanded point table stays small.
pub const MAX_RING_POINTS: usize = 1 << 20;

/// One cluster node as the ring sees it: a stable `name` (hashed for
/// ownership, so ownership survives address changes) and the `addr` the
/// node's beer-wire listener is reachable at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingMember {
    /// Stable node name — the hash-ring key.
    pub name: String,
    /// `host:port` of the node's wire listener.
    pub addr: String,
}

impl RingMember {
    /// A member from anything stringy.
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> Self {
        RingMember {
            name: name.into(),
            addr: addr.into(),
        }
    }
}

/// Why a membership list does not make a valid ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingError {
    /// A ring needs at least one member.
    NoMembers,
    /// More members than [`MAX_RING_MEMBERS`].
    TooManyMembers {
        /// Members offered.
        count: usize,
    },
    /// `vnodes` outside `1..=MAX_RING_VNODES`, or `members × vnodes`
    /// over [`MAX_RING_POINTS`].
    BadVnodes {
        /// Virtual nodes requested.
        vnodes: u32,
    },
    /// A member with an empty name or address.
    EmptyMember,
    /// Two members sharing a name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::NoMembers => write!(f, "a ring needs at least one member"),
            RingError::TooManyMembers { count } => {
                write!(f, "{count} members over the cap of {MAX_RING_MEMBERS}")
            }
            RingError::BadVnodes { vnodes } => {
                write!(
                    f,
                    "vnodes {vnodes} outside 1..={MAX_RING_VNODES} (or point cap)"
                )
            }
            RingError::EmptyMember => write!(f, "member with an empty name or address"),
            RingError::DuplicateName { name } => {
                write!(f, "duplicate member name {name:?}")
            }
        }
    }
}

impl std::error::Error for RingError {}

/// An epoch-numbered consistent-hash ring (see the module docs).
///
/// Construction validates and *sorts members by name*, so ownership —
/// including hash-point ties — is independent of the order members were
/// listed in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ring {
    epoch: u64,
    vnodes: u32,
    members: Vec<RingMember>,
    /// `(point, member index)` sorted by point then index.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Builds (and validates) a ring.
    ///
    /// # Errors
    ///
    /// A [`RingError`] naming the first structural problem.
    pub fn new(epoch: u64, vnodes: u32, members: Vec<RingMember>) -> Result<Ring, RingError> {
        if members.is_empty() {
            return Err(RingError::NoMembers);
        }
        if members.len() > MAX_RING_MEMBERS {
            return Err(RingError::TooManyMembers {
                count: members.len(),
            });
        }
        if vnodes == 0
            || vnodes > MAX_RING_VNODES
            || members.len().saturating_mul(vnodes as usize) > MAX_RING_POINTS
        {
            return Err(RingError::BadVnodes { vnodes });
        }
        let mut members = members;
        members.sort_by(|a, b| a.name.cmp(&b.name));
        for pair in members.windows(2) {
            if pair[0].name == pair[1].name {
                return Err(RingError::DuplicateName {
                    name: pair[0].name.clone(),
                });
            }
        }
        if members
            .iter()
            .any(|m| m.name.is_empty() || m.addr.is_empty())
        {
            return Err(RingError::EmptyMember);
        }
        let mut points = Vec::with_capacity(members.len() * vnodes as usize);
        for (idx, member) in members.iter().enumerate() {
            for v in 0..vnodes {
                points.push((member_point(&member.name, v), idx as u32));
            }
        }
        points.sort_unstable();
        Ok(Ring {
            epoch,
            vnodes,
            members,
            points,
        })
    }

    /// The membership epoch. Higher wins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The members, sorted by name.
    pub fn members(&self) -> &[RingMember] {
        &self.members
    }

    /// Looks a member up by name.
    pub fn member(&self, name: &str) -> Option<&RingMember> {
        self.members.iter().find(|m| m.name == name)
    }

    /// The member owning this fingerprint: the first ring point at or
    /// after the fingerprint's point, wrapping past the top.
    pub fn owner(&self, fingerprint: Fingerprint) -> &RingMember {
        let p = fingerprint_point(fingerprint);
        let i = self.points.partition_point(|&(point, _)| point < p);
        let (_, idx) = self.points[if i == self.points.len() { 0 } else { i }];
        &self.members[idx as usize]
    }

    /// True if `name` owns `fingerprint` under this ring.
    pub fn owns(&self, name: &str, fingerprint: Fingerprint) -> bool {
        self.owner(fingerprint).name == name
    }
}

/// FNV-1a 64 — the workspace's standing hash for small keys.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A 64-bit finalizer (splitmix-style) — FNV alone avalanches poorly on
/// short inputs like `name ‖ vnode`, which would skew the ring.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

fn member_point(name: &str, vnode: u32) -> u64 {
    let mut h = fnv1a64(name.as_bytes());
    h ^= 0xff; // separator: "ab"+v and "a"+"bv" must not collide
    for &b in &vnode.to_be_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix(h)
}

fn fingerprint_point(fp: Fingerprint) -> u64 {
    mix((fp.0 as u64) ^ ((fp.0 >> 64) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u128) -> Fingerprint {
        Fingerprint(v)
    }

    fn members(names: &[&str]) -> Vec<RingMember> {
        names
            .iter()
            .map(|n| RingMember::new(*n, format!("{n}.example:9000")))
            .collect()
    }

    #[test]
    fn validation_rejects_bad_memberships() {
        assert_eq!(Ring::new(1, 64, vec![]), Err(RingError::NoMembers));
        assert_eq!(
            Ring::new(1, 0, members(&["a"])),
            Err(RingError::BadVnodes { vnodes: 0 })
        );
        assert_eq!(
            Ring::new(1, MAX_RING_VNODES + 1, members(&["a"])),
            Err(RingError::BadVnodes {
                vnodes: MAX_RING_VNODES + 1
            })
        );
        assert_eq!(
            Ring::new(1, 64, members(&["a", "b", "a"])),
            Err(RingError::DuplicateName {
                name: "a".to_string()
            })
        );
        assert_eq!(
            Ring::new(1, 64, vec![RingMember::new("", "x:1")]),
            Err(RingError::EmptyMember)
        );
        assert_eq!(
            Ring::new(1, 64, vec![RingMember::new("a", "")]),
            Err(RingError::EmptyMember)
        );
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = Ring::new(1, 8, members(&["solo"])).unwrap();
        for i in 0..1000u128 {
            assert_eq!(ring.owner(fp(i * 7919)).name, "solo");
        }
    }

    #[test]
    fn ownership_is_independent_of_member_order() {
        let a = Ring::new(1, 64, members(&["n0", "n1", "n2", "n3"])).unwrap();
        let b = Ring::new(1, 64, members(&["n3", "n1", "n0", "n2"])).unwrap();
        assert_eq!(a, b);
        for i in 0..2000u128 {
            let f = fp(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(a.owner(f), b.owner(f));
        }
    }

    #[test]
    fn load_spreads_across_members() {
        let ring = Ring::new(1, 128, members(&["n0", "n1", "n2", "n3"])).unwrap();
        let mut counts = [0usize; 4];
        for i in 0..8000u128 {
            let f = fp(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i << 64));
            let owner = ring.owner(f);
            let idx = ring
                .members()
                .iter()
                .position(|m| m.name == owner.name)
                .unwrap();
            counts[idx] += 1;
        }
        // Perfect balance is 2000 each; vnode hashing should keep every
        // member within a loose 2x band of fair share.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (1000..=4000).contains(&c),
                "member {i} owns {c} of 8000 keys — ring badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_member_only_moves_its_keys() {
        let full = Ring::new(1, 128, members(&["n0", "n1", "n2"])).unwrap();
        let reduced = Ring::new(2, 128, members(&["n0", "n1"])).unwrap();
        let mut moved = 0usize;
        let total = 4000usize;
        for i in 0..total as u128 {
            let f = fp(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let before = full.owner(f).name.clone();
            let after = reduced.owner(f).name.clone();
            if before == "n2" {
                moved += 1;
                assert_ne!(after, "n2");
            } else {
                // Consistent hashing: surviving members keep their keys.
                assert_eq!(before, after, "key {i} moved between surviving members");
            }
        }
        assert!(moved > 0, "n2 owned nothing — skew");
    }

    #[test]
    fn owns_matches_owner() {
        let ring = Ring::new(3, 64, members(&["a", "b"])).unwrap();
        for i in 0..500u128 {
            let f = fp(i * 131);
            let owner = ring.owner(f).name.clone();
            assert!(ring.owns(&owner, f));
            assert!(!ring.owns("nobody", f));
        }
    }
}
